//! Per-application evaluation: baselines vs. the three DeepStore levels.
//!
//! Reproduces the §6.2/§6.4 methodology: the GPU+SSD baseline's query
//! time and board energy, the wimpy-core time, and — for each accelerator
//! level — the scan time from the timing model plus the linear energy
//! model over the counted events, with per-instance static power and the
//! controller power charged for the scan duration.

use deepstore_baseline::{GpuSsdSystem, ScanSpec, WimpyCores};
use deepstore_core::accel::{scan, ScanTiming};
use deepstore_core::config::{AcceleratorConfig, AcceleratorLevel, DeepStoreConfig};
use deepstore_core::dse::sram_variant;
use deepstore_energy::{EnergyBreakdown, EnergyModel};
use deepstore_workloads::App;
use serde::Serialize;

/// Evaluation of one accelerator level on one application.
#[derive(Debug, Clone, Serialize)]
pub struct LevelEvaluation {
    /// The level.
    pub level: AcceleratorLevel,
    /// End-to-end scan time, seconds.
    pub time_s: f64,
    /// Speedup over the GPU+SSD baseline (>1 = DeepStore faster).
    pub speedup: f64,
    /// Dynamic energy breakdown (compute / memory / flash).
    pub breakdown: EnergyBreakdown,
    /// Total energy including static + controller power, joules.
    pub energy_j: f64,
    /// Energy-efficiency improvement over the GPU (perf/W ratio).
    pub energy_eff: f64,
    /// Raw timing detail.
    pub timing: ScanTiming,
}

/// Evaluation of one application across all systems.
#[derive(Debug, Clone, Serialize)]
pub struct AppEvaluation {
    /// Application name.
    pub app: String,
    /// GPU+SSD query time, seconds.
    pub gpu_time_s: f64,
    /// GPU board energy, joules.
    pub gpu_energy_j: f64,
    /// Wimpy-core query time, seconds.
    pub wimpy_time_s: f64,
    /// Wimpy speedup over the GPU baseline (< 1).
    pub wimpy_speedup: f64,
    /// Per-level evaluations; `None` where the level cannot run the model
    /// (chip level vs ReId).
    pub levels: Vec<Option<LevelEvaluation>>,
}

impl AppEvaluation {
    /// The evaluation for a given level, if supported.
    pub fn level(&self, level: AcceleratorLevel) -> Option<&LevelEvaluation> {
        self.levels.iter().flatten().find(|l| l.level == level)
    }
}

/// Total energy of a DeepStore scan: dynamic events plus static and
/// controller power over the scan duration.
pub fn deepstore_energy_j(
    level: AcceleratorLevel,
    timing: &ScanTiming,
    cfg: &DeepStoreConfig,
) -> (EnergyBreakdown, f64) {
    let acc = AcceleratorConfig::for_level(level);
    let model = EnergyModel::for_scratchpad(acc.array.scratchpad_bytes, sram_variant(level));
    let dynamic = model.energy(&timing.counts);
    let secs = timing.elapsed.as_secs_f64();
    let static_j = acc.static_power_w * timing.accelerators as f64 * secs;
    let controller_j = cfg.controller_power_w * secs;
    (dynamic, dynamic.total_j() + static_j + controller_j)
}

/// Runs the full §6.2/§6.4 evaluation for one application.
pub fn evaluate_app(app: &App) -> AppEvaluation {
    let cfg = DeepStoreConfig::paper_default();
    let spec: ScanSpec = app.scan_spec();
    let workload = app.scan_workload(&cfg);

    let gpu = GpuSsdSystem::paper_default(&app.name);
    let gpu_time_s = gpu.query(&spec).total_secs;
    let gpu_energy_j = gpu.query_energy_j(&spec);

    let wimpy_time_s = WimpyCores::arm_a57_octa().query_time(&spec).as_secs_f64();

    let levels = AcceleratorLevel::ALL
        .iter()
        .map(|&level| {
            scan(level, &workload, &cfg).map(|timing| {
                let time_s = timing.elapsed.as_secs_f64();
                let (breakdown, energy_j) = deepstore_energy_j(level, &timing, &cfg);
                LevelEvaluation {
                    level,
                    time_s,
                    speedup: gpu_time_s / time_s,
                    breakdown,
                    energy_j,
                    energy_eff: gpu_energy_j / energy_j,
                    timing,
                }
            })
        })
        .collect();

    AppEvaluation {
        app: app.name.clone(),
        gpu_time_s,
        gpu_energy_j,
        wimpy_time_s,
        wimpy_speedup: gpu_time_s / wimpy_time_s,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(name: &str) -> AppEvaluation {
        evaluate_app(&App::new(name))
    }

    #[test]
    fn channel_level_beats_gpu_for_every_app() {
        for name in deepstore_workloads::APP_NAMES {
            let e = eval(name);
            let ch = e.level(AcceleratorLevel::Channel).unwrap();
            assert!(ch.speedup > 1.0, "{name}: {}", ch.speedup);
            assert!(ch.energy_eff > 1.0, "{name}: {}", ch.energy_eff);
        }
    }

    #[test]
    fn ssd_level_is_slower_than_gpu() {
        for name in deepstore_workloads::APP_NAMES {
            let e = eval(name);
            let ssd = e.level(AcceleratorLevel::Ssd).unwrap();
            assert!(ssd.speedup < 1.0, "{name}: {}", ssd.speedup);
        }
    }

    #[test]
    fn level_ordering_matches_paper() {
        // Channel > chip > SSD in speedup wherever chip runs.
        for name in deepstore_workloads::APP_NAMES {
            let e = eval(name);
            let ch = e.level(AcceleratorLevel::Channel).unwrap().speedup;
            let ssd = e.level(AcceleratorLevel::Ssd).unwrap().speedup;
            assert!(ch > ssd, "{name}");
            if let Some(chip) = e.level(AcceleratorLevel::Chip) {
                assert!(ch > chip.speedup && chip.speedup > ssd, "{name}");
            }
        }
    }

    #[test]
    fn chip_unsupported_only_for_reid() {
        for name in deepstore_workloads::APP_NAMES {
            let e = eval(name);
            assert_eq!(
                e.level(AcceleratorLevel::Chip).is_none(),
                name == "reid",
                "{name}"
            );
        }
    }

    #[test]
    fn wimpy_cores_are_much_slower() {
        for name in deepstore_workloads::APP_NAMES {
            let e = eval(name);
            assert!(e.wimpy_speedup < 0.25, "{name}: {}", e.wimpy_speedup);
        }
    }

    #[test]
    fn channel_speedups_land_near_paper() {
        // Table 4 channel-level speedups, with a 2x tolerance band (the
        // band EXPERIMENTS.md reports precisely).
        for name in deepstore_workloads::APP_NAMES {
            let app = App::new(name);
            let (_, paper, _) = app.paper_speedups();
            let got = eval(name).level(AcceleratorLevel::Channel).unwrap().speedup;
            assert!(
                got > paper / 2.0 && got < paper * 2.0,
                "{name}: got {got:.2}, paper {paper}"
            );
        }
    }

    #[test]
    fn textqa_has_best_channel_speedup_reid_worst() {
        let speedup = |n: &str| eval(n).level(AcceleratorLevel::Channel).unwrap().speedup;
        let all: Vec<f64> = deepstore_workloads::APP_NAMES
            .iter()
            .map(|n| speedup(n))
            .collect();
        let textqa = speedup("textqa");
        let reid = speedup("reid");
        assert!(all.iter().all(|&s| s <= textqa + 1e-9));
        assert!(all.iter().all(|&s| s >= reid - 1e-9));
    }

    #[test]
    fn energy_total_exceeds_dynamic() {
        let e = eval("mir");
        let ch = e.level(AcceleratorLevel::Channel).unwrap();
        assert!(ch.energy_j > ch.breakdown.total_j());
    }
}
