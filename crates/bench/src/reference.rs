//! Seed-faithful allocating reference for the scan hot path.
//!
//! The engine's scan was rewritten to be allocation-free (scratch-buffer
//! inference, page-sequential decode). This module preserves the
//! *original* per-feature structure as a measurable baseline: one
//! `read_feature` per feature (fresh `Vec<u8>` + `Tensor`), a fresh merge
//! vector, a fresh output vector per layer, and a plain sequential dot
//! product. The `scan_hot_path` criterion bench and the `bench_scan`
//! binary both compare against it.

use deepstore_core::config::DeepStoreConfig;
use deepstore_core::engine::{DbId, Engine};
use deepstore_nn::{zoo, ElementWiseOp, LayerShape, MergeOp, Model, Tensor};
use deepstore_systolic::topk::{ScoredFeature, TopKSorter};

/// Builds a sealed engine over `n` seeded features from a named zoo model.
pub fn zoo_engine(app: &str, n: u64, workers: usize) -> (Engine, Model, DbId) {
    let model = zoo::by_name(app).expect("known app").seeded(3);
    let mut engine = Engine::new(DeepStoreConfig::small().with_parallelism(workers));
    let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
    let db = engine.write_db(&features).unwrap();
    engine.seal_db(db).unwrap();
    (engine, model, db)
}

/// Builds a sealed engine over `n` seeded textqa features.
pub fn textqa_engine(n: u64, workers: usize) -> (Engine, Model, DbId) {
    zoo_engine("textqa", n, workers)
}

/// The pre-rewrite similarity: allocate on merge, allocate per layer,
/// reduce with a sequential (non-unrolled) dot product.
///
/// Dense/element-wise models only — the comparison workload (textqa) has
/// no convolutions.
pub fn naive_similarity(model: &Model, query: &Tensor, item: &Tensor) -> f32 {
    let q = query.data();
    let d = item.data();
    let mut x: Vec<f32> = match model.merge() {
        MergeOp::Concat => q.iter().chain(d.iter()).copied().collect(),
        MergeOp::ElementWise(op) => q
            .iter()
            .zip(d.iter())
            .map(|(a, b)| match op {
                ElementWiseOp::Add => a + b,
                ElementWiseOp::Sub => a - b,
                ElementWiseOp::Mul => a * b,
            })
            .collect(),
    };
    for layer in model.layers() {
        let LayerShape::Dense { out_features, .. } = layer.shape else {
            unreachable!("reference path is dense-only");
        };
        let w = layer.weights.as_ref().unwrap().data();
        let b = layer.bias.as_ref().unwrap().data();
        let inp = x.len();
        let mut out = Vec::with_capacity(out_features);
        for o in 0..out_features {
            let row = &w[o * inp..(o + 1) * inp];
            let mut acc = 0.0f32;
            for (wi, xi) in row.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            out.push(acc + b[o]);
        }
        let mut t = Tensor::from_vec(vec![out_features], out).unwrap();
        t = layer.activation.apply(t);
        x = t.into_data();
    }
    match x.len() {
        0 => 0.0,
        1 | 2 => x[0],
        _ => x.iter().sum::<f32>() / x.len() as f32,
    }
}

/// One full reference scan: per-feature reads through the allocating
/// path, ranked by the same sorter the engine uses.
pub fn naive_scan(
    engine: &Engine,
    model: &Model,
    db: DbId,
    probe: &Tensor,
    n: u64,
    k: usize,
) -> Vec<ScoredFeature> {
    let mut sorter = TopKSorter::new(k);
    for idx in 0..n {
        let f = engine.read_feature(db, idx).unwrap();
        sorter.offer(naive_similarity(model, probe, &f), idx);
    }
    sorter.ranked()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive reference must itself agree with `Model::similarity` to
    /// within reassociation error (the unrolled kernel sums in a
    /// different order, so exact bits are not expected *here* — the
    /// bit-identity contract is between the engine's two paths, not
    /// between either of them and this baseline).
    #[test]
    fn naive_reference_tracks_model_similarity() {
        let model = zoo::textqa().seeded(3);
        let q = model.random_feature(1);
        for i in 0..8 {
            let d = model.random_feature(100 + i);
            let naive = naive_similarity(&model, &q, &d);
            let real = model.similarity(&q, &d).unwrap();
            assert!(
                (naive - real).abs() <= 1e-4 * real.abs().max(1.0),
                "naive {naive} vs kernel {real}"
            );
        }
    }

    /// And the reference scan ranks the same features as the engine scan.
    #[test]
    fn naive_scan_agrees_with_engine_scan() {
        let (engine, model, db) = textqa_engine(64, 1);
        let probe = model.random_feature(77);
        let reference = naive_scan(&engine, &model, db, &probe, 64, 5);
        let fast = engine.scan_top_k(db, &model, &probe, 5).unwrap();
        let ref_ids: Vec<u64> = reference.iter().map(|h| h.feature_id).collect();
        let fast_ids: Vec<u64> = fast.iter().map(|h| h.feature_id).collect();
        assert_eq!(ref_ids, fast_ids);
    }
}
