//! Shared evaluation harness for the figure/table regeneration binaries.
//!
//! Every experiment binary (`table1`, `fig2`, ..., `fig14`) builds on the
//! same evaluation core: [`eval`] computes, for one application, the
//! GPU+SSD baseline, the wimpy-core baseline, and the three DeepStore
//! levels — times, speedups, energies and energy breakdowns — exactly as
//! §6 reports them. [`report`] renders aligned text tables and writes CSV
//! rows under `results/`.

pub mod eval;
pub mod qc;
pub mod reference;
pub mod report;

pub use eval::{evaluate_app, AppEvaluation, LevelEvaluation};
