//! Report rendering: aligned text tables and CSV output.
//!
//! Every experiment binary prints the rows/series the paper's table or
//! figure reports, and mirrors them into `results/<name>.csv` for
//! machine consumption.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple text-table builder with aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Display>(header: &[S]) -> Self {
        Table {
            header: header.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<S: Display>(&mut self, cells: &[S]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// The `results/` directory (relative to the workspace root, falling back
/// to the current directory).
pub fn results_dir() -> PathBuf {
    // The binaries run from the workspace root under `cargo run`.
    let candidates = [Path::new("results"), Path::new("../results")];
    for c in candidates {
        if c.is_dir() {
            return c.to_path_buf();
        }
    }
    PathBuf::from("results")
}

/// Prints a titled table and writes it to `results/<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("== {title} ==");
    println!("{}", table.render());
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Ok(mut f) = fs::File::create(&path) {
            let _ = f.write_all(table.to_csv().as_bytes());
            println!("[written {}]", path.display());
        }
    }
    println!();
}

/// Formats a float with the given precision, rendering `NaN` as "-".
pub fn num(v: f64, precision: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.precision$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["app", "speedup"]);
        t.row(&["mir".to_string(), "8.26".to_string()]);
        t.row(&["textqa".to_string(), "17.74".to_string()]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.lines().count() >= 4);
        // Columns align: each line has the same position for the gap.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".to_string(), "z".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "-");
    }
}
