//! Query-cache experiment harness (§6.5, Figures 13–14).
//!
//! The paper evaluates the Query Cache on TIR scaled to 100 M images
//! (192 GB of feature vectors) with 100 K queries sampled uniformly or
//! Zipfian(0.7) from a pool with semantic near-duplicates. We reproduce
//! the structure with a 100 K-entry base-query pool grouped into semantic
//! clusters (see `deepstore_workloads::trace`), run the *functional*
//! query cache over the stream to measure miss rates, and combine the
//! measured miss rate with the timing models to produce the speedup
//! curves.

use deepstore_baseline::{GpuSsdSystem, ScanSpec};
use deepstore_core::accel::{channel_level_scan, ScanWorkload};
use deepstore_core::config::DeepStoreConfig;
use deepstore_core::qcache::{lookup_time_for, QueryCache, QueryCacheConfig};
use deepstore_nn::zoo;
use deepstore_systolic::topk::ScoredFeature;
use deepstore_workloads::{QueryStream, TraceDistribution};
use serde::Serialize;

/// The §6.5 database: 100 M images × 2 KB TIR features = ~192 GB.
pub const QC_DB_BYTES: u64 = 100_000_000 * 2048;
/// Base-query pool size.
pub const POOL_SIZE: usize = 100_000;
/// Semantic cluster count (~25 near-duplicate variants per concept).
pub const CLUSTERS: usize = 4_000;

/// Parameters of one query-cache run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QcRunConfig {
    /// Cache capacity in entries.
    pub capacity: usize,
    /// Error threshold (0.0–0.2 in Figure 13).
    pub threshold: f64,
    /// Query distribution.
    pub distribution: TraceDistribution,
    /// Queries used to warm the cache before measuring.
    pub warmup: usize,
    /// Queries measured.
    pub measured: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QcRunConfig {
    /// The Figure 13 defaults at a given threshold and distribution.
    pub fn fig13(threshold: f64, distribution: TraceDistribution) -> Self {
        QcRunConfig {
            capacity: 1000,
            threshold,
            distribution,
            warmup: 2_000,
            measured: 6_000,
            seed: 20190612,
        }
    }
}

/// Outcome of one run: measured miss rate plus modeled timings.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QcRunResult {
    /// Measured miss rate over the measurement window.
    pub miss_rate: f64,
    /// Mean DeepStore+QC query time, seconds.
    pub deepstore_qc_s: f64,
    /// Mean Traditional+QC query time, seconds.
    pub traditional_qc_s: f64,
    /// DeepStore (channel level, no QC) scan time, seconds.
    pub deepstore_scan_s: f64,
    /// Traditional (GPU+SSD, no QC) scan time, seconds.
    pub traditional_scan_s: f64,
}

impl QcRunResult {
    /// Speedup of Traditional+QC over Traditional.
    pub fn traditional_qc_speedup(&self) -> f64 {
        self.traditional_scan_s / self.traditional_qc_s
    }

    /// Speedup of DeepStore (no QC) over Traditional.
    pub fn deepstore_speedup(&self) -> f64 {
        self.traditional_scan_s / self.deepstore_scan_s
    }

    /// Speedup of DeepStore+QC over Traditional.
    pub fn deepstore_qc_speedup(&self) -> f64 {
        self.traditional_scan_s / self.deepstore_qc_s
    }
}

/// Runs the functional cache over the stream and measures the miss rate
/// in the measurement window.
pub fn measure_miss_rate(run: &QcRunConfig) -> f64 {
    let tir = zoo::tir();
    let mut stream = QueryStream::new(
        tir.feature_len(),
        POOL_SIZE,
        CLUSTERS,
        run.distribution,
        run.seed,
    );
    let mut cache = QueryCache::new(QueryCacheConfig {
        capacity: run.capacity,
        threshold: run.threshold,
        // The RBF QCN's scores already encode confidence; the stream's
        // perturbations were calibrated against accuracy 1.0 (DESIGN.md).
        qcn_accuracy: 1.0,
    });
    let dummy: Vec<ScoredFeature> = vec![ScoredFeature {
        score: 1.0,
        feature_id: 0,
    }];
    let mut misses = 0u64;
    for i in 0..(run.warmup + run.measured) {
        let (_, q) = stream.next_query();
        let hit = cache.lookup(&q).is_some();
        if !hit {
            cache.insert(q, dummy.clone());
        }
        if i >= run.warmup && !hit {
            misses += 1;
        }
    }
    misses as f64 / run.measured as f64
}

/// Full run: measured miss rate combined with the timing models.
pub fn run(runc: &QcRunConfig) -> QcRunResult {
    let miss_rate = measure_miss_rate(runc);
    let tir = zoo::tir();
    let cfg = DeepStoreConfig::paper_default();

    // Scan times for the 192 GB database.
    let workload = ScanWorkload::from_model(&tir, QC_DB_BYTES, &cfg);
    let deepstore_scan_s = channel_level_scan(&workload, &cfg).elapsed.as_secs_f64();
    let spec = ScanSpec::from_model(&tir, QC_DB_BYTES);
    let traditional_scan_s = GpuSsdSystem::paper_default("tir").query(&spec).total_secs;

    // Per-query service times. A hit re-runs the SCN over the K cached
    // entries (negligible) after the QCN pass over the cache.
    let lookup_s = lookup_time_for(
        runc.capacity,
        &tir.layer_shapes(),
        cfg.ssd.geometry.channels,
        cfg.controller_overhead_cycles,
    )
    .as_secs_f64();
    let deepstore_qc_s = lookup_s + miss_rate * deepstore_scan_s;
    // The traditional system evaluates the QCN on the GPU; comparable
    // per-entry cost, then a miss scans over PCIe.
    let traditional_qc_s = lookup_s + miss_rate * traditional_scan_s;

    QcRunResult {
        miss_rate,
        deepstore_qc_s,
        traditional_qc_s,
        deepstore_scan_s,
        traditional_scan_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(threshold: f64, dist: TraceDistribution, capacity: usize) -> f64 {
        measure_miss_rate(&QcRunConfig {
            capacity: capacity.min(400),
            threshold,
            distribution: dist,
            warmup: 200,
            measured: 600,
            seed: 7,
        })
    }

    #[test]
    fn zipf_misses_less_than_uniform() {
        let u = quick(0.10, TraceDistribution::Uniform, 1000);
        let z = quick(0.10, TraceDistribution::Zipfian { alpha: 0.7 }, 1000);
        assert!(z < u, "zipf {z} !< uniform {u}");
    }

    #[test]
    fn looser_threshold_misses_less() {
        let tight = quick(0.02, TraceDistribution::Zipfian { alpha: 0.7 }, 1000);
        let loose = quick(0.20, TraceDistribution::Zipfian { alpha: 0.7 }, 1000);
        assert!(loose < tight, "loose {loose} !< tight {tight}");
    }

    #[test]
    fn bigger_cache_misses_less() {
        let small = quick(0.10, TraceDistribution::Zipfian { alpha: 0.7 }, 100);
        let big = quick(0.10, TraceDistribution::Zipfian { alpha: 0.7 }, 1000);
        assert!(big <= small, "big {big} !<= small {small}");
    }

    #[test]
    fn speedups_follow_miss_rate() {
        let r = QcRunResult {
            miss_rate: 0.5,
            deepstore_qc_s: 0.5,
            traditional_qc_s: 5.0,
            deepstore_scan_s: 1.0,
            traditional_scan_s: 10.0,
        };
        assert!((r.deepstore_speedup() - 10.0).abs() < 1e-12);
        assert!((r.deepstore_qc_speedup() - 20.0).abs() < 1e-12);
        assert!((r.traditional_qc_speedup() - 2.0).abs() < 1e-12);
    }
}
