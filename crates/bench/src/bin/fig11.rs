//! Figure 11 / Table 4 (energy half): energy efficiency (perf/W) of the
//! three DeepStore levels normalized to the Volta GPU.

use deepstore_bench::evaluate_app;
use deepstore_bench::report::{emit, num, Table};
use deepstore_core::config::AcceleratorLevel;
use deepstore_workloads::App;

fn main() {
    let mut table = Table::new(&[
        "app",
        "gpu_energy_j",
        "ssd_eff",
        "paper_ssd",
        "channel_eff",
        "paper_channel",
        "chip_eff",
        "paper_chip",
    ]);
    for app in App::all() {
        let e = evaluate_app(&app);
        let (p_ssd, p_ch, p_chip) = app.paper_energy_eff();
        let eff = |level| {
            e.level(level)
                .map(|l: &deepstore_bench::LevelEvaluation| l.energy_eff)
                .unwrap_or(f64::NAN)
        };
        table.row(&[
            app.name.clone(),
            num(e.gpu_energy_j, 0),
            num(eff(AcceleratorLevel::Ssd), 1),
            num(p_ssd, 1),
            num(eff(AcceleratorLevel::Channel), 1),
            num(p_ch, 1),
            num(eff(AcceleratorLevel::Chip), 1),
            p_chip.map(|v| num(v, 1)).unwrap_or_else(|| "-".into()),
        ]);
    }
    emit(
        "fig11",
        "Figure 11 / Table 4: energy efficiency normalized to the Volta GPU",
        &table,
    );
}
