//! `BENCH_scan.json` / `BENCH_batch.json` emitter for the scan hot path.
//!
//! Default mode compares the scratch scan against the seed-faithful
//! allocating baseline. A global counting allocator wraps `System`;
//! allocations per scored feature are measured differentially (a
//! 512-feature scan minus a 256-feature scan, divided by the 256 extra
//! features) so fixed per-scan overhead (shard plan, sorter, per-shard
//! scratch warm-up) cancels out. Throughput is wall-clock over repeated
//! whole-database scans. Writes `results/BENCH_scan.json`.
//!
//! `--batch [MAX]` mode measures the batched multi-query scan instead:
//! one page-sequential pass of a `tir` database scores 1, 2, ... `MAX`
//! queries at once, and throughput is reported in scored
//! features·queries per second. Writes `results/BENCH_batch.json`.
//!
//! `--fault-check` mode measures the fault layer's hot-path price: scan
//! throughput with no fault plan versus an armed plan that injects
//! nothing (zero-rate transient faults force the per-page outcome check
//! on every read). Exits non-zero above 2% overhead and writes
//! `results/BENCH_fault.json`.
//!
//! `--cascade` mode compares the exact scoring path against the int8
//! bound-then-refine pruning cascade on the default textqa workload,
//! asserts the results are bit-identical (recall@K == 1.0), and writes
//! `results/BENCH_cascade.json` with features/sec for both paths, the
//! prune rate, and the kernel backend that served the run.
//!
//! `--persist` mode compares scan throughput of the heap backend
//! against an `MmapStore` single-file image holding the same database,
//! asserts the ranked top-K is bit-identical, and exits non-zero if the
//! mmap path falls below 0.8× heap throughput. Writes
//! `results/BENCH_persist.json`.
//!
//! `--obs-check` mode measures scan throughput for the *current* build's
//! telemetry configuration and writes `results/BENCH_obs_on.json` or
//! `BENCH_obs_off.json` (keyed on the `obs` cargo feature). When the
//! counterpart file already exists it compares the two and exits
//! non-zero if instrumentation costs more than 2% throughput — run it
//! once per feature configuration:
//!
//! ```text
//! cargo run --release -p deepstore-bench --bin bench_scan \
//!     --no-default-features -- --obs-check
//! cargo run --release -p deepstore-bench --bin bench_scan -- --obs-check
//! ```

use deepstore_bench::reference::{naive_scan, textqa_engine, zoo_engine};
use deepstore_bench::report::results_dir;
use deepstore_nn::{Model, Tensor};
use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const N: u64 = 512;
const K: usize = 8;
const ITERS: u32 = 40;

#[derive(Serialize)]
struct ScanBench {
    workload: String,
    features: u64,
    iterations: u32,
    features_per_sec_scratch: f64,
    features_per_sec_alloc_reference: f64,
    speedup: f64,
    allocs_per_feature_scratch: f64,
    allocs_per_feature_alloc_reference: f64,
}

#[derive(Serialize)]
struct BatchPoint {
    batch: usize,
    scored_features_per_sec: f64,
    scaling_vs_batch1: f64,
}

#[derive(Serialize)]
struct BatchBench {
    workload: String,
    features: u64,
    iterations: u32,
    batches: Vec<BatchPoint>,
}

const BATCH_N: u64 = 256;
const BATCH_ITERS: u32 = 20;

/// One flash pass, many queries: scored features·queries/sec per batch
/// size, on the `tir` zoo model (the paper's text-image retrieval SCN).
fn batch_mode(max_batch: usize) {
    let (engine, model, db) = zoo_engine("tir", BATCH_N, 1);
    let probes: Vec<Tensor> = (0..max_batch as u64)
        .map(|i| model.random_feature(50_000 + i))
        .collect();

    let mut sizes = vec![1usize];
    while *sizes.last().unwrap() * 2 <= max_batch {
        sizes.push(sizes.last().unwrap() * 2);
    }
    if *sizes.last().unwrap() != max_batch {
        sizes.push(max_batch);
    }

    let mut batches = Vec::new();
    for &b in &sizes {
        let requests: Vec<(&Model, &Tensor, usize)> =
            probes[..b].iter().map(|p| (&model, p, K)).collect();
        // Warm (lazy scratch init, fused-lane buffers).
        engine.scan_top_k_batch(db, &requests).unwrap();
        let start = Instant::now();
        for _ in 0..BATCH_ITERS {
            let ranked = engine.scan_top_k_batch(db, &requests).unwrap();
            assert_eq!(ranked.len(), b);
        }
        let scored = (BATCH_N * b as u64 * u64::from(BATCH_ITERS)) as f64;
        let per_sec = scored / start.elapsed().as_secs_f64();
        batches.push(BatchPoint {
            batch: b,
            scored_features_per_sec: per_sec,
            scaling_vs_batch1: 0.0,
        });
    }
    let base = batches[0].scored_features_per_sec;
    for p in &mut batches {
        p.scaling_vs_batch1 = p.scored_features_per_sec / base;
    }

    let report = BatchBench {
        workload: "tir".into(),
        features: BATCH_N,
        iterations: BATCH_ITERS,
        batches,
    };

    println!("== batched scan ({} tir features) ==", BATCH_N);
    for p in &report.batches {
        println!(
            "  batch {:>2}: {:>14.0} scored features*queries/s  ({:.2}x vs batch=1)",
            p.batch, p.scored_features_per_sec, p.scaling_vs_batch1
        );
    }

    let json = serde_json::to_string(&report).expect("report serializes");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("BENCH_batch.json");
    std::fs::write(&path, json).expect("write BENCH_batch.json");
    println!("[written {}]", path.display());
}

#[derive(Serialize)]
struct CascadeBench {
    workload: String,
    features: u64,
    iterations: u32,
    rounds: u32,
    k: usize,
    kernel_backend: String,
    features_per_sec_exact: f64,
    features_per_sec_cascade: f64,
    speedup: f64,
    prune_rate: f64,
    rescore_rate: f64,
    recall_at_k: f64,
}

const CASCADE_ROUNDS: u32 = 7;

/// Exact path vs pruning cascade on the default workload. The cascade
/// is bit-identical by construction; this both asserts that (and
/// derives recall@K from the actual result sets, which CI gates at
/// exactly 1.0) and measures how much compute the pruning saves.
fn cascade_mode() {
    let (engine, model, db) = textqa_engine(N, 1);
    let probe = model.random_feature(99_991);

    // Warm both paths and take the correctness measurements.
    let (exact_top, _, exact_stats) = engine.scan_top_k_with(db, &model, &probe, K, true).unwrap();
    let (cascade_top, _, stats) = engine
        .scan_top_k_with(db, &model, &probe, K, false)
        .unwrap();
    assert_eq!(exact_stats.pruned, 0, "exact path must never prune");
    let hits = cascade_top.iter().filter(|h| exact_top.contains(h)).count();
    let recall = hits as f64 / exact_top.len() as f64;
    assert_eq!(
        exact_top, cascade_top,
        "cascade result diverged from the exact path"
    );
    let prune_rate = stats.pruned as f64 / N as f64;
    let rescore_rate = stats.rescored as f64 / N as f64;

    let round = |exact: bool| {
        let start = Instant::now();
        for _ in 0..ITERS {
            let (top, _, _) = engine
                .scan_top_k_with(db, &model, &probe, K, exact)
                .unwrap();
            assert_eq!(top.len(), K);
        }
        (N * u64::from(ITERS)) as f64 / start.elapsed().as_secs_f64()
    };

    // Interleave the two paths round by round so scheduler noise hits
    // both equally; best-of-rounds tracks the true cost.
    let mut exact_fps = 0.0f64;
    let mut cascade_fps = 0.0f64;
    for _ in 0..CASCADE_ROUNDS {
        exact_fps = exact_fps.max(round(true));
        cascade_fps = cascade_fps.max(round(false));
    }

    let report = CascadeBench {
        workload: "textqa".into(),
        features: N,
        iterations: ITERS,
        rounds: CASCADE_ROUNDS,
        k: K,
        kernel_backend: deepstore_nn::kernel_backend().into(),
        features_per_sec_exact: exact_fps,
        features_per_sec_cascade: cascade_fps,
        speedup: cascade_fps / exact_fps,
        prune_rate,
        rescore_rate,
        recall_at_k: recall,
    };

    println!(
        "== pruning cascade ({} textqa features, k={}, {} kernels) ==",
        N, K, report.kernel_backend
    );
    println!("  exact path : {exact_fps:>12.0} features/s (best of {CASCADE_ROUNDS})");
    println!(
        "  cascade    : {cascade_fps:>12.0} features/s  ({:.1}% pruned, {:.1}% rescored)",
        prune_rate * 100.0,
        rescore_rate * 100.0
    );
    println!("  speedup    : {:>12.2}x", report.speedup);
    println!("  recall@K   : {recall:>12.3}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("BENCH_cascade.json");
    std::fs::write(&path, serde_json::to_string(&report).expect("serializes"))
        .expect("write BENCH_cascade.json");
    println!("[written {}]", path.display());

    assert!(
        (recall - 1.0).abs() < f64::EPSILON,
        "recall@K must be exactly 1.0, got {recall}"
    );
}

#[derive(Serialize, Deserialize)]
struct ObsCheck {
    workload: String,
    features: u64,
    iterations: u32,
    rounds: u32,
    obs_enabled: bool,
    features_per_sec: f64,
}

const OBS_ROUNDS: u32 = 5;
const OBS_MAX_OVERHEAD: f64 = 0.02;

/// Measures scan throughput under the current build's telemetry
/// configuration and, when both configurations have been measured,
/// enforces the <2% instrumentation-overhead budget.
fn obs_check_mode() {
    let obs_enabled = cfg!(feature = "obs");
    let (engine, model, db) = textqa_engine(N, 1);
    let probe = model.random_feature(99_991);
    engine.scan_top_k(db, &model, &probe, K).unwrap();

    // Best-of-rounds wall clock: the minimum round time tracks the true
    // cost, everything above it is scheduler noise.
    let mut best_fps = 0.0f64;
    for _ in 0..OBS_ROUNDS {
        let start = Instant::now();
        for _ in 0..ITERS {
            assert_eq!(engine.scan_top_k(db, &model, &probe, K).unwrap().len(), K);
        }
        let fps = (N * u64::from(ITERS)) as f64 / start.elapsed().as_secs_f64();
        best_fps = best_fps.max(fps);
    }

    let report = ObsCheck {
        workload: "textqa".into(),
        features: N,
        iterations: ITERS,
        rounds: OBS_ROUNDS,
        obs_enabled,
        features_per_sec: best_fps,
    };
    let (mine, other) = if obs_enabled {
        ("BENCH_obs_on.json", "BENCH_obs_off.json")
    } else {
        ("BENCH_obs_off.json", "BENCH_obs_on.json")
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(mine);
    std::fs::write(&path, serde_json::to_string(&report).expect("serializes"))
        .expect("write obs check report");
    println!(
        "== obs overhead check (telemetry {}) ==",
        if obs_enabled { "on" } else { "off" }
    );
    println!("  scan throughput: {best_fps:>12.0} features/s (best of {OBS_ROUNDS})");
    println!("[written {}]", path.display());

    let Ok(bytes) = std::fs::read_to_string(dir.join(other)) else {
        println!("  (counterpart {other} not found; run the other feature config to compare)");
        return;
    };
    let counterpart: ObsCheck = serde_json::from_str(&bytes).expect("counterpart parses");
    let (on, off) = if obs_enabled {
        (best_fps, counterpart.features_per_sec)
    } else {
        (counterpart.features_per_sec, best_fps)
    };
    let overhead = 1.0 - on / off;
    println!(
        "  obs on {on:.0} vs off {off:.0} features/s: {:.2}% overhead (budget {:.0}%)",
        overhead * 100.0,
        OBS_MAX_OVERHEAD * 100.0
    );
    assert!(
        overhead <= OBS_MAX_OVERHEAD,
        "telemetry overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        OBS_MAX_OVERHEAD * 100.0
    );
    println!("  within budget");
}

#[derive(Serialize)]
struct FaultCheck {
    workload: String,
    features: u64,
    iterations: u32,
    rounds: u32,
    features_per_sec_plan_empty: f64,
    features_per_sec_plan_armed: f64,
    overhead: f64,
}

const FAULT_MAX_OVERHEAD: f64 = 0.02;
const FAULT_ROUNDS: u32 = 7;

/// Measures the cost of the fault layer itself: scan throughput with no
/// fault plan versus an armed plan that injects nothing (a zero-rate
/// transient layer). The armed plan forces every page read through the
/// per-page outcome check and the retry machinery's bookkeeping, so the
/// difference is the hot-path price of fault tolerance. Budget: <2%.
fn fault_check_mode() {
    use deepstore_flash::fault::FaultPlan;
    // Two identically-seeded engines over the same data, one with the
    // fault layer armed (zero-rate: every read takes the layered outcome
    // path but nothing ever fails).
    let (empty_engine, model, db) = textqa_engine(N, 1);
    let (mut armed_engine, _, armed_db) = textqa_engine(N, 1);
    armed_engine.inject_faults(FaultPlan::none().transient(0.0, 1));
    let probe = model.random_feature(99_991);
    empty_engine.scan_top_k(db, &model, &probe, K).unwrap();
    armed_engine
        .scan_top_k(armed_db, &model, &probe, K)
        .unwrap();

    let round = |engine: &deepstore_core::engine::Engine, db| {
        let start = Instant::now();
        for _ in 0..ITERS {
            assert_eq!(engine.scan_top_k(db, &model, &probe, K).unwrap().len(), K);
        }
        (N * u64::from(ITERS)) as f64 / start.elapsed().as_secs_f64()
    };

    // Interleave the two configurations round by round so clock drift
    // and scheduler noise hit both equally; best-of-rounds per config
    // tracks the true cost.
    let mut empty_fps = 0.0f64;
    let mut armed_fps = 0.0f64;
    for _ in 0..FAULT_ROUNDS {
        empty_fps = empty_fps.max(round(&empty_engine, db));
        armed_fps = armed_fps.max(round(&armed_engine, armed_db));
    }
    let overhead = 1.0 - armed_fps / empty_fps;

    let report = FaultCheck {
        workload: "textqa".into(),
        features: N,
        iterations: ITERS,
        rounds: FAULT_ROUNDS,
        features_per_sec_plan_empty: empty_fps,
        features_per_sec_plan_armed: armed_fps,
        overhead,
    };
    println!("== fault layer overhead check ({N} textqa features) ==");
    println!("  plan empty : {empty_fps:>12.0} features/s (best of {FAULT_ROUNDS})");
    println!("  plan armed : {armed_fps:>12.0} features/s (zero-rate transient)");
    println!(
        "  overhead   : {:.2}% (budget {:.0}%)",
        overhead * 100.0,
        FAULT_MAX_OVERHEAD * 100.0
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("BENCH_fault.json");
    std::fs::write(&path, serde_json::to_string(&report).expect("serializes"))
        .expect("write BENCH_fault.json");
    println!("[written {}]", path.display());

    assert!(
        overhead <= FAULT_MAX_OVERHEAD,
        "fault layer overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        FAULT_MAX_OVERHEAD * 100.0
    );
    println!("  within budget");
}

#[derive(Serialize)]
struct PersistBench {
    workload: String,
    features: u64,
    iterations: u32,
    rounds: u32,
    features_per_sec_heap: f64,
    features_per_sec_mmap: f64,
    ratio: f64,
}

const PERSIST_MIN_RATIO: f64 = 0.8;
const PERSIST_ROUNDS: u32 = 7;

/// Measures the price of the persistent backend on the scan hot path:
/// the same textqa database scanned from a `HeapStore` engine versus an
/// `MmapStore` engine over a single-file image. The mmap read path
/// borrows pages straight from the mapping, so after warm-up (which
/// faults every page in) it must hold at least `PERSIST_MIN_RATIO` of
/// heap throughput. Exits non-zero below the gate and writes
/// `results/BENCH_persist.json`.
fn persist_mode() {
    let (heap_engine, model, heap_db) = textqa_engine(N, 1);

    // Mirror `textqa_engine` exactly, but over a fresh single-file image.
    let cfg = deepstore_core::config::DeepStoreConfig::small().with_parallelism(1);
    let path = std::env::temp_dir().join(format!(
        "deepstore-bench-persist-{}.img",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let store =
        deepstore_flash::MmapStore::create(&path, cfg.ssd.geometry).expect("create bench image");
    let mut mmap_engine = deepstore_core::engine::Engine::with_store(cfg, Box::new(store));
    let features: Vec<Tensor> = (0..N).map(|i| model.random_feature(i)).collect();
    let mmap_db = mmap_engine.write_db(&features).unwrap();
    mmap_engine.seal_db(mmap_db).unwrap();

    // Warm-up: scratch arenas, quant sidecars, and (for mmap) first-touch
    // page faults across the whole database.
    let probe = model.random_feature(99_991);
    let heap_top = heap_engine.scan_top_k(heap_db, &model, &probe, K).unwrap();
    let mmap_top = mmap_engine.scan_top_k(mmap_db, &model, &probe, K).unwrap();
    assert_eq!(
        heap_top
            .iter()
            .map(|s| (s.feature_id, s.score.to_bits()))
            .collect::<Vec<_>>(),
        mmap_top
            .iter()
            .map(|s| (s.feature_id, s.score.to_bits()))
            .collect::<Vec<_>>(),
        "heap and mmap backends disagree on ranked top-K"
    );

    let round = |engine: &deepstore_core::engine::Engine, db| {
        let start = Instant::now();
        for _ in 0..ITERS {
            assert_eq!(engine.scan_top_k(db, &model, &probe, K).unwrap().len(), K);
        }
        (N * u64::from(ITERS)) as f64 / start.elapsed().as_secs_f64()
    };

    // Interleave backends round by round so clock drift and scheduler
    // noise hit both equally; best-of-rounds per backend tracks true cost.
    let mut heap_fps = 0.0f64;
    let mut mmap_fps = 0.0f64;
    for _ in 0..PERSIST_ROUNDS {
        heap_fps = heap_fps.max(round(&heap_engine, heap_db));
        mmap_fps = mmap_fps.max(round(&mmap_engine, mmap_db));
    }
    let ratio = mmap_fps / heap_fps;

    let report = PersistBench {
        workload: "textqa".into(),
        features: N,
        iterations: ITERS,
        rounds: PERSIST_ROUNDS,
        features_per_sec_heap: heap_fps,
        features_per_sec_mmap: mmap_fps,
        ratio,
    };
    println!("== persistent backend scan check ({N} textqa features) ==");
    println!("  heap store : {heap_fps:>12.0} features/s (best of {PERSIST_ROUNDS})");
    println!("  mmap image : {mmap_fps:>12.0} features/s");
    println!("  ratio      : {ratio:.3} (gate >= {PERSIST_MIN_RATIO})");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let out = dir.join("BENCH_persist.json");
    std::fs::write(&out, serde_json::to_string(&report).expect("serializes"))
        .expect("write BENCH_persist.json");
    println!("[written {}]", out.display());

    drop(mmap_engine);
    let _ = std::fs::remove_file(&path);

    assert!(
        ratio >= PERSIST_MIN_RATIO,
        "mmap scan throughput ratio {ratio:.3} below the {PERSIST_MIN_RATIO} gate"
    );
    println!("  within gate");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--obs-check") {
        obs_check_mode();
        return;
    }
    if args.first().map(String::as_str) == Some("--persist") {
        persist_mode();
        return;
    }
    if args.first().map(String::as_str) == Some("--fault-check") {
        fault_check_mode();
        return;
    }
    if args.first().map(String::as_str) == Some("--cascade") {
        cascade_mode();
        return;
    }
    if args.first().map(String::as_str) == Some("--batch") {
        let max_batch = args
            .get(1)
            .map(|v| v.parse().expect("--batch takes a positive integer"))
            .unwrap_or(8);
        assert!(max_batch >= 1, "--batch takes a positive integer");
        batch_mode(max_batch);
        return;
    }

    let (engine, model, db) = textqa_engine(N, 1);
    let (small_engine, _, small_db) = textqa_engine(N / 2, 1);
    let probe = model.random_feature(99_991);

    // Warm both paths (lazy one-time init, first-touch growth).
    engine.scan_top_k(db, &model, &probe, K).unwrap();
    small_engine
        .scan_top_k(small_db, &model, &probe, K)
        .unwrap();
    naive_scan(&engine, &model, db, &probe, N, K);

    // Allocations per scored feature, differentially.
    let count = |f: &dyn Fn() -> usize| {
        let before = allocations();
        let hits = f();
        assert_eq!(hits, K);
        allocations() - before
    };
    let scratch_large = count(&|| engine.scan_top_k(db, &model, &probe, K).unwrap().len());
    let scratch_small = count(&|| {
        small_engine
            .scan_top_k(small_db, &model, &probe, K)
            .unwrap()
            .len()
    });
    let naive_large = count(&|| naive_scan(&engine, &model, db, &probe, N, K).len());
    let naive_small =
        count(&|| naive_scan(&small_engine, &model, small_db, &probe, N / 2, K).len());
    let per_feature =
        |large: u64, small: u64| (large.saturating_sub(small)) as f64 / (N - N / 2) as f64;

    // Throughput: whole-database scans, wall clock.
    let timed = |f: &dyn Fn() -> usize| {
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        (N * u64::from(ITERS)) as f64 / start.elapsed().as_secs_f64()
    };
    let scratch_fps = timed(&|| engine.scan_top_k(db, &model, &probe, K).unwrap().len());
    let naive_fps = timed(&|| naive_scan(&engine, &model, db, &probe, N, K).len());

    let report = ScanBench {
        workload: "textqa".into(),
        features: N,
        iterations: ITERS,
        features_per_sec_scratch: scratch_fps,
        features_per_sec_alloc_reference: naive_fps,
        speedup: scratch_fps / naive_fps,
        allocs_per_feature_scratch: per_feature(scratch_large, scratch_small),
        allocs_per_feature_alloc_reference: per_feature(naive_large, naive_small),
    };

    println!("== scan hot path ({} textqa features) ==", N);
    println!(
        "  scratch scan   : {:>12.0} features/s  ({:.3} allocs/feature)",
        report.features_per_sec_scratch, report.allocs_per_feature_scratch
    );
    println!(
        "  alloc reference: {:>12.0} features/s  ({:.3} allocs/feature)",
        report.features_per_sec_alloc_reference, report.allocs_per_feature_alloc_reference
    );
    println!("  speedup        : {:>12.2}x", report.speedup);

    let json = serde_json::to_string(&report).expect("report serializes");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("BENCH_scan.json");
    std::fs::write(&path, json).expect("write BENCH_scan.json");
    println!("[written {}]", path.display());
}
