//! Table 1: intelligent-query applications and their characteristics.
//!
//! Prints the reconstructed models' feature sizes, layer counts, FLOPs
//! and weight sizes next to the paper's published values, with the
//! relative deviation of each reconstruction.

use deepstore_bench::report::{emit, num, Table};
use deepstore_nn::zoo;

fn main() {
    let mut table = Table::new(&[
        "app",
        "feature_kb",
        "paper_kb",
        "conv",
        "fc",
        "ew",
        "mflops",
        "paper_mflops",
        "flops_dev%",
        "weight_mb",
        "paper_mb",
        "weight_dev%",
    ]);
    for row in zoo::paper_table1() {
        let m = zoo::by_name(row.name).expect("zoo covers table 1");
        let feature_kb = m.feature_bytes() as f64 / 1024.0;
        let mflops = m.total_flops() as f64 / 1e6;
        let weight_mb = m.weight_bytes() as f64 / (1024.0 * 1024.0);
        table.row(&[
            row.name.to_string(),
            num(feature_kb, 1),
            num(row.feature_kb, 1),
            m.conv_layer_count().to_string(),
            m.fc_layer_count().to_string(),
            m.element_wise_layer_count().to_string(),
            num(mflops, 3),
            num(row.mflops, 2),
            num(100.0 * (mflops - row.mflops) / row.mflops, 1),
            num(weight_mb, 3),
            num(row.weight_mb, 2),
            num(100.0 * (weight_mb - row.weight_mb) / row.weight_mb, 1),
        ]);
    }
    emit(
        "table1",
        "Table 1: application characteristics (reconstructed vs paper)",
        &table,
    );
}
