//! Ablation: FTL behaviour under database-replacement churn.
//!
//! Intelligent-query databases are written once and replaced wholesale
//! (§4.7.2). This study fills and drops databases repeatedly and reports
//! the FTL's write amplification (1.0 — whole-block invalidation leaves
//! nothing to copy), GC pressure, and wear spread under the wear-aware
//! allocator.

use deepstore_bench::report::{emit, num, Table};
use deepstore_flash::gc::churn;
use deepstore_flash::SsdConfig;

fn main() {
    let cfg = SsdConfig::small();
    let mut table = Table::new(&[
        "fill_pct",
        "rounds",
        "host_blocks",
        "erases",
        "gc_runs",
        "write_amp",
        "max_wear",
    ]);
    for (fill, rounds) in [(0.3, 10), (0.5, 10), (0.8, 10)] {
        let r = churn(&cfg, rounds, fill).expect("churn survives");
        table.row(&[
            num(fill * 100.0, 0),
            rounds.to_string(),
            r.host_blocks_written.to_string(),
            r.erases.to_string(),
            r.gc_runs.to_string(),
            num(r.write_amplification, 3),
            r.max_wear.to_string(),
        ]);
    }
    emit(
        "ablation_gc",
        "Ablation: FTL churn (write once, replace wholesale)",
        &table,
    );
}
