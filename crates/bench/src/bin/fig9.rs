//! Figure 9: sensitivity to flash page-read latency.
//!
//! Sweeps the flash array read latency across ratios 1:8 through 4:1 of
//! the 53 µs default, for the traditional GPU+SSD system and all three
//! DeepStore levels, normalized to each system's 1:1 performance. The
//! paper's finding: channel- and chip-level accelerators lose only
//! ~10% / ~4% at 4x latency (plane-level parallelism hides the reads),
//! and the traditional / SSD-level systems are insensitive (bounded by
//! the external link and compute, respectively).

use deepstore_baseline::GpuSsdSystem;
use deepstore_bench::report::{emit, num, Table};
use deepstore_core::accel::scan;
use deepstore_core::config::{AcceleratorLevel, DeepStoreConfig};
use deepstore_workloads::App;

const RATIOS: [(u64, u64); 6] = [(1, 8), (1, 4), (1, 2), (1, 1), (2, 1), (4, 1)];

fn main() {
    let mut table = Table::new(&["app", "system", "1:8", "1:4", "1:2", "1:1", "2:1", "4:1"]);
    for app in App::all() {
        let spec = app.scan_spec();

        // Traditional system.
        let times: Vec<f64> = RATIOS
            .iter()
            .map(|&(n, d)| {
                let mut cfg = deepstore_flash::SsdConfig::paper_default();
                cfg.timing = cfg.timing.with_read_latency_ratio(n, d);
                GpuSsdSystem::paper_default(&app.name)
                    .with_ssd_config(cfg)
                    .query(&spec)
                    .total_secs
            })
            .collect();
        push_normalized(&mut table, &app.name, "traditional", &times);

        // DeepStore levels.
        for level in AcceleratorLevel::ALL {
            let times: Vec<Option<f64>> = RATIOS
                .iter()
                .map(|&(n, d)| {
                    let mut cfg = DeepStoreConfig::paper_default();
                    cfg.ssd.timing = cfg.ssd.timing.with_read_latency_ratio(n, d);
                    let workload = app.scan_workload(&cfg);
                    scan(level, &workload, &cfg).map(|t| t.elapsed.as_secs_f64())
                })
                .collect();
            if times.iter().all(|t| t.is_some()) {
                let times: Vec<f64> = times.into_iter().map(|t| t.expect("checked")).collect();
                push_normalized(&mut table, &app.name, level.name(), &times);
            }
        }
    }
    emit(
        "fig9",
        "Figure 9: speedup vs flash read latency (normalized to 53us = 1:1)",
        &table,
    );
}

fn push_normalized(table: &mut Table, app: &str, system: &str, times: &[f64]) {
    let base = times[3]; // the 1:1 point
    let mut row = vec![app.to_string(), system.to_string()];
    row.extend(times.iter().map(|t| num(base / t, 3)));
    table.row(&row);
}
