//! Ablation: packed vs page-aligned feature placement (§4.4).
//!
//! The paper page-aligns every feature vector for O(1) offset arithmetic;
//! this ablation quantifies what that costs: small features waste flash
//! bandwidth (8x read amplification for TIR's 2 KB features on 16 KB
//! pages), so the flash-bound channel-level scans slow down by exactly
//! the amplification factor, while ReId's 44 KB features barely notice.

use deepstore_bench::report::{emit, num, Table};
use deepstore_core::accel::channel_level_scan;
use deepstore_core::config::DeepStoreConfig;
use deepstore_flash::layout::Placement;
use deepstore_workloads::App;

fn main() {
    let mut table = Table::new(&["app", "read_amp", "packed_s", "aligned_s", "slowdown"]);
    for app in App::all() {
        let mut packed_cfg = DeepStoreConfig::paper_default();
        packed_cfg.placement = Placement::Packed;
        let mut aligned_cfg = DeepStoreConfig::paper_default();
        aligned_cfg.placement = Placement::PageAligned;

        let packed = channel_level_scan(&app.scan_workload(&packed_cfg), &packed_cfg);
        let aligned_w = app.scan_workload(&aligned_cfg);
        let aligned = channel_level_scan(&aligned_w, &aligned_cfg);
        table.row(&[
            app.name.clone(),
            num(aligned_w.layout.read_amplification(), 2),
            num(packed.elapsed.as_secs_f64(), 3),
            num(aligned.elapsed.as_secs_f64(), 3),
            num(
                aligned.elapsed.as_secs_f64() / packed.elapsed.as_secs_f64(),
                2,
            ),
        ]);
    }
    emit(
        "ablation_layout",
        "Ablation: feature placement (channel-level scan, 25 GiB payload)",
        &table,
    );
}
