//! Figure 6: systolic-array performance vs PE count.
//!
//! Sweeps the PE budget from 128 to 32768, taking the best aspect ratio
//! at each point, for the largest fully-connected and convolutional
//! layers of the studied applications. Reproduces the saturation points
//! of §4.5: FC gains nothing beyond 512 PEs, convolution nothing beyond
//! 1024.

use deepstore_bench::report::{emit, num, Table};
use deepstore_nn::zoo;
use deepstore_systolic::dse::{largest_conv, largest_fc, pe_sweep};

const BUDGETS: [usize; 9] = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

fn main() {
    let models = zoo::all();
    let fc = largest_fc(&models).expect("zoo has FC layers");
    let conv = largest_conv(&models).expect("zoo has conv layers");

    let mut table = Table::new(&[
        "pes",
        "fc_speedup",
        "fc_best_aspect",
        "conv_speedup",
        "conv_best_aspect",
    ]);
    let fc_sweep = pe_sweep(&fc, &BUDGETS, 800e6);
    let conv_sweep = pe_sweep(&conv, &BUDGETS, 800e6);
    for ((fp, fs), (cp, cs)) in fc_sweep.iter().zip(conv_sweep.iter()) {
        table.row(&[
            fp.pes.to_string(),
            num(*fs, 2),
            format!("{}x{}", fp.best_aspect.0, fp.best_aspect.1),
            num(*cs, 2),
            format!("{}x{}", cp.best_aspect.0, cp.best_aspect.1),
        ]);
    }
    emit(
        "fig6",
        "Figure 6: speedup vs PE count (best aspect ratio; FC saturates at 512, conv at 1024)",
        &table,
    );
    println!(
        "largest FC layer: {fc:?}\nlargest conv layer: {conv:?} (reduction = {})",
        conv.intrinsic_parallelism()
    );
}
