//! Extension experiment: retrieval recall under read faults.
//!
//! The premise behind the Query Cache (§4.6) is that DNN-based queries
//! "have already tolerated a certain level of errors". This experiment
//! quantifies that on the *functional* engine: a clustered gallery, a
//! probe per cluster, recall@K measured against brute-force ground truth,
//! while the flash array suffers increasing uncorrectable-read rates
//! (scans skip unreadable features). Recall degrades roughly linearly
//! with the fault rate — graceful, as the error-tolerance argument
//! predicts.

use deepstore_bench::report::{emit, num, Table};
use deepstore_core::engine::Engine;
use deepstore_core::DeepStoreConfig;
use deepstore_flash::fault::FaultPlan;
use deepstore_nn::zoo;
use deepstore_workloads::gen::FeatureGen;

const IDENTITIES: usize = 16;
const SIGHTINGS: u64 = 4;
const K: usize = 4;

fn recall_at_fault_rate(rate: f64, parallelism: usize) -> (f64, u64) {
    let model = zoo::reid().seeded_metric(31);
    let gen = FeatureGen::new(model.feature_len(), IDENTITIES, 0.05, 5);
    let gallery = gen.features(IDENTITIES as u64 * SIGHTINGS);

    let mut engine = Engine::new(DeepStoreConfig::small().with_parallelism(parallelism));
    let db = engine.write_db(&gallery).unwrap();
    engine.seal_db(db).unwrap();
    let geometry = engine.config().ssd.geometry;
    engine.inject_faults(FaultPlan::random(&geometry, rate, 77));

    let mut correct = 0usize;
    for identity in 0..IDENTITIES {
        let probe = gen.feature(identity as u64 + 10_000 * IDENTITIES as u64);
        let top = engine.scan_top_k(db, &model, &probe, K).unwrap();
        correct += top
            .iter()
            .filter(|hit| (hit.feature_id % IDENTITIES as u64) as usize == identity)
            .count();
    }
    (
        correct as f64 / (IDENTITIES * K) as f64,
        engine.unreadable_skipped(),
    )
}

fn main() {
    // Optional scan worker-thread count (0 = one per host core); recall
    // numbers are identical at every setting by the scan's determinism
    // guarantee — the knob only changes host wall-clock time.
    let parallelism: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("usage: recall [parallelism]"))
        .unwrap_or(1);
    let mut table = Table::new(&["fault_rate_pct", "recall_at_4", "features_skipped"]);
    for rate in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let (recall, skipped) = recall_at_fault_rate(rate, parallelism);
        table.row(&[num(rate * 100.0, 0), num(recall, 3), skipped.to_string()]);
    }
    emit(
        "recall",
        "Extension: ReId recall@4 vs uncorrectable-read rate (functional engine)",
        &table,
    );
}
