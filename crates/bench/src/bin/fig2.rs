//! Figure 2: GPU+SSD time breakdown per application and batch size.
//!
//! For each application and batch size (two GPU generations), reports the
//! percentage split between SSD read / cudaMemcpy / GPU compute and the
//! pipelined total — reproducing the paper's finding that storage I/O is
//! 56–90% of the execution time and that the Volta GPU's 33%-faster
//! compute leaves the total unchanged.

use deepstore_baseline::{GpuSpec, GpuSsdSystem};
use deepstore_bench::report::{emit, num, Table};
use deepstore_workloads::App;

fn main() {
    let mut table = Table::new(&[
        "app",
        "gpu",
        "batch",
        "ssd_read_s",
        "memcpy_s",
        "compute_s",
        "total_s",
        "io_pct",
        "memcpy_pct",
        "compute_pct",
    ]);
    for app in App::all() {
        let spec = app.scan_spec();
        for (gpu_name, gpu) in [
            ("pascal", GpuSpec::titan_xp()),
            ("volta", GpuSpec::titan_v()),
        ] {
            for &batch in &app.batch_sweep {
                let sys = GpuSsdSystem::paper_default(&app.name).with_gpu(gpu.clone());
                let b = sys.query_batched(&spec, batch);
                let (io, mc, cp) = b.percentages();
                table.row(&[
                    app.name.clone(),
                    gpu_name.to_string(),
                    batch.to_string(),
                    num(b.ssd_read_secs, 3),
                    num(b.memcpy_secs, 3),
                    num(b.compute_secs, 3),
                    num(b.total_secs, 3),
                    num(io, 1),
                    num(mc, 1),
                    num(cp, 1),
                ]);
            }
        }
    }
    emit(
        "fig2",
        "Figure 2: GPU+SSD breakdown vs batch size (paper band: I/O is 56-90%)",
        &table,
    );
}
