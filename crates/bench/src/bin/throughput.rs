//! Extension experiment: sustained query throughput and tail latency.
//!
//! The paper evaluates single-query latency; a deployed drive serves
//! query *streams*. This experiment drives the runtime scheduler with a
//! Poisson-like arrival process at several offered loads and reports
//! throughput and latency percentiles per accelerator level — with and
//! without the query cache — using the analytic per-query service times
//! at paper scale (25 GiB TIR database).

use deepstore_bench::report::{emit, num, Table};
use deepstore_core::accel::scan;
use deepstore_core::config::{AcceleratorLevel, DeepStoreConfig};
use deepstore_core::qcache::lookup_time_for;
use deepstore_nn::zoo;
use deepstore_workloads::App;

/// M/D/1 queueing summary at a given utilization.
fn queueing_latency(service_s: f64, utilization: f64) -> (f64, f64) {
    // Mean wait for M/D/1: rho * s / (2 (1 - rho)); p99 approximated via
    // the exponential tail of the waiting distribution.
    let wait = utilization * service_s / (2.0 * (1.0 - utilization));
    let p99 = wait * 4.6 / 1.0_f64.max(1e-9) + service_s; // -ln(0.01) ~ 4.6
    (wait + service_s, p99)
}

fn main() {
    let app = App::new("tir");
    let cfg = DeepStoreConfig::paper_default();
    let workload = app.scan_workload(&cfg);
    let qc_lookup = lookup_time_for(
        1000,
        &zoo::tir().layer_shapes(),
        cfg.ssd.geometry.channels,
        cfg.controller_overhead_cycles,
    );

    let mut table = Table::new(&[
        "level",
        "qc",
        "service_s",
        "max_qps",
        "lat_at_50pct_s",
        "p99_at_50pct_s",
        "lat_at_90pct_s",
    ]);
    for level in AcceleratorLevel::ALL {
        let Some(t) = scan(level, &workload, &cfg) else {
            continue;
        };
        for (qc, miss_rate) in [("off", 1.0f64), ("on(0.80 miss)", 0.80)] {
            let service = if qc == "off" {
                t.elapsed.as_secs_f64()
            } else {
                qc_lookup.as_secs_f64() + miss_rate * t.elapsed.as_secs_f64()
            };
            let max_qps = 1.0 / service;
            let (l50, p99_50) = queueing_latency(service, 0.5);
            let (l90, _) = queueing_latency(service, 0.9);
            table.row(&[
                level.to_string(),
                qc.to_string(),
                num(service, 3),
                num(max_qps, 3),
                num(l50, 3),
                num(p99_50, 3),
                num(l90, 3),
            ]);
        }
    }
    emit(
        "throughput",
        "Extension: sustained TIR query throughput & latency (25 GiB DB, M/D/1)",
        &table,
    );
}
