//! Figure 14: Query Cache miss rate vs cache size.
//!
//! At the 10% threshold, sweeps the cache capacity 100–1000 entries for
//! the uniform, Zipf(0.7) and Zipf(0.8) distributions. The paper's
//! finding: miss rate falls with capacity, but for distributions with
//! locality the benefit of larger caches shrinks — a small (~22 MB for
//! TIR) in-DRAM cache suffices.

use deepstore_bench::qc::{measure_miss_rate, QcRunConfig};
use deepstore_bench::report::{emit, num, Table};
use deepstore_workloads::TraceDistribution;

fn main() {
    let mut table = Table::new(&["entries", "uniform_pct", "zipf07_pct", "zipf08_pct"]);
    for capacity in (100..=1000).step_by(100) {
        let miss = |dist| {
            let cfg = QcRunConfig {
                capacity,
                ..QcRunConfig::fig13(0.10, dist)
            };
            measure_miss_rate(&cfg) * 100.0
        };
        table.row(&[
            capacity.to_string(),
            num(miss(TraceDistribution::Uniform), 1),
            num(miss(TraceDistribution::Zipfian { alpha: 0.7 }), 1),
            num(miss(TraceDistribution::Zipfian { alpha: 0.8 }), 1),
        ]);
    }
    emit(
        "fig14",
        "Figure 14: Query Cache miss rate vs cache size (threshold 10%)",
        &table,
    );
}
