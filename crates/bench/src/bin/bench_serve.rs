//! `BENCH_serve.json` emitter: open-loop serving latency vs load.
//!
//! Calibrates the engine's sequential query rate, then sweeps offered
//! arrival rates around it (0.25x to 2x), running the concurrent
//! serving front end at each rate with an open-loop Poisson load over
//! a Zipfian mix with noisy duplicates. For every rate it records
//! completion counts, rejections, and p50/p99/p999 latency measured
//! from each query's *scheduled* arrival, plus the server's coalescing
//! counters. Saturation throughput is the best achieved completion
//! rate across the sweep.
//!
//! Modes:
//! * default — in-process channel transport (deterministic accept
//!   path, no sockets).
//! * `--tcp` — loopback TCP transport, exercising the real listener
//!   and stream framing (the CI serve-smoke configuration).
//! * `--smoke` — shrink the database and per-rate query counts for CI.
//! * `--obs-check` — closed-loop serve-path throughput under the
//!   current `obs` feature configuration; after both configurations
//!   have run, writes `BENCH_serve_obs.json` and enforces the <2%
//!   instrumentation-overhead budget on the serve path.
//!
//! Exits non-zero unless the sweep covers >= 4 rates and the lowest
//! rate completed every query with a finite, positive p999.

use deepstore_bench::report::results_dir;
use deepstore_core::proto::{
    decode_response, encode_command, Command, CommandChannel, HostClient, ProtoError, Response,
};
use deepstore_core::serve::{
    channel_transport, obs_hot_path_exercise, serve, ServeConfig, StagePercentiles, TcpClient,
    TcpTransport,
};
use deepstore_core::{AcceleratorLevel, DbId, DeepStore, DeepStoreConfig, ModelId, QueryRequest};
use deepstore_nn::{zoo, Model, ModelGraph, Tensor};
use deepstore_workloads::loadgen::{
    plan, run_open_loop, ArrivalProcess, LoadPlanConfig, LoadReport, LoadTarget,
};
use deepstore_workloads::TraceDistribution;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 61;
const CONNECTIONS: usize = 6;
const QUEUE_DEPTH: usize = 32;

struct Sizes {
    features: u64,
    calib_queries: usize,
    rate_multipliers: &'static [f64],
    /// Seconds of offered load per rate point.
    window_secs: f64,
}

const SMOKE: Sizes = Sizes {
    features: 96,
    calib_queries: 24,
    rate_multipliers: &[0.25, 0.5, 1.0, 1.5],
    window_secs: 1.0,
};

const FULL: Sizes = Sizes {
    features: 256,
    calib_queries: 48,
    rate_multipliers: &[0.25, 0.5, 1.0, 1.5, 2.0],
    window_secs: 3.0,
};

#[derive(Serialize)]
struct ServePoint {
    offered_qps: f64,
    achieved_qps: f64,
    offered: u64,
    completed: u64,
    rejected_overloaded: u64,
    rejected_quota: u64,
    errors: u64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    max_ms: f64,
    engine_batches: u64,
    coalesced_queries: u64,
    /// Server-side per-stage percentiles (queue wait, engine service,
    /// end-to-end from scheduled arrival); zeros without `obs`.
    stages: StagePercentiles,
}

#[derive(Serialize)]
struct ServeBench {
    version: u32,
    workload: String,
    transport: String,
    features: u64,
    connections: usize,
    queue_depth: usize,
    calibrated_seq_qps: f64,
    saturation_qps: f64,
    points: Vec<ServePoint>,
}

fn fresh_store(model: &Model, features: u64) -> (DeepStore, ModelId, DbId) {
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    let db_features: Vec<Tensor> = (0..features).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&db_features).expect("write_db");
    let mid = store
        .load_model(&ModelGraph::from_model(model))
        .expect("load_model");
    (store, mid, db)
}

/// Sequential closed-loop rate of the bare engine: the yardstick the
/// arrival-rate sweep is scaled against.
fn calibrate(model: &Model, sizes: &Sizes) -> f64 {
    let (mut store, mid, db) = fresh_store(model, sizes.features);
    // Warm one pass.
    let warm = store
        .query(QueryRequest::new(model.random_feature(90_000), mid, db).k(4))
        .expect("warm query");
    store.results(warm).expect("warm results");
    let start = Instant::now();
    for i in 0..sizes.calib_queries {
        let qid = store
            .query(QueryRequest::new(model.random_feature(91_000 + i as u64), mid, db).k(4))
            .expect("calibration query");
        store.results(qid).expect("calibration results");
    }
    sizes.calib_queries as f64 / start.elapsed().as_secs_f64()
}

fn rate_point<C, F>(
    connect: F,
    model: &Model,
    qps: f64,
    sizes: &Sizes,
    mid: ModelId,
    db: DbId,
) -> LoadReport
where
    C: CommandChannel,
    F: Fn() -> Result<C, ProtoError> + Sync,
{
    let queries = ((qps * sizes.window_secs) as usize).clamp(24, 2_000);
    let offered = plan(&LoadPlanConfig {
        queries,
        qps,
        arrivals: ArrivalProcess::Poisson,
        dim: model.feature_len(),
        pool_size: 32,
        clusters: 8,
        distribution: TraceDistribution::Zipfian { alpha: 0.7 },
        duplicate_rate: 0.2,
        seed: SEED,
    });
    run_open_loop(
        connect,
        CONNECTIONS,
        &offered,
        LoadTarget {
            model: mid,
            db,
            k: 4,
            level: AcceleratorLevel::Ssd,
        },
    )
    .expect("open-loop run failed")
}

#[derive(Serialize, Deserialize)]
struct ServeObsCheck {
    workload: String,
    burst: usize,
    queries_per_round: usize,
    pairs: u32,
    obs_compiled: bool,
    /// Single-threaded CPU price of one recording-hot-path call, ns.
    hot_path_ns_per_request: f64,
    /// Single-threaded CPU price of one directly dispatched query, ns.
    direct_ns_per_query: f64,
    /// `hot_path_ns_per_request / direct_ns_per_query` — the gated
    /// fraction of serve-path work spent on instrumentation.
    overhead: f64,
    /// Context only (wall clock, noisy on shared hosts): pipelined
    /// serve throughput with the runtime recording switch on / off.
    qps_recording_on: f64,
    qps_recording_off: f64,
}

#[derive(Serialize)]
struct ServeObsGate {
    version: u32,
    hot_path_ns_per_request: f64,
    direct_ns_per_query: f64,
    overhead: f64,
    /// The obs-off build's `overhead` — the same harness with the hot
    /// path compiled out, i.e. the measurement's noise floor. Absent
    /// until that build has run.
    null_overhead: Option<f64>,
    budget: f64,
    on_qps: f64,
    off_qps: f64,
}

const SERVE_OBS_PAIRS: u32 = 6;
const SERVE_OBS_BURST: usize = 64;
const SERVE_OBS_MAX_OVERHEAD: f64 = 0.02;

/// Total CPU time consumed by every thread of this process, in ns,
/// from the scheduler's own accounting (`sum_exec_runtime` in
/// `/proc/self/task/*/schedstat`). `None` off Linux or when the
/// kernel lacks `CONFIG_SCHEDSTATS`.
fn process_cpu_ns() -> Option<u64> {
    let mut total = 0u64;
    for entry in std::fs::read_dir("/proc/self/task").ok()? {
        let stat = std::fs::read_to_string(entry.ok()?.path().join("schedstat")).ok()?;
        total += stat.split_whitespace().next()?.parse::<u64>().ok()?;
    }
    Some(total)
}

/// CPU ns consumed by `f`, by scheduler accounting; wall-clock ns when
/// the platform offers no accounting. Call while single-threaded —
/// the delta is process-wide.
fn cpu_time_ns(f: impl FnOnce()) -> f64 {
    let before = process_cpu_ns();
    let start = Instant::now();
    f();
    let wall = start.elapsed().as_nanos() as f64;
    match (before, process_cpu_ns()) {
        (Some(a), Some(b)) if b > a => (b - a) as f64,
        _ => wall,
    }
}

/// Prices the serve-path recording hot path (request-id assignment,
/// stage histograms, flight-recorder write, SLO estimator) against
/// the cost of a served query, and enforces the <2% overhead budget,
/// writing `BENCH_serve_obs.json`.
///
/// The gated ratio is built from two single-threaded, CPU-accounted
/// measurements: `serve::obs_hot_path_exercise` timed per call, over
/// the per-query CPU cost of a direct dispatch loop against an
/// identical store (a conservative denominator — a served query costs
/// strictly more than a direct one). Wall-clock A/B was tried in two
/// forms first — obs-on vs obs-off builds as separate processes, then
/// runtime-toggled paired rounds within one process — and neither can
/// resolve 2% on a shared single-CPU host: between processes absolute
/// throughput drifts by tens of percent, and even adjacent paired
/// rounds disagree by several percent because the serve pipeline's
/// park/wake scheduling cost is chaotic at every timescale. CPU
/// accounting sidesteps both: a noisy neighbour's cycles are never
/// charged to this process, and the single-threaded loops have no
/// scheduling component at all. The obs-off build runs the same
/// harness with the hot path compiled out — a null experiment whose
/// near-zero "overhead" is recorded as the noise floor.
///
/// The pipelined serve rounds still run — alternating the
/// [`deepstore_core::serve::ServeObs::set_enabled`] runtime switch
/// between adjacent rounds — but their throughput is reported as
/// context, not gated. Frames are pre-encoded and fired in bursts so
/// the engine's job queue stays full; a lockstep query/reply loop
/// would park every thread between hops and measure futex
/// transitions instead of work.
fn obs_check_mode(smoke: bool) {
    let obs_compiled = cfg!(feature = "obs");
    let bursts = if smoke { 4 } else { 10 };
    let rounds = 2 * SERVE_OBS_PAIRS;
    let model = zoo::textqa().seeded(SEED);

    // Phase 1 (single-threaded): price a directly dispatched query.
    let (mut direct_store, dmid, ddb) = fresh_store(&model, if smoke { 64 } else { 128 });
    let direct_queries = if smoke { 128 } else { 384 };
    let probes: Vec<Tensor> = (0..direct_queries + 1)
        .map(|i| model.random_feature(80_000 + i as u64))
        .collect();
    let mut run_direct = |qfv: &Tensor| {
        let qid = direct_store
            .query(QueryRequest::new(qfv.clone(), dmid, ddb).k(4))
            .expect("direct query");
        direct_store.results(qid).expect("direct results");
    };
    run_direct(&probes[direct_queries]); // warm
    let direct_ns_per_query = cpu_time_ns(|| {
        for qfv in &probes[..direct_queries] {
            run_direct(qfv);
        }
    }) / direct_queries as f64;

    // Phase 2 (single-threaded): price the recording hot path.
    let hot_iters: u64 = if smoke { 400_000 } else { 2_000_000 };
    obs_hot_path_exercise(hot_iters / 8); // warm
    let hot_path_ns_per_request =
        cpu_time_ns(|| obs_hot_path_exercise(hot_iters)) / hot_iters as f64;
    let overhead = hot_path_ns_per_request / direct_ns_per_query;

    // Phase 3 (context): pipelined serve throughput, recording toggled
    // between adjacent rounds.
    let (store, mid, db) = fresh_store(&model, if smoke { 64 } else { 128 });
    let (transport, connector) = channel_transport();
    let handle = serve(
        transport,
        store,
        ServeConfig {
            queue_depth: 4 * SERVE_OBS_BURST,
            ..ServeConfig::default()
        },
    );
    let mut host = HostClient::over(connector.connect().expect("connect"));
    host.hello("obs-check").expect("hello");
    let warm = host
        .query(
            &model.random_feature(90_000),
            4,
            mid,
            db,
            AcceleratorLevel::Ssd,
            false,
        )
        .expect("warm query");
    host.get_results(warm).expect("warm results");

    // Pre-encode every frame (distinct features, so the query cache
    // never shortcuts the scan): encode cost stays out of the timing.
    let raw = connector.connect().expect("connect raw");
    let frames: Vec<Vec<Vec<u8>>> = (0..rounds)
        .map(|r| {
            (0..bursts * SERVE_OBS_BURST)
                .map(|i| {
                    let seed = 91_000 + u64::from(r) * 10_000 + i as u64;
                    encode_command(&Command::Query {
                        qfv: model.random_feature(seed),
                        k: 4,
                        model: mid,
                        db,
                        level: AcceleratorLevel::Ssd,
                        exact: false,
                        request_id: 0,
                        sched_lag_ns: 0,
                    })
                })
                .collect()
        })
        .collect();

    let run_round = |round: &Vec<Vec<u8>>| -> f64 {
        let start = Instant::now();
        for burst in round.chunks(SERVE_OBS_BURST) {
            for frame in burst {
                raw.send_frame(frame).expect("send query frame");
            }
            for _ in burst {
                match decode_response(&raw.recv_frame().expect("recv reply")) {
                    Ok(Response::QuerySubmitted { .. }) => {}
                    other => panic!("unexpected reply: {other:?}"),
                }
            }
        }
        round.len() as f64 / start.elapsed().as_secs_f64()
    };

    // Alternate which half of each pair records first, so a slow
    // monotonic machine drift biases half the pairs each way.
    let mut on_qps = Vec::new();
    let mut off_qps = Vec::new();
    for (p, pair) in frames.chunks(2).enumerate() {
        let on_first = p % 2 == 0;
        handle.obs().set_enabled(on_first);
        let first = run_round(&pair[0]);
        handle.obs().set_enabled(!on_first);
        let second = run_round(&pair[1]);
        let (on, off) = if on_first {
            (first, second)
        } else {
            (second, first)
        };
        on_qps.push(on);
        off_qps.push(off);
    }
    handle.obs().set_enabled(true);
    drop(raw);
    drop(host);
    let (_store, stats) = handle.shutdown();
    assert_eq!(
        stats.queries_admitted,
        (bursts * SERVE_OBS_BURST) as u64 * u64::from(rounds) + 1
    );

    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        v[v.len() / 2]
    };
    let report = ServeObsCheck {
        workload: "textqa".into(),
        burst: SERVE_OBS_BURST,
        queries_per_round: bursts * SERVE_OBS_BURST,
        pairs: SERVE_OBS_PAIRS,
        obs_compiled,
        hot_path_ns_per_request,
        direct_ns_per_query,
        overhead,
        qps_recording_on: median(on_qps),
        qps_recording_off: median(off_qps),
    };
    let (mine, other) = if obs_compiled {
        ("BENCH_serve_obs_on.json", "BENCH_serve_obs_off.json")
    } else {
        ("BENCH_serve_obs_off.json", "BENCH_serve_obs_on.json")
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(mine);
    std::fs::write(&path, serde_json::to_string(&report).expect("serializes"))
        .expect("write serve obs check report");
    println!(
        "== serve-path obs overhead check (recording hot path {}) ==",
        if obs_compiled {
            "compiled in"
        } else {
            "compiled out: null experiment"
        }
    );
    println!(
        "  hot path:         {hot_path_ns_per_request:>10.1} ns/request (CPU, single-threaded)"
    );
    println!("  direct dispatch:  {direct_ns_per_query:>10.0} ns/query (CPU, single-threaded)");
    println!(
        "  overhead:         {:>9.3}% of a served query (budget {:.0}%)",
        overhead * 100.0,
        SERVE_OBS_MAX_OVERHEAD * 100.0
    );
    println!(
        "  serve throughput: {:>10.0} q/s recording on, {:.0} q/s off (wall clock, context only)",
        report.qps_recording_on, report.qps_recording_off
    );
    println!(
        "  engine batches:   {:>10} ({} queries coalesced)",
        stats.engine_batches, stats.coalesced_queries
    );
    println!("[written {}]", path.display());

    if obs_compiled {
        // The gate artifact; fold in the off-build's noise-floor run
        // when it has already happened.
        let null_overhead = std::fs::read_to_string(dir.join(other))
            .ok()
            .and_then(|bytes| serde_json::from_str::<ServeObsCheck>(&bytes).ok())
            .map(|null| null.overhead);
        let gate = ServeObsGate {
            version: 2,
            hot_path_ns_per_request,
            direct_ns_per_query,
            overhead,
            null_overhead,
            budget: SERVE_OBS_MAX_OVERHEAD,
            on_qps: report.qps_recording_on,
            off_qps: report.qps_recording_off,
        };
        let gate_path = dir.join("BENCH_serve_obs.json");
        std::fs::write(
            &gate_path,
            serde_json::to_string(&gate).expect("serializes"),
        )
        .expect("write BENCH_serve_obs.json");
        match null_overhead {
            Some(n) => println!(
                "  noise floor:      {:>9.3}% (obs-off build, same harness)",
                n * 100.0
            ),
            None => println!("  (no {other} yet; run the obs-off build for the noise floor)"),
        }
        println!("[written {}]", gate_path.display());
    }
    assert!(
        overhead <= SERVE_OBS_MAX_OVERHEAD,
        "serve-path telemetry overhead {:.3}% exceeds the {:.0}% budget",
        overhead * 100.0,
        SERVE_OBS_MAX_OVERHEAD * 100.0
    );
    println!("  within budget");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let tcp = args.iter().any(|a| a == "--tcp");
    if args.iter().any(|a| a == "--obs-check") {
        obs_check_mode(smoke);
        return;
    }
    let sizes = if smoke { SMOKE } else { FULL };

    let model = zoo::textqa().seeded(SEED);
    let seq_qps = calibrate(&model, &sizes);
    println!("== serving sweep ({} textqa features) ==", sizes.features);
    println!("  calibrated sequential rate: {seq_qps:>9.0} q/s");

    let mut points = Vec::new();
    for &mult in sizes.rate_multipliers {
        let qps = seq_qps * mult;
        let (store, mid, db) = fresh_store(&model, sizes.features);
        let cfg = ServeConfig {
            queue_depth: QUEUE_DEPTH,
            ..ServeConfig::default()
        };
        let (report, stats, stages) = if tcp {
            let transport = TcpTransport::bind("127.0.0.1:0").expect("bind loopback");
            let handle = serve(transport, store, cfg);
            let endpoint = handle.endpoint().to_string();
            let report = rate_point(
                || TcpClient::connect(&endpoint),
                &model,
                qps,
                &sizes,
                mid,
                db,
            );
            let stages = handle.obs().stage_percentiles();
            let (_store, stats) = handle.shutdown();
            (report, stats, stages)
        } else {
            let (transport, connector) = channel_transport();
            let handle = serve(transport, store, cfg);
            let report = rate_point(|| connector.connect(), &model, qps, &sizes, mid, db);
            let stages = handle.obs().stage_percentiles();
            let (_store, stats) = handle.shutdown();
            (report, stats, stages)
        };
        println!(
            "  offered {:>8.0} q/s ({mult:>4.2}x): achieved {:>8.0} q/s  p50 {:>8.3} ms  \
             p99 {:>8.3} ms  p999 {:>8.3} ms  ({} completed, {} rejected)",
            report.offered_qps,
            report.achieved_qps,
            report.p50_ms,
            report.p99_ms,
            report.p999_ms,
            report.completed,
            report.rejected_overloaded + report.rejected_quota,
        );
        if stages.samples > 0 {
            println!(
                "       server stages (p50/p99): queue {:>7.1}/{:>7.1} us  \
                 service {:>7.1}/{:>7.1} us  e2e {:>7.1}/{:>7.1} us",
                stages.queue_p50_ns as f64 / 1e3,
                stages.queue_p99_ns as f64 / 1e3,
                stages.service_p50_ns as f64 / 1e3,
                stages.service_p99_ns as f64 / 1e3,
                stages.e2e_p50_ns as f64 / 1e3,
                stages.e2e_p99_ns as f64 / 1e3,
            );
        }
        points.push(ServePoint {
            offered_qps: report.offered_qps,
            achieved_qps: report.achieved_qps,
            offered: report.offered,
            completed: report.completed,
            rejected_overloaded: report.rejected_overloaded,
            rejected_quota: report.rejected_quota,
            errors: report.errors,
            mean_ms: report.mean_ms,
            p50_ms: report.p50_ms,
            p99_ms: report.p99_ms,
            p999_ms: report.p999_ms,
            max_ms: report.max_ms,
            engine_batches: stats.engine_batches,
            coalesced_queries: stats.coalesced_queries,
            stages,
        });
    }

    let saturation_qps = points.iter().fold(0.0f64, |m, p| m.max(p.achieved_qps));
    println!("  saturation throughput: {saturation_qps:>9.0} q/s");

    let report = ServeBench {
        version: 1,
        workload: "textqa".into(),
        transport: if tcp { "tcp" } else { "channel" }.into(),
        features: sizes.features,
        connections: CONNECTIONS,
        queue_depth: QUEUE_DEPTH,
        calibrated_seq_qps: seq_qps,
        saturation_qps,
        points,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("[written {}]", path.display());

    // SLO gates: the sweep must be wide enough to see saturation, and
    // at the lowest rate the server must complete everything with a
    // measurable, finite tail.
    assert!(
        report.points.len() >= 4,
        "sweep too narrow: {} rates",
        report.points.len()
    );
    let lowest = &report.points[0];
    assert_eq!(
        lowest.completed, lowest.offered,
        "dropped queries at the lowest rate"
    );
    assert!(
        lowest.p999_ms > 0.0 && lowest.p999_ms.is_finite(),
        "p999 not finite/positive at the lowest rate: {}",
        lowest.p999_ms
    );
    assert!(saturation_qps > 0.0, "no completions anywhere in the sweep");
    println!("  SLO gates passed");
}
