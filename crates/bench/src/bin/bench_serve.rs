//! `BENCH_serve.json` emitter: open-loop serving latency vs load.
//!
//! Calibrates the engine's sequential query rate, then sweeps offered
//! arrival rates around it (0.25x to 2x), running the concurrent
//! serving front end at each rate with an open-loop Poisson load over
//! a Zipfian mix with noisy duplicates. For every rate it records
//! completion counts, rejections, and p50/p99/p999 latency measured
//! from each query's *scheduled* arrival, plus the server's coalescing
//! counters. Saturation throughput is the best achieved completion
//! rate across the sweep.
//!
//! Modes:
//! * default — in-process channel transport (deterministic accept
//!   path, no sockets).
//! * `--tcp` — loopback TCP transport, exercising the real listener
//!   and stream framing (the CI serve-smoke configuration).
//! * `--smoke` — shrink the database and per-rate query counts for CI.
//!
//! Exits non-zero unless the sweep covers >= 4 rates and the lowest
//! rate completed every query with a finite, positive p999.

use deepstore_bench::report::results_dir;
use deepstore_core::proto::{CommandChannel, ProtoError};
use deepstore_core::serve::{channel_transport, serve, ServeConfig, TcpClient, TcpTransport};
use deepstore_core::{AcceleratorLevel, DbId, DeepStore, DeepStoreConfig, ModelId, QueryRequest};
use deepstore_nn::{zoo, Model, ModelGraph, Tensor};
use deepstore_workloads::loadgen::{
    plan, run_open_loop, ArrivalProcess, LoadPlanConfig, LoadReport, LoadTarget,
};
use deepstore_workloads::TraceDistribution;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 61;
const CONNECTIONS: usize = 6;
const QUEUE_DEPTH: usize = 32;

struct Sizes {
    features: u64,
    calib_queries: usize,
    rate_multipliers: &'static [f64],
    /// Seconds of offered load per rate point.
    window_secs: f64,
}

const SMOKE: Sizes = Sizes {
    features: 96,
    calib_queries: 24,
    rate_multipliers: &[0.25, 0.5, 1.0, 1.5],
    window_secs: 1.0,
};

const FULL: Sizes = Sizes {
    features: 256,
    calib_queries: 48,
    rate_multipliers: &[0.25, 0.5, 1.0, 1.5, 2.0],
    window_secs: 3.0,
};

#[derive(Serialize)]
struct ServePoint {
    offered_qps: f64,
    achieved_qps: f64,
    offered: u64,
    completed: u64,
    rejected_overloaded: u64,
    rejected_quota: u64,
    errors: u64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    max_ms: f64,
    engine_batches: u64,
    coalesced_queries: u64,
}

#[derive(Serialize)]
struct ServeBench {
    version: u32,
    workload: String,
    transport: String,
    features: u64,
    connections: usize,
    queue_depth: usize,
    calibrated_seq_qps: f64,
    saturation_qps: f64,
    points: Vec<ServePoint>,
}

fn fresh_store(model: &Model, features: u64) -> (DeepStore, ModelId, DbId) {
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    let db_features: Vec<Tensor> = (0..features).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&db_features).expect("write_db");
    let mid = store
        .load_model(&ModelGraph::from_model(model))
        .expect("load_model");
    (store, mid, db)
}

/// Sequential closed-loop rate of the bare engine: the yardstick the
/// arrival-rate sweep is scaled against.
fn calibrate(model: &Model, sizes: &Sizes) -> f64 {
    let (mut store, mid, db) = fresh_store(model, sizes.features);
    // Warm one pass.
    let warm = store
        .query(QueryRequest::new(model.random_feature(90_000), mid, db).k(4))
        .expect("warm query");
    store.results(warm).expect("warm results");
    let start = Instant::now();
    for i in 0..sizes.calib_queries {
        let qid = store
            .query(QueryRequest::new(model.random_feature(91_000 + i as u64), mid, db).k(4))
            .expect("calibration query");
        store.results(qid).expect("calibration results");
    }
    sizes.calib_queries as f64 / start.elapsed().as_secs_f64()
}

fn rate_point<C, F>(
    connect: F,
    model: &Model,
    qps: f64,
    sizes: &Sizes,
    mid: ModelId,
    db: DbId,
) -> LoadReport
where
    C: CommandChannel,
    F: Fn() -> Result<C, ProtoError> + Sync,
{
    let queries = ((qps * sizes.window_secs) as usize).clamp(24, 2_000);
    let offered = plan(&LoadPlanConfig {
        queries,
        qps,
        arrivals: ArrivalProcess::Poisson,
        dim: model.feature_len(),
        pool_size: 32,
        clusters: 8,
        distribution: TraceDistribution::Zipfian { alpha: 0.7 },
        duplicate_rate: 0.2,
        seed: SEED,
    });
    run_open_loop(
        connect,
        CONNECTIONS,
        &offered,
        LoadTarget {
            model: mid,
            db,
            k: 4,
            level: AcceleratorLevel::Ssd,
        },
    )
    .expect("open-loop run failed")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let tcp = args.iter().any(|a| a == "--tcp");
    let sizes = if smoke { SMOKE } else { FULL };

    let model = zoo::textqa().seeded(SEED);
    let seq_qps = calibrate(&model, &sizes);
    println!("== serving sweep ({} textqa features) ==", sizes.features);
    println!("  calibrated sequential rate: {seq_qps:>9.0} q/s");

    let mut points = Vec::new();
    for &mult in sizes.rate_multipliers {
        let qps = seq_qps * mult;
        let (store, mid, db) = fresh_store(&model, sizes.features);
        let cfg = ServeConfig {
            queue_depth: QUEUE_DEPTH,
            ..ServeConfig::default()
        };
        let (report, stats) = if tcp {
            let transport = TcpTransport::bind("127.0.0.1:0").expect("bind loopback");
            let handle = serve(transport, store, cfg);
            let endpoint = handle.endpoint().to_string();
            let report = rate_point(
                || TcpClient::connect(&endpoint),
                &model,
                qps,
                &sizes,
                mid,
                db,
            );
            let (_store, stats) = handle.shutdown();
            (report, stats)
        } else {
            let (transport, connector) = channel_transport();
            let handle = serve(transport, store, cfg);
            let report = rate_point(|| connector.connect(), &model, qps, &sizes, mid, db);
            let (_store, stats) = handle.shutdown();
            (report, stats)
        };
        println!(
            "  offered {:>8.0} q/s ({mult:>4.2}x): achieved {:>8.0} q/s  p50 {:>8.3} ms  \
             p99 {:>8.3} ms  p999 {:>8.3} ms  ({} completed, {} rejected)",
            report.offered_qps,
            report.achieved_qps,
            report.p50_ms,
            report.p99_ms,
            report.p999_ms,
            report.completed,
            report.rejected_overloaded + report.rejected_quota,
        );
        points.push(ServePoint {
            offered_qps: report.offered_qps,
            achieved_qps: report.achieved_qps,
            offered: report.offered,
            completed: report.completed,
            rejected_overloaded: report.rejected_overloaded,
            rejected_quota: report.rejected_quota,
            errors: report.errors,
            mean_ms: report.mean_ms,
            p50_ms: report.p50_ms,
            p99_ms: report.p99_ms,
            p999_ms: report.p999_ms,
            max_ms: report.max_ms,
            engine_batches: stats.engine_batches,
            coalesced_queries: stats.coalesced_queries,
        });
    }

    let saturation_qps = points.iter().fold(0.0f64, |m, p| m.max(p.achieved_qps));
    println!("  saturation throughput: {saturation_qps:>9.0} q/s");

    let report = ServeBench {
        version: 1,
        workload: "textqa".into(),
        transport: if tcp { "tcp" } else { "channel" }.into(),
        features: sizes.features,
        connections: CONNECTIONS,
        queue_depth: QUEUE_DEPTH,
        calibrated_seq_qps: seq_qps,
        saturation_qps,
        points,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("[written {}]", path.display());

    // SLO gates: the sweep must be wide enough to see saturation, and
    // at the lowest rate the server must complete everything with a
    // measurable, finite tail.
    assert!(
        report.points.len() >= 4,
        "sweep too narrow: {} rates",
        report.points.len()
    );
    let lowest = &report.points[0];
    assert_eq!(
        lowest.completed, lowest.offered,
        "dropped queries at the lowest rate"
    );
    assert!(
        lowest.p999_ms > 0.0 && lowest.p999_ms.is_finite(),
        "p999 not finite/positive at the lowest rate: {}",
        lowest.p999_ms
    );
    assert!(saturation_qps > 0.0, "no completions anywhere in the sweep");
    println!("  SLO gates passed");
}
