//! Figure 13: Query Cache performance vs error threshold.
//!
//! For both query distributions (uniform and Zipfian alpha=0.7), sweeps
//! the error threshold 0–20% and reports the measured miss rate plus the
//! three speedup series of the paper: Traditional+QCache over
//! Traditional, DeepStore over Traditional, and DeepStore+QCache over
//! Traditional.

use deepstore_bench::qc::{run, QcRunConfig};
use deepstore_bench::report::{emit, num, Table};
use deepstore_workloads::TraceDistribution;

const THRESHOLDS: [f64; 9] = [0.0, 0.02, 0.05, 0.08, 0.10, 0.12, 0.15, 0.18, 0.20];

fn main() {
    for (tag, dist) in [
        ("uniform", TraceDistribution::Uniform),
        ("zipf07", TraceDistribution::Zipfian { alpha: 0.7 }),
    ] {
        let mut table = Table::new(&[
            "threshold_pct",
            "miss_rate_pct",
            "traditional_qc_x",
            "deepstore_x",
            "deepstore_qc_x",
        ]);
        for &t in &THRESHOLDS {
            let r = run(&QcRunConfig::fig13(t, dist));
            table.row(&[
                num(t * 100.0, 0),
                num(r.miss_rate * 100.0, 1),
                num(r.traditional_qc_speedup(), 2),
                num(r.deepstore_speedup(), 2),
                num(r.deepstore_qc_speedup(), 2),
            ]);
        }
        emit(
            &format!("fig13_{tag}"),
            &format!("Figure 13 ({tag}): Query Cache speedup & miss rate vs threshold"),
            &table,
        );
    }
}
