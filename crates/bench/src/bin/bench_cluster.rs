//! `BENCH_cluster.json` emitter for multi-drive scatter-gather scaling.
//!
//! Partitions one textqa database across N ∈ {1, 2, 4} simulated drives
//! and measures the *simulated* per-query latency of the scatter-gather
//! path (drives run concurrently; the cluster's elapsed time is the
//! slowest shard, so the numbers are deterministic and host-independent).
//! Scaling efficiency at N is `t1 / (N · tN)`; CI gates the N=4 figure
//! at ≥ 0.7× ideal, and this binary also exits non-zero below that bar.
//!
//! The sweep asserts the merged top-K is bit-identical across every
//! drive count before timing anything: sharding is a layout choice, not
//! a semantic one.

use deepstore_bench::report::results_dir;
use deepstore_core::config::DeepStoreConfig;
use deepstore_core::{ClusterQueryRequest, DeepStoreCluster};
use deepstore_nn::{zoo, ModelGraph, Tensor};
use serde::{Deserialize, Serialize};

const FEATURES: u64 = 512;
const PROBES: u64 = 8;
const K: usize = 10;
const DRIVE_COUNTS: [usize; 3] = [1, 2, 4];
const EFFICIENCY_FLOOR: f64 = 0.7;

#[derive(Debug, Serialize, Deserialize)]
struct ClusterBench {
    workload: String,
    features: u64,
    probes: u64,
    k: u64,
    drives: Vec<u64>,
    elapsed_ns: Vec<u64>,
    speedup: Vec<f64>,
    efficiency: Vec<f64>,
    efficiency_at_4: f64,
    identical_topk: bool,
}

fn main() {
    let model = zoo::textqa().seeded_metric(7);
    let features: Vec<Tensor> = (0..FEATURES).map(|i| model.random_feature(i)).collect();
    let probes: Vec<Tensor> = (0..PROBES)
        .map(|i| model.random_feature(10_000 + i))
        .collect();

    let mut elapsed_ns = Vec::new();
    let mut rankings: Vec<Vec<(u64, u32)>> = Vec::new();
    for &n in &DRIVE_COUNTS {
        let mut cluster = DeepStoreCluster::new(n, DeepStoreConfig::small());
        let db = cluster.write_db(&features).expect("write_db");
        let mid = cluster
            .load_model(&ModelGraph::from_model(&model))
            .expect("load_model");
        let mut total_ns = 0u64;
        let mut ranking = Vec::new();
        for probe in &probes {
            let r = cluster
                .query(ClusterQueryRequest::new(probe.clone(), mid, db).k(K))
                .expect("query");
            assert_eq!(r.coverage, 1.0, "healthy cluster must cover everything");
            total_ns += r.elapsed.as_nanos();
            ranking.extend(
                r.top_k
                    .iter()
                    .map(|h| (h.global_index, h.hit.score.to_bits())),
            );
        }
        elapsed_ns.push(total_ns / PROBES);
        rankings.push(ranking);
    }

    let identical_topk = rankings.iter().all(|r| *r == rankings[0]);
    assert!(
        identical_topk,
        "scatter-gather results must be bit-identical at every drive count"
    );

    let t1 = elapsed_ns[0] as f64;
    let speedup: Vec<f64> = elapsed_ns.iter().map(|&t| t1 / t as f64).collect();
    let efficiency: Vec<f64> = DRIVE_COUNTS
        .iter()
        .zip(&elapsed_ns)
        .map(|(&n, &t)| t1 / (n as f64 * t as f64))
        .collect();
    let efficiency_at_4 = efficiency[DRIVE_COUNTS
        .iter()
        .position(|&n| n == 4)
        .expect("sweep includes N=4")];

    println!("== cluster scatter-gather scaling ({FEATURES} textqa features, k={K}) ==");
    for (i, &n) in DRIVE_COUNTS.iter().enumerate() {
        println!(
            "  N={n}: {:>12} simulated ns/query  speedup {:>5.2}x  efficiency {:>5.2}",
            elapsed_ns[i], speedup[i], efficiency[i]
        );
    }

    let report = ClusterBench {
        workload: "textqa".into(),
        features: FEATURES,
        probes: PROBES,
        k: K as u64,
        drives: DRIVE_COUNTS.iter().map(|&n| n as u64).collect(),
        elapsed_ns,
        speedup,
        efficiency,
        efficiency_at_4,
        identical_topk,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("BENCH_cluster.json");
    std::fs::write(&path, json).expect("write BENCH_cluster.json");
    println!("[written {}]", path.display());

    assert!(
        efficiency_at_4 >= EFFICIENCY_FLOOR,
        "N=4 scaling efficiency {efficiency_at_4:.3} fell below the {EFFICIENCY_FLOOR} floor"
    );
}
