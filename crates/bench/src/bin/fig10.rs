//! Figure 10: internal and external bandwidth scaling (MIR).
//!
//! (a) sweeps the channel count 4–64: the traditional system saturates at
//! its external link beyond 8 channels and the SSD-level accelerator at
//! its compute, while the channel- and chip-level designs scale linearly.
//! (b) sweeps the SSD count 1–8: the traditional system improves
//! sub-linearly (compute constant) while all DeepStore levels scale
//! linearly. All values are normalized to the traditional system with one
//! 32-channel SSD.

use deepstore_baseline::GpuSsdSystem;
use deepstore_bench::report::{emit, num, Table};
use deepstore_core::accel::scan;
use deepstore_core::config::{AcceleratorLevel, DeepStoreConfig};
use deepstore_workloads::App;

fn main() {
    let app = App::new("mir");
    let spec = app.scan_spec();
    let baseline_s = GpuSsdSystem::paper_default(&app.name)
        .query(&spec)
        .total_secs;

    // (a) Channel sweep.
    let mut table_a = Table::new(&["channels", "traditional", "ssd", "channel", "chip"]);
    for channels in [4usize, 8, 16, 32, 64] {
        let mut flash_cfg = deepstore_flash::SsdConfig::paper_default();
        flash_cfg.geometry.channels = channels;
        let trad = GpuSsdSystem::paper_default(&app.name)
            .with_ssd_config(flash_cfg.clone())
            .query(&spec)
            .total_secs;
        let mut ds_cfg = DeepStoreConfig::paper_default();
        ds_cfg.ssd = flash_cfg;
        let workload = app.scan_workload(&ds_cfg);
        let level_speedup = |level| {
            scan(level, &workload, &ds_cfg)
                .map(|t| baseline_s / t.elapsed.as_secs_f64())
                .unwrap_or(f64::NAN)
        };
        table_a.row(&[
            channels.to_string(),
            num(baseline_s / trad, 2),
            num(level_speedup(AcceleratorLevel::Ssd), 2),
            num(level_speedup(AcceleratorLevel::Channel), 2),
            num(level_speedup(AcceleratorLevel::Chip), 2),
        ]);
    }
    emit(
        "fig10a",
        "Figure 10a: speedup vs channel count (MIR, normalized to traditional @ 32ch)",
        &table_a,
    );

    // (b) SSD sweep: DeepStore scales linearly with drives (each drive
    // scans its shard independently); the traditional system aggregates
    // I/O bandwidth only.
    let cfg = DeepStoreConfig::paper_default();
    let workload = app.scan_workload(&cfg);
    let mut table_b = Table::new(&["ssds", "traditional", "ssd", "channel", "chip"]);
    for ssds in [1usize, 2, 4, 8] {
        let trad = GpuSsdSystem::paper_default(&app.name)
            .with_ssds(ssds)
            .query(&spec)
            .total_secs;
        let level_speedup = |level| {
            scan(level, &workload, &cfg)
                .map(|t| baseline_s / (t.elapsed.as_secs_f64() / ssds as f64))
                .unwrap_or(f64::NAN)
        };
        table_b.row(&[
            ssds.to_string(),
            num(baseline_s / trad, 2),
            num(level_speedup(AcceleratorLevel::Ssd), 2),
            num(level_speedup(AcceleratorLevel::Channel), 2),
            num(level_speedup(AcceleratorLevel::Chip), 2),
        ]);
    }
    emit(
        "fig10b",
        "Figure 10b: speedup vs SSD count (MIR, normalized to traditional @ 1 SSD)",
        &table_b,
    );
}
