//! Table 3: DeepStore accelerator configurations, with the constrained
//! design-space exploration verdict at each level (power estimate, area
//! estimate, and the largest PE budget that fits the level's power+area
//! envelope).

use deepstore_bench::report::{emit, num, Table};
use deepstore_core::config::AcceleratorLevel;
use deepstore_core::dse::{estimate_area_mm2, evaluate};
use deepstore_nn::zoo;
use deepstore_systolic::Dataflow;

fn main() {
    let models = zoo::all();
    let mut table = Table::new(&[
        "level",
        "pes",
        "aspect",
        "dataflow",
        "freq_mhz",
        "scratchpad_kb",
        "power_w",
        "budget_w",
        "area_mm2",
        "paper_area",
        "max_feasible_pes",
        "mix_cycles",
    ]);
    for level in AcceleratorLevel::ALL {
        let v = evaluate(level, &models);
        let arr = v.chosen.array;
        let dataflow = match arr.dataflow {
            Dataflow::OutputStationary => "OS",
            Dataflow::WeightStationary => "WS",
        };
        table.row(&[
            level.to_string(),
            arr.pes().to_string(),
            format!("{}x{}", arr.rows, arr.cols),
            dataflow.to_string(),
            num(arr.freq_hz / 1e6, 0),
            (arr.scratchpad_bytes / 1024).to_string(),
            num(v.power_w, 2),
            num(v.chosen.power_budget_w, 2),
            num(estimate_area_mm2(&arr), 2),
            num(v.chosen.area_mm2, 1),
            v.max_feasible_pes.to_string(),
            num(v.mix_cycles, 0),
        ]);
    }
    emit(
        "table3",
        "Table 3: accelerator configurations and DSE verdicts",
        &table,
    );
}
