//! Ablation: query-cache replacement policy.
//!
//! The paper uses LRU (§4.6). This ablation compares LRU against FIFO and
//! random replacement on the Figure 13 workload at the 10% threshold,
//! under both distributions.

use deepstore_bench::report::{emit, num, Table};
use deepstore_core::qcache::{QueryCache, QueryCacheConfig, ReplacementPolicy};
use deepstore_nn::zoo;
use deepstore_systolic::topk::ScoredFeature;
use deepstore_workloads::{QueryStream, TraceDistribution};

fn miss_rate(policy: ReplacementPolicy, distribution: TraceDistribution) -> f64 {
    let tir = zoo::tir();
    let mut stream = QueryStream::new(tir.feature_len(), 100_000, 4_000, distribution, 77);
    let mut cache = QueryCache::new(QueryCacheConfig {
        capacity: 1000,
        threshold: 0.10,
        qcn_accuracy: 1.0,
    })
    .with_policy(policy);
    let dummy = vec![ScoredFeature {
        score: 1.0,
        feature_id: 0,
    }];
    let warm = 2_000;
    let measured = 6_000;
    let mut misses = 0u64;
    for i in 0..(warm + measured) {
        let (_, q) = stream.next_query();
        let hit = cache.lookup(&q).is_some();
        if !hit {
            cache.insert(q, dummy.clone());
            if i >= warm {
                misses += 1;
            }
        }
    }
    misses as f64 / measured as f64
}

fn main() {
    let mut table = Table::new(&["policy", "uniform_miss_pct", "zipf07_miss_pct"]);
    for (name, policy) in [
        ("lru", ReplacementPolicy::Lru),
        ("fifo", ReplacementPolicy::Fifo),
        ("random", ReplacementPolicy::Random),
    ] {
        table.row(&[
            name.to_string(),
            num(100.0 * miss_rate(policy, TraceDistribution::Uniform), 1),
            num(
                100.0 * miss_rate(policy, TraceDistribution::Zipfian { alpha: 0.7 }),
                1,
            ),
        ]);
    }
    emit(
        "ablation_qc_policy",
        "Ablation: query-cache replacement policy (1K entries, threshold 10%)",
        &table,
    );
}
