//! Figure 8 / Table 4 (speedup half): performance of wimpy cores and the
//! SSD-, channel- and chip-level DeepStore accelerators, normalized to
//! the GPU+SSD baseline, for all five applications.

use deepstore_bench::evaluate_app;
use deepstore_bench::report::{emit, num, Table};
use deepstore_core::config::AcceleratorLevel;
use deepstore_workloads::App;

fn main() {
    let mut table = Table::new(&[
        "app",
        "gpu_s",
        "wimpy_x",
        "ssd_x",
        "paper_ssd",
        "channel_x",
        "paper_channel",
        "chip_x",
        "paper_chip",
    ]);
    for app in App::all() {
        let e = evaluate_app(&app);
        let (p_ssd, p_ch, p_chip) = app.paper_speedups();
        let speedup = |level| {
            e.level(level)
                .map(|l: &deepstore_bench::LevelEvaluation| l.speedup)
                .unwrap_or(f64::NAN)
        };
        table.row(&[
            app.name.clone(),
            num(e.gpu_time_s, 2),
            num(e.wimpy_speedup, 3),
            num(speedup(AcceleratorLevel::Ssd), 2),
            num(p_ssd, 2),
            num(speedup(AcceleratorLevel::Channel), 2),
            num(p_ch, 2),
            num(speedup(AcceleratorLevel::Chip), 2),
            p_chip.map(|v| num(v, 2)).unwrap_or_else(|| "-".into()),
        ]);
    }
    emit(
        "fig8",
        "Figure 8 / Table 4: speedup over the GPU+SSD baseline",
        &table,
    );
}
