//! Ablation: dataflow choice per level (§4.5).
//!
//! The paper asserts output-stationary for the SSD- and channel-level
//! accelerators and weight-stationary for the chip level; this ablation
//! swaps each level's dataflow and reports the per-feature SCN cycles,
//! plus the weight traffic the chip level would push over the channel bus
//! under each choice.

use deepstore_bench::report::{emit, num, Table};
use deepstore_core::config::{AcceleratorConfig, AcceleratorLevel};
use deepstore_nn::zoo;
use deepstore_systolic::cycles::{scn_cycles_per_feature, ws_plan, ws_tile_cycles_per_feature};
use deepstore_systolic::Dataflow;

fn main() {
    let mut table = Table::new(&[
        "app",
        "level",
        "os_cycles",
        "ws_cycles",
        "chosen",
        "ws_weight_resident",
    ]);
    for model in zoo::all() {
        let shapes = model.layer_shapes();
        for level in AcceleratorLevel::ALL {
            let chosen = AcceleratorConfig::for_level(level).array;
            let mut os = chosen;
            os.dataflow = Dataflow::OutputStationary;
            let mut ws = chosen;
            ws.dataflow = Dataflow::WeightStationary;
            let os_cycles = scn_cycles_per_feature(&shapes, &os);
            let ws_cycles = ws_tile_cycles_per_feature(&shapes, &ws);
            let plan = ws_plan(model.weight_bytes(), model.feature_bytes() as u64, &ws);
            table.row(&[
                model.name().to_string(),
                level.to_string(),
                os_cycles.to_string(),
                ws_cycles
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into()),
                match chosen.dataflow {
                    Dataflow::OutputStationary => "OS".to_string(),
                    Dataflow::WeightStationary => "WS".to_string(),
                },
                num(if plan.weights_resident { 1.0 } else { 0.0 }, 0),
            ]);
        }
    }
    emit(
        "ablation_dataflow",
        "Ablation: OS vs WS per level (per-feature SCN cycles)",
        &table,
    );
}
