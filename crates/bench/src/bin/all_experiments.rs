//! Regenerates every table and figure of the paper's evaluation in one
//! run, writing CSVs under `results/`.

use std::process::Command;

const EXPERIMENTS: [&str; 18] = [
    "table1",
    "fig2",
    "fig6",
    "table3",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablation_layout",
    "ablation_dataflow",
    "ablation_prefetch",
    "ablation_qc_policy",
    "ablation_gc",
    "throughput",
    "recall",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for name in EXPERIMENTS {
        println!("##### {name} #####");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
    println!("All experiments regenerated; CSVs in results/.");
}
