//! Figure 12: power-consumption breakdown of DeepStore (compute / memory
//! / flash) for the SSD-level (S), channel-level (C) and chip-level (CP)
//! accelerators on each application.

use deepstore_bench::evaluate_app;
use deepstore_bench::report::{emit, num, Table};
use deepstore_core::config::AcceleratorLevel;
use deepstore_workloads::App;

fn main() {
    let mut table = Table::new(&[
        "app",
        "level",
        "compute_pct",
        "memory_pct",
        "flash_pct",
        "total_j",
    ]);
    for app in App::all() {
        let e = evaluate_app(&app);
        for level in AcceleratorLevel::ALL {
            let Some(l) = e.level(level) else {
                table.row(&[
                    app.name.clone(),
                    level.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            };
            let (c, m, f) = l.breakdown.percentages();
            table.row(&[
                app.name.clone(),
                level.to_string(),
                num(c, 1),
                num(m, 1),
                num(f, 1),
                num(l.breakdown.total_j(), 1),
            ]);
        }
    }
    emit(
        "fig12",
        "Figure 12: dynamic energy breakdown by category (S / C / CP)",
        &table,
    );
}
