//! Ablation: FLASH_DFV prefetch-queue depth (§4.4, Figure 5).
//!
//! The queue isolates flash reads from SCN compute; its depth bounds how
//! far reads run ahead. This ablation sweeps the depth at the default and
//! quadrupled flash latencies, showing where the channel stream becomes
//! latency-bound (the Figure 9 sensitivity knob).

use deepstore_bench::report::{emit, num, Table};
use deepstore_flash::stream::ChannelStream;
use deepstore_flash::SsdConfig;

fn main() {
    let pages = 50_000; // one channel's share of a 25 GiB scan
    let mut table = Table::new(&["queue_depth", "t_53us_s", "t_212us_s", "loss_at_4x"]);
    for depth in [1usize, 2, 4, 8, 10, 16, 32, 64] {
        let base_cfg = SsdConfig::paper_default();
        let mut slow_cfg = SsdConfig::paper_default();
        slow_cfg.timing = slow_cfg.timing.with_read_latency_ratio(4, 1);
        let base = ChannelStream::new(&base_cfg)
            .with_dfv_queue(depth)
            .stream_pages(pages)
            .as_secs_f64();
        let slow = ChannelStream::new(&slow_cfg)
            .with_dfv_queue(depth)
            .stream_pages(pages)
            .as_secs_f64();
        table.row(&[
            depth.to_string(),
            num(base, 3),
            num(slow, 3),
            num(slow / base - 1.0, 3),
        ]);
    }
    emit(
        "ablation_prefetch",
        "Ablation: FLASH_DFV queue depth vs flash-latency sensitivity (50K pages/channel)",
        &table,
    );
}
