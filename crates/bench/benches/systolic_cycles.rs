//! Criterion micro-bench: systolic cycle-model evaluation throughput.
//!
//! The scan timing model calls `scn_cycles_per_feature` on every level
//! configuration; this bench keeps its cost visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepstore_core::config::{AcceleratorConfig, AcceleratorLevel};
use deepstore_nn::zoo;
use deepstore_systolic::cycles::{scn_cycles_per_feature, ws_tile_cycles_per_feature};

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("systolic_cycles");
    let channel = AcceleratorConfig::channel_level().array;
    let chip = AcceleratorConfig::chip_level().array;
    for model in zoo::all() {
        let shapes = model.layer_shapes();
        group.bench_function(format!("os/{}", model.name()), |b| {
            b.iter(|| scn_cycles_per_feature(black_box(&shapes), black_box(&channel)))
        });
        group.bench_function(format!("ws/{}", model.name()), |b| {
            b.iter(|| ws_tile_cycles_per_feature(black_box(&shapes), black_box(&chip)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scan_timing");
    let cfg = deepstore_core::DeepStoreConfig::paper_default();
    for name in ["tir", "reid"] {
        let w = deepstore_core::ScanWorkload::from_model(
            &zoo::by_name(name).unwrap(),
            25 * (1 << 30),
            &cfg,
        );
        for level in AcceleratorLevel::ALL {
            group.bench_function(format!("{name}/{level}"), |b| {
                b.iter(|| deepstore_core::scan(black_box(level), black_box(&w), black_box(&cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
