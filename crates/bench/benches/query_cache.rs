//! Criterion micro-bench: Query Cache lookups (Algorithm 1) at various
//! occupancies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deepstore_core::qcache::{QueryCache, QueryCacheConfig};
use deepstore_nn::Tensor;
use deepstore_systolic::topk::ScoredFeature;

fn filled_cache(entries: usize, dim: usize) -> QueryCache {
    let mut qc = QueryCache::new(QueryCacheConfig {
        capacity: entries,
        threshold: 0.10,
        qcn_accuracy: 1.0,
    });
    for i in 0..entries {
        qc.insert(
            Tensor::random(vec![dim], 1.0, i as u64),
            vec![ScoredFeature {
                score: 1.0,
                feature_id: i as u64,
            }],
        );
    }
    qc
}

fn bench_qcache(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_cache_lookup");
    for entries in [100usize, 500, 1000] {
        let mut qc = filled_cache(entries, 512);
        let probe = Tensor::random(vec![512], 1.0, 999_999);
        group.bench_with_input(BenchmarkId::new("miss", entries), &entries, |b, _| {
            b.iter(|| qc.lookup(black_box(&probe)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qcache);
criterion_main!(benches);
