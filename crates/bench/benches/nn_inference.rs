//! Criterion micro-bench: functional SCN inference for each Table 1
//! model (the hot loop of the functional engine's full-database scans).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepstore_nn::zoo;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("scn_inference");
    group.sample_size(30);
    for model in zoo::all() {
        let model = model.seeded(1);
        let q = model.random_feature(1);
        let d = model.random_feature(2);
        group.bench_function(model.name().to_string(), |b| {
            b.iter(|| model.similarity(black_box(&q), black_box(&d)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
