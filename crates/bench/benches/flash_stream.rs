//! Criterion micro-bench: the event-driven channel stream simulator.
//!
//! A full 25 GB scan simulates ~50 K page events per channel; this bench
//! tracks the event loop's throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deepstore_flash::stream::ChannelStream;
use deepstore_flash::SsdConfig;

fn bench_stream(c: &mut Criterion) {
    let cfg = SsdConfig::paper_default();
    let stream = ChannelStream::new(&cfg);
    let chip = ChannelStream::for_chip_direct(&cfg);
    let mut group = c.benchmark_group("flash_stream");
    for pages in [1_000u64, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::new("channel", pages), &pages, |b, &p| {
            b.iter(|| stream.stream_pages(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("chip_direct", pages), &pages, |b, &p| {
            b.iter(|| chip.stream_pages(black_box(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
