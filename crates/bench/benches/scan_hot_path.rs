//! Criterion micro-bench: the allocation-free scan hot path against the
//! seed's allocating per-feature reference.
//!
//! The engine's `scan_top_k` now walks each shard page-sequentially,
//! decodes features into a reusable f32 scratch, and scores them with
//! `Model::similarity_scratch` (zero steady-state allocations). The
//! baseline below reproduces the *original* scan structure faithfully:
//! one `read_feature` per feature (fresh `Vec<u8>` + `Tensor`), a fresh
//! merge tensor, a fresh activation tensor per layer, and a plain
//! sequential dot product — exactly what the hot path looked like before
//! the scratch-buffer rewrite. Both are measured end to end on the same
//! sealed database so the features/sec ratio is the PR's speedup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deepstore_bench::reference::{naive_scan, textqa_engine};

const N_FEATURES: u64 = 512;
const K: usize = 8;

fn bench_scan_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_hot_path");
    group.sample_size(15);

    // Baseline: the pre-rewrite scan — per-feature read + allocating
    // inference, ranked by the same sorter.
    let (engine, model, db) = textqa_engine(N_FEATURES, 1);
    let probe = model.random_feature(99_991);
    group.bench_function(format!("alloc_reference/textqa{N_FEATURES}"), |b| {
        b.iter(|| naive_scan(&engine, &model, db, black_box(&probe), N_FEATURES, K).len())
    });

    // The new path, across worker counts (0 = one per host core). The
    // results are bit-identical at every setting; only wall time moves.
    for workers in [1usize, 2, 4, 0] {
        let (engine, model, db) = textqa_engine(N_FEATURES, workers);
        let probe = model.random_feature(99_991);
        group.bench_with_input(
            BenchmarkId::new(format!("scratch_scan/textqa{N_FEATURES}"), workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    engine
                        .scan_top_k(db, &model, black_box(&probe), K)
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scan_hot_path);
criterion_main!(benches);
