//! Criterion micro-bench: end-to-end functional queries through the
//! DeepStore API on a small in-memory flash array.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deepstore_core::{DeepStore, DeepStoreConfig, QueryRequest};
use deepstore_nn::{zoo, ModelGraph};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_engine");
    group.sample_size(20);
    for name in ["textqa", "tir"] {
        let model = zoo::by_name(name).unwrap().seeded(3);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        let features: Vec<_> = (0..128).map(|i| model.random_feature(i)).collect();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        let mut seed = 10_000u64;
        group.bench_function(format!("scan128/{name}"), |b| {
            b.iter(|| {
                seed += 1;
                let q = model.random_feature(seed);
                let qid = store
                    .query(QueryRequest::new(black_box(q), mid, db).k(10))
                    .unwrap();
                store.results(qid).unwrap().top_k.len()
            })
        });
    }
    group.finish();
}

/// Wall-clock effect of the scan-parallelism knob on a larger database
/// (results are identical at every setting; only host time changes, and
/// only on multicore hosts).
fn bench_parallel_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scan");
    group.sample_size(10);
    let model = zoo::textqa().seeded(3);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let features: Vec<_> = (0..512).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    let mut seed = 20_000u64;
    for workers in [1usize, 2, 4, 8] {
        store.set_parallelism(workers);
        group.bench_with_input(
            BenchmarkId::new("scan512/textqa", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    seed += 1;
                    let q = model.random_feature(seed);
                    let qid = store
                        .query(QueryRequest::new(black_box(q), mid, db).k(10))
                        .unwrap();
                    store.results(qid).unwrap().top_k.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_parallel_scan);
criterion_main!(benches);
