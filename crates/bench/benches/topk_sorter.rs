//! Criterion micro-bench: the controller's top-K sorter (tag array +
//! mapping table).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deepstore_systolic::topk::TopKSorter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_topk(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(99);
    let scores: Vec<f32> = (0..100_000).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut group = c.benchmark_group("topk_sorter");
    for k in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("offer_100k", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = TopKSorter::new(k);
                for (i, &sc) in scores.iter().enumerate() {
                    s.offer(black_box(sc), i as u64);
                }
                s.ranked().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
