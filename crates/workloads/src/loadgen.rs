//! Open-loop load generation for the serving front end.
//!
//! A closed-loop client (issue, wait, issue) measures only its own
//! patience: when the server slows down, the client slows down with it
//! and the tail disappears from the data. Serving benchmarks therefore
//! use *open-loop* arrivals — query i is offered at a scheduled time
//! drawn from an arrival process, whether or not earlier queries have
//! completed — and report latency against the *scheduled* arrival, so
//! queueing delay under overload is visible in p99/p999.
//!
//! [`plan`] materializes a deterministic offered-load schedule
//! (Poisson or fixed-rate arrivals over a Zipfian/uniform
//! [`QueryStream`] mix, with a configurable rate of noisy duplicates
//! to exercise the query cache). [`run_open_loop`] replays a schedule
//! against any [`CommandChannel`] — the in-process channel transport
//! in tests, TCP in `deepstore loadgen` — over a pool of connections,
//! and reduces completions into a [`LoadReport`] with p50/p99/p999.

use crate::trace::{QueryStream, TraceDistribution};
use deepstore_core::error::DeepStoreError;
use deepstore_core::proto::{CommandChannel, HostClient, ProtoError};
use deepstore_core::{AcceleratorLevel, DbId, ModelId};
use deepstore_nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The inter-arrival process of the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential gaps (memoryless arrivals): the standard open-loop
    /// model for independent users.
    Poisson,
    /// Constant gaps of exactly `1/qps`: useful for reproducible
    /// saturation sweeps.
    Fixed,
}

/// Configuration for [`plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPlanConfig {
    /// Number of queries to offer.
    pub queries: usize,
    /// Target offered rate, queries per second.
    pub qps: f64,
    /// Arrival process shaping the gaps.
    pub arrivals: ArrivalProcess,
    /// Query feature-vector dimensionality (match the model).
    pub dim: usize,
    /// Distinct base queries in the pool.
    pub pool_size: usize,
    /// Semantic clusters in the pool.
    pub clusters: usize,
    /// Popularity distribution over the pool.
    pub distribution: TraceDistribution,
    /// Probability that a query is a noisy near-duplicate of a recent
    /// one (drives query-cache hits).
    pub duplicate_rate: f64,
    /// Seed for the whole schedule; same seed, same schedule.
    pub seed: u64,
}

impl Default for LoadPlanConfig {
    fn default() -> Self {
        LoadPlanConfig {
            queries: 64,
            qps: 100.0,
            arrivals: ArrivalProcess::Poisson,
            dim: 32,
            pool_size: 32,
            clusters: 8,
            distribution: TraceDistribution::Zipfian { alpha: 0.7 },
            duplicate_rate: 0.2,
            seed: 42,
        }
    }
}

/// One scheduled query in an offered-load plan.
#[derive(Debug, Clone)]
pub struct Offered {
    /// Scheduled arrival, relative to the run's epoch.
    pub at: Duration,
    /// The query feature vector to submit.
    pub qfv: Tensor,
    /// Ground-truth base-query rank (for cache-hit analysis).
    pub rank: usize,
    /// Whether this is a noisy re-emission of an earlier query.
    pub duplicate: bool,
}

/// Materialize a deterministic offered-load schedule.
///
/// # Panics
///
/// Panics if `qps` is not positive or `queries` is zero.
pub fn plan(cfg: &LoadPlanConfig) -> Vec<Offered> {
    assert!(cfg.qps > 0.0, "offered rate must be positive");
    assert!(cfg.queries > 0, "empty plan");
    let mut stream = QueryStream::new(
        cfg.dim,
        cfg.pool_size,
        cfg.clusters,
        cfg.distribution,
        cfg.seed,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA11C_E5ED);
    let mut at = 0.0f64;
    let mut history: Vec<(usize, Tensor)> = Vec::new();
    let mut out = Vec::with_capacity(cfg.queries);
    for _ in 0..cfg.queries {
        let gap = match cfg.arrivals {
            ArrivalProcess::Fixed => 1.0 / cfg.qps,
            ArrivalProcess::Poisson => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln() / cfg.qps
            }
        };
        at += gap;
        let is_dup = !history.is_empty() && rng.gen::<f64>() < cfg.duplicate_rate;
        let (rank, qfv) = if is_dup {
            // Re-emit a recent query with a tiny perturbation: close
            // enough that the query-cache QCN scores it a duplicate.
            let (rank, base) = &history[rng.gen_range(0..history.len())];
            let noise = Tensor::random(vec![base.len()], 0.01, rng.gen::<u64>());
            (*rank, base.add(&noise).expect("same dims"))
        } else {
            stream.next_query()
        };
        if !is_dup {
            history.push((rank, qfv.clone()));
            if history.len() > 64 {
                history.remove(0);
            }
        }
        out.push(Offered {
            at: Duration::from_secs_f64(at),
            qfv,
            rank,
            duplicate: is_dup,
        });
    }
    out
}

/// What each offered query is submitted against.
#[derive(Debug, Clone, Copy)]
pub struct LoadTarget {
    /// The registered model to score with.
    pub model: ModelId,
    /// The database to scan.
    pub db: DbId,
    /// Top-K size per query.
    pub k: usize,
    /// Accelerator placement.
    pub level: AcceleratorLevel,
}

/// Aggregated outcome of one open-loop run. Latency percentiles are in
/// milliseconds, measured from each query's *scheduled* arrival to its
/// completion (results fetched), so queueing under overload counts.
/// Percentile fields are `-1.0` when no query completed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// The rate the schedule targeted.
    pub offered_qps: f64,
    /// Completions per second of wall time actually achieved.
    pub achieved_qps: f64,
    /// Wall-clock duration of the run, seconds.
    pub duration_secs: f64,
    /// Queries in the schedule.
    pub offered: u64,
    /// Queries that completed (results fetched).
    pub completed: u64,
    /// Queries rejected with `Overloaded`.
    pub rejected_overloaded: u64,
    /// Queries rejected with `QuotaExceeded`.
    pub rejected_quota: u64,
    /// Queries that failed for any other reason.
    pub errors: u64,
    /// Mean completion latency, ms.
    pub mean_ms: f64,
    /// Median completion latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile completion latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile completion latency, ms.
    pub p999_ms: f64,
    /// Worst completion latency, ms.
    pub max_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return -1.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct WorkerOutcome {
    latencies_ms: Vec<f64>,
    rejected_overloaded: u64,
    rejected_quota: u64,
    errors: u64,
}

/// Replay `offered` against a server over `connections` parallel
/// client connections.
///
/// Queries are assigned round-robin; each worker sleeps until a
/// query's scheduled arrival and then submits it. With enough
/// connections this approximates a true open loop — a slow reply only
/// delays the queries assigned to that one connection, and their
/// latency is still charged from the scheduled arrival.
///
/// `connect` is called once per worker to open its connection (worker
/// `i` introduces itself as client `lg-{i}`).
pub fn run_open_loop<C, F>(
    connect: F,
    connections: usize,
    offered: &[Offered],
    target: LoadTarget,
) -> Result<LoadReport, ProtoError>
where
    C: CommandChannel,
    F: Fn() -> Result<C, ProtoError> + Sync,
{
    assert!(connections > 0, "need at least one connection");
    assert!(!offered.is_empty(), "empty schedule");
    let offered_secs = offered.last().expect("non-empty").at.as_secs_f64();
    let offered_qps = offered.len() as f64 / offered_secs.max(1e-9);
    let epoch = Instant::now();
    let outcomes: Vec<Result<WorkerOutcome, ProtoError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for w in 0..connections {
            let connect = &connect;
            handles.push(scope.spawn(move || -> Result<WorkerOutcome, ProtoError> {
                let mut host = HostClient::over(connect()?);
                host.hello(&format!("lg-{w}"))?;
                let mut outcome = WorkerOutcome {
                    latencies_ms: Vec::new(),
                    rejected_overloaded: 0,
                    rejected_quota: 0,
                    errors: 0,
                };
                for item in offered.iter().skip(w).step_by(connections) {
                    let elapsed = epoch.elapsed();
                    if item.at > elapsed {
                        std::thread::sleep(item.at - elapsed);
                    }
                    // Carry the lag past the scheduled arrival in the
                    // frame so the server's end-to-end histogram charges
                    // queueing under overload to the offered schedule
                    // (coordinated-omission-honest), and let the server
                    // assign the request id (0 = unassigned).
                    #[allow(clippy::cast_possible_truncation)]
                    let sched_lag_ns = epoch.elapsed().saturating_sub(item.at).as_nanos() as u64;
                    let submitted = host.query_traced(
                        &item.qfv,
                        target.k,
                        target.model,
                        target.db,
                        target.level,
                        false,
                        0,
                        sched_lag_ns,
                    );
                    let done = submitted.and_then(|(qid, _rid)| host.get_results(qid));
                    match done {
                        Ok(_) => {
                            let latency = epoch.elapsed().saturating_sub(item.at);
                            outcome.latencies_ms.push(latency.as_secs_f64() * 1e3);
                        }
                        Err(e) => match e.device_error() {
                            Some(DeepStoreError::Overloaded { .. }) => {
                                outcome.rejected_overloaded += 1
                            }
                            Some(DeepStoreError::QuotaExceeded { .. }) => {
                                outcome.rejected_quota += 1
                            }
                            // A transport-level failure means the
                            // connection is gone; count what's left of
                            // this worker's schedule as errors.
                            _ if e.device_error().is_none() => {
                                outcome.errors += 1;
                                return Ok(outcome);
                            }
                            _ => outcome.errors += 1,
                        },
                    }
                }
                Ok(outcome)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("load-gen worker panicked"))
            .collect()
    });
    let duration_secs = epoch.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let (mut rejected_overloaded, mut rejected_quota, mut errors) = (0u64, 0u64, 0u64);
    for outcome in outcomes {
        let outcome = outcome?;
        latencies.extend(outcome.latencies_ms);
        rejected_overloaded += outcome.rejected_overloaded;
        rejected_quota += outcome.rejected_quota;
        errors += outcome.errors;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = latencies.len() as u64;
    let mean_ms = if latencies.is_empty() {
        -1.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    Ok(LoadReport {
        offered_qps,
        achieved_qps: completed as f64 / duration_secs.max(1e-9),
        duration_secs,
        offered: offered.len() as u64,
        completed,
        rejected_overloaded,
        rejected_quota,
        errors,
        mean_ms,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        p999_ms: percentile(&latencies, 99.9),
        max_ms: latencies.last().copied().unwrap_or(-1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_core::serve::{channel_transport, serve, ServeConfig};
    use deepstore_core::{DeepStore, DeepStoreConfig};
    use deepstore_nn::{zoo, ModelGraph};

    fn small_plan(arrivals: ArrivalProcess, seed: u64) -> Vec<Offered> {
        plan(&LoadPlanConfig {
            queries: 40,
            qps: 2_000.0,
            arrivals,
            seed,
            ..LoadPlanConfig::default()
        })
    }

    #[test]
    fn plans_are_deterministic_and_monotonic() {
        for arrivals in [ArrivalProcess::Poisson, ArrivalProcess::Fixed] {
            let a = small_plan(arrivals, 7);
            let b = small_plan(arrivals, 7);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.at, y.at);
                assert_eq!(x.rank, y.rank);
                assert_eq!(x.qfv.data(), y.qfv.data());
            }
            for w in a.windows(2) {
                assert!(w[1].at > w[0].at, "arrivals must be strictly increasing");
            }
        }
        let c = small_plan(ArrivalProcess::Poisson, 8);
        assert!(small_plan(ArrivalProcess::Poisson, 7)
            .iter()
            .zip(&c)
            .any(|(x, y)| x.at != y.at));
    }

    #[test]
    fn fixed_arrivals_hit_the_target_rate_exactly() {
        let p = small_plan(ArrivalProcess::Fixed, 1);
        let gap = Duration::from_secs_f64(1.0 / 2_000.0);
        for (i, item) in p.iter().enumerate() {
            let want = gap * (i as u32 + 1);
            let diff = item.at.abs_diff(want);
            assert!(
                diff < Duration::from_micros(2),
                "gap drift at {i}: {diff:?}"
            );
        }
    }

    #[test]
    fn poisson_mean_gap_approximates_rate() {
        let p = plan(&LoadPlanConfig {
            queries: 4_000,
            qps: 1_000.0,
            arrivals: ArrivalProcess::Poisson,
            ..LoadPlanConfig::default()
        });
        let total = p.last().unwrap().at.as_secs_f64();
        let mean_gap = total / p.len() as f64;
        assert!((mean_gap - 1e-3).abs() < 2e-4, "mean gap {mean_gap}");
    }

    #[test]
    fn duplicate_rate_controls_noisy_duplicates() {
        let none = plan(&LoadPlanConfig {
            duplicate_rate: 0.0,
            ..LoadPlanConfig::default()
        });
        assert!(none.iter().all(|o| !o.duplicate));
        let most = plan(&LoadPlanConfig {
            queries: 200,
            duplicate_rate: 0.9,
            ..LoadPlanConfig::default()
        });
        let dups = most.iter().filter(|o| o.duplicate).count();
        assert!(dups > 120, "only {dups}/200 duplicates at rate 0.9");
    }

    #[test]
    fn percentiles_handle_edges() {
        assert_eq!(percentile(&[], 99.0), -1.0);
        assert_eq!(percentile(&[5.0], 99.9), 5.0);
        let v: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 99.9), 100.0);
    }

    #[test]
    fn open_loop_run_against_a_served_store() {
        let model = zoo::textqa().seeded(11);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        let features: Vec<_> = (0..32).map(|i| model.random_feature(i)).collect();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        let (transport, connector) = channel_transport();
        let handle = serve(transport, store, ServeConfig::default());

        let offered = plan(&LoadPlanConfig {
            queries: 24,
            qps: 3_000.0,
            dim: model.feature_len(),
            ..LoadPlanConfig::default()
        });
        let report = run_open_loop(
            || connector.connect(),
            3,
            &offered,
            LoadTarget {
                model: mid,
                db,
                k: 3,
                level: AcceleratorLevel::Ssd,
            },
        )
        .unwrap();
        assert_eq!(report.offered, 24);
        assert_eq!(report.completed, 24);
        assert_eq!(report.rejected_overloaded + report.rejected_quota, 0);
        assert_eq!(report.errors, 0);
        assert!(report.p50_ms >= 0.0 && report.p50_ms.is_finite());
        assert!(report.p999_ms >= report.p50_ms);
        assert!(report.max_ms >= report.p999_ms);
        assert!(report.achieved_qps > 0.0);
        let (_store, stats) = handle.shutdown();
        assert_eq!(stats.queries_admitted, 24);
        // Each worker shows up as its own tenant in the breakdown.
        assert_eq!(stats.per_tenant.len(), 3);
        assert!(stats.per_tenant.iter().all(|t| t.client.starts_with("lg-")));
        assert_eq!(stats.per_tenant.iter().map(|t| t.accepted).sum::<u64>(), 24);
    }
}
