//! Query-trace recording and replay.
//!
//! §5: "we collect the query traces from the applications running on the
//! baseline GPU+SSD system, and pass them as input to the query engine in
//! our simulator" — the simulator is trace-driven. This module provides
//! that plumbing: a serializable [`QueryTrace`] of timestamped query
//! feature vectors, a generator that samples arrival times from a seeded
//! Poisson process over a [`QueryStream`], and save/load to JSON so traces
//! can be captured once and replayed across experiments.

use crate::trace::{QueryStream, TraceDistribution};
use deepstore_flash::SimDuration;
use deepstore_nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Arrival time.
    pub arrival: SimDuration,
    /// Base-query rank the emission came from (ground truth for cache
    /// studies).
    pub rank: usize,
    /// The query feature vector.
    pub qfv: Tensor,
}

/// A recorded query trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Format version.
    pub version: u32,
    /// Mean offered load the trace was generated at, queries/second.
    pub offered_qps: f64,
    /// Entries in arrival order.
    pub entries: Vec<TraceEntry>,
}

impl QueryTrace {
    /// Current trace format version.
    pub const VERSION: u32 = 1;

    /// Generates a trace of `n` queries: content from a [`QueryStream`],
    /// arrivals from a Poisson process at `offered_qps` (exponential
    /// inter-arrival times, deterministically seeded).
    ///
    /// # Panics
    ///
    /// Panics if `offered_qps` is not positive.
    pub fn generate(stream: &mut QueryStream, n: usize, offered_qps: f64, seed: u64) -> QueryTrace {
        assert!(offered_qps > 0.0, "offered load must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11C_E5ED);
        let mut clock = SimDuration::ZERO;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = -u.ln() / offered_qps;
            clock += SimDuration::from_secs_f64(gap);
            let (rank, qfv) = stream.next_query();
            entries.push(TraceEntry {
                arrival: clock,
                rank,
                qfv,
            });
        }
        QueryTrace {
            version: Self::VERSION,
            offered_qps,
            entries,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Trace duration (last arrival).
    pub fn duration(&self) -> SimDuration {
        self.entries
            .last()
            .map(|e| e.arrival)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Serializes to JSON bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("traces always serialize")
    }

    /// Deserializes from JSON bytes.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse failure or a version mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<QueryTrace, String> {
        let t: QueryTrace = serde_json::from_slice(bytes).map_err(|e| e.to_string())?;
        if t.version != Self::VERSION {
            return Err(format!("unsupported trace version {}", t.version));
        }
        Ok(t)
    }
}

/// Convenience: a Zipf(0.7) TIR-shaped trace at a given load.
pub fn tir_trace(n: usize, offered_qps: f64, seed: u64) -> QueryTrace {
    let mut stream = QueryStream::new(
        512,
        10_000,
        2_000,
        TraceDistribution::Zipfian { alpha: 0.7 },
        seed,
    );
    QueryTrace::generate(&mut stream, n, offered_qps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> QueryStream {
        QueryStream::new(16, 100, 10, TraceDistribution::Uniform, 3)
    }

    #[test]
    fn arrivals_are_ordered_and_poisson_scaled() {
        let t = QueryTrace::generate(&mut stream(), 500, 100.0, 1);
        assert_eq!(t.len(), 500);
        for w in t.entries.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        // 500 queries at 100 qps take ~5 s (generously banded).
        let d = t.duration().as_secs_f64();
        assert!((3.0..8.0).contains(&d), "duration = {d}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = QueryTrace::generate(&mut stream(), 50, 10.0, 7);
        let b = QueryTrace::generate(&mut stream(), 50, 10.0, 7);
        assert_eq!(a, b);
        let c = QueryTrace::generate(&mut stream(), 50, 10.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn serialization_roundtrips() {
        let t = QueryTrace::generate(&mut stream(), 20, 10.0, 7);
        let back = QueryTrace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut t = QueryTrace::generate(&mut stream(), 5, 10.0, 7);
        t.version = 9;
        assert!(QueryTrace::from_bytes(&t.to_bytes()).is_err());
        assert!(QueryTrace::from_bytes(b"junk").is_err());
    }

    #[test]
    fn empty_trace_duration_is_zero() {
        let t = QueryTrace {
            version: QueryTrace::VERSION,
            offered_qps: 1.0,
            entries: Vec::new(),
        };
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimDuration::ZERO);
    }

    #[test]
    fn tir_trace_has_tir_dimension() {
        let t = tir_trace(10, 5.0, 1);
        assert_eq!(t.entries[0].qfv.len(), 512);
        assert!((t.offered_qps - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn zero_load_panics() {
        let _ = QueryTrace::generate(&mut stream(), 1, 0.0, 0);
    }
}
