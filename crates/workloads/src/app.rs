//! The five evaluated applications (§3, §6.1), each binding a Table 1
//! model to its database size and the batch-size sweep of Figure 2.

use deepstore_baseline::ScanSpec;
use deepstore_core::accel::ScanWorkload;
use deepstore_core::DeepStoreConfig;
use deepstore_nn::{zoo, Model};
use serde::{Deserialize, Serialize};

/// The application names, in Table 1 order.
pub const APP_NAMES: [&str; 5] = ["reid", "mir", "estp", "tir", "textqa"];

/// The paper's standard database payload: 25 GB of feature vectors per
/// application (§6.1: "20 feature databases, each with 25 GB").
pub const STANDARD_DB_BYTES: u64 = 25 * (1 << 30);

/// One evaluated application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct App {
    /// Short name (Table 1).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Feature-database payload bytes.
    pub db_bytes: u64,
    /// The Figure 2 batch-size sweep for this application.
    pub batch_sweep: Vec<u64>,
    /// The batch size used for the headline evaluation (§6.2: "2K, 50K,
    /// 50K, 50K, and 100K batch sizes ... such that the GPU utilization is
    /// maximized").
    pub eval_batch: u64,
}

impl App {
    /// Builds the standard configuration of a named application.
    ///
    /// # Panics
    ///
    /// Panics on unknown names; use [`App::try_new`] for fallible lookup.
    pub fn new(name: &str) -> Self {
        Self::try_new(name).unwrap_or_else(|| panic!("unknown application `{name}`"))
    }

    /// Fallible constructor.
    pub fn try_new(name: &str) -> Option<Self> {
        let (description, batch_sweep, eval_batch): (&str, Vec<u64>, u64) = match name {
            "reid" => (
                "Person re-identification across an image database",
                vec![500, 1_000, 1_500, 2_000],
                2_000,
            ),
            "mir" => (
                "Music retrieval by style and instrumentation",
                vec![5_000, 10_000, 20_000, 50_000],
                50_000,
            ),
            "estp" => (
                "Exact street-to-shop garment matching",
                vec![5_000, 10_000, 20_000, 50_000],
                50_000,
            ),
            "tir" => (
                "Text-based image retrieval from sentence queries",
                vec![5_000, 10_000, 20_000, 50_000],
                50_000,
            ),
            "textqa" => (
                "Short-text question answering reranking",
                vec![10_000, 20_000, 50_000, 100_000],
                100_000,
            ),
            _ => return None,
        };
        Some(App {
            name: name.to_string(),
            description: description.to_string(),
            db_bytes: STANDARD_DB_BYTES,
            batch_sweep,
            eval_batch,
        })
    }

    /// All five applications.
    pub fn all() -> Vec<App> {
        APP_NAMES.iter().map(|n| App::new(n)).collect()
    }

    /// The application's similarity model (unseeded).
    pub fn model(&self) -> Model {
        zoo::by_name(&self.name).expect("apps map to zoo models")
    }

    /// The baseline-facing scan spec for this application's database.
    pub fn scan_spec(&self) -> ScanSpec {
        ScanSpec::from_model(&self.model(), self.db_bytes)
    }

    /// The in-storage scan workload for this application's database.
    pub fn scan_workload(&self, cfg: &DeepStoreConfig) -> ScanWorkload {
        ScanWorkload::from_model(&self.model(), self.db_bytes, cfg)
    }

    /// Paper-reported Table 4 speedups (level, speedup) for comparison in
    /// EXPERIMENTS.md; `None` where the paper marks the level unsupported.
    pub fn paper_speedups(&self) -> (f64, f64, Option<f64>) {
        match self.name.as_str() {
            "reid" => (0.09, 3.92, None),
            "mir" => (0.32, 8.26, Some(1.01)),
            "estp" => (0.59, 13.16, Some(1.9)),
            "tir" => (0.44, 10.68, Some(1.47)),
            "textqa" => (0.4, 17.74, Some(4.62)),
            _ => unreachable!("validated in constructor"),
        }
    }

    /// Paper-reported Table 4 energy-efficiency improvements.
    pub fn paper_energy_eff(&self) -> (f64, f64, Option<f64>) {
        match self.name.as_str() {
            "reid" => (0.7, 17.1, None),
            "mir" => (1.6, 28.0, Some(2.6)),
            "estp" => (2.8, 38.6, Some(3.2)),
            "tir" => (2.1, 35.6, Some(3.7)),
            "textqa" => (2.2, 78.6, Some(13.7)),
            _ => unreachable!("validated in constructor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_resolve() {
        let apps = App::all();
        assert_eq!(apps.len(), 5);
        for app in &apps {
            assert_eq!(app.model().name(), app.name);
            assert!(app.scan_spec().num_features > 0);
            assert!(!app.batch_sweep.is_empty());
            assert_eq!(*app.batch_sweep.last().unwrap(), app.eval_batch);
        }
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(App::try_new("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn new_panics_on_unknown() {
        let _ = App::new("nope");
    }

    #[test]
    fn workload_matches_spec() {
        let cfg = DeepStoreConfig::paper_default();
        for app in App::all() {
            let spec = app.scan_spec();
            let w = app.scan_workload(&cfg);
            assert_eq!(w.num_features(), spec.num_features, "{}", app.name);
            assert_eq!(w.feature_bytes, spec.feature_bytes);
            assert_eq!(w.macs_per_cmp(), spec.macs_per_cmp);
        }
    }

    #[test]
    fn paper_numbers_have_chip_gap_only_for_reid() {
        for app in App::all() {
            let (_, _, chip) = app.paper_speedups();
            assert_eq!(chip.is_none(), app.name == "reid");
        }
    }
}
