//! Query-trace generation (§6.5).
//!
//! The Query Cache evaluation samples 100 K queries over a 100 M-image TIR
//! database "with two different distributions: uniform and Zipfian with
//! alpha equal to 0.7", where the query pool contains semantic
//! near-duplicates (the paper adds noise to Flickr30K test queries). We
//! reproduce that structure: a pool of base queries grouped into semantic
//! clusters; the stream samples a base query by the chosen distribution
//! and perturbs it, so repeated or related queries score high under the
//! QCN while unrelated queries score low.

use crate::gen::FeatureGen;
use deepstore_nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Sampling distribution over the base-query pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceDistribution {
    /// Every base query equally likely.
    Uniform,
    /// Zipfian with the given skew `alpha` (rank-1 most popular).
    Zipfian {
        /// Skew parameter (the paper evaluates 0.7 and 0.8).
        alpha: f64,
    },
}

/// A deterministic stream of query feature vectors.
#[derive(Debug, Clone)]
pub struct QueryStream {
    pool: FeatureGen,
    /// Number of distinct base queries.
    pub pool_size: usize,
    distribution: TraceDistribution,
    /// Perturbation amplitude applied per emission (the "noise ... without
    /// affecting the ground truth").
    pub emission_noise: f32,
    rng: StdRng,
    /// Cumulative distribution over pool ranks (Zipf) — empty for uniform.
    cdf: Vec<f64>,
    emitted: u64,
}

impl QueryStream {
    /// Creates a stream over a pool of `pool_size` base queries of
    /// dimension `dim`, grouped into `clusters` semantic clusters.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` or `dim` is zero.
    pub fn new(
        dim: usize,
        pool_size: usize,
        clusters: usize,
        distribution: TraceDistribution,
        seed: u64,
    ) -> Self {
        assert!(pool_size > 0 && dim > 0);
        let cdf = match distribution {
            TraceDistribution::Uniform => Vec::new(),
            TraceDistribution::Zipfian { alpha } => {
                let mut acc = 0.0;
                let weights: Vec<f64> = (1..=pool_size)
                    .map(|r| 1.0 / (r as f64).powf(alpha))
                    .collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            }
        };
        QueryStream {
            // Cluster spread 0.4: cluster-mates sit at a QCN complement of
            // ~10-17%, so they only match at generous thresholds, while
            // re-emissions of the same base (complement 0-8%) match across
            // most of the Figure 13 sweep.
            pool: FeatureGen::new(dim, clusters.max(1), 0.4, seed),
            pool_size,
            distribution,
            emission_noise: 0.35,
            rng: StdRng::seed_from_u64(seed ^ 0xF00D),
            cdf,
            emitted: 0,
        }
    }

    /// The distribution in use.
    pub fn distribution(&self) -> TraceDistribution {
        self.distribution
    }

    /// Base query `rank` (0 = most popular under Zipf).
    pub fn base_query(&self, rank: usize) -> Tensor {
        self.pool.feature(rank as u64 % self.pool_size as u64)
    }

    /// Draws the next base-query rank.
    fn next_rank(&mut self) -> usize {
        match self.distribution {
            TraceDistribution::Uniform => self.rng.gen_range(0..self.pool_size),
            TraceDistribution::Zipfian { .. } => {
                let u: f64 = self.rng.gen();
                self.cdf.partition_point(|&c| c < u).min(self.pool_size - 1)
            }
        }
    }

    /// Emits the next query: a perturbed copy of a sampled base query.
    /// The perturbation amplitude is drawn per emission from
    /// `U(0, emission_noise)`, giving the stream a *spread* of semantic
    /// distances — exactly what makes the Figure 13 threshold sweep
    /// gradual rather than a step. Returns `(rank, query)` so experiments
    /// can track ground truth.
    pub fn next_query(&mut self) -> (usize, Tensor) {
        let rank = self.next_rank();
        let base = self.base_query(rank);
        self.emitted += 1;
        let amplitude: f32 = self.rng.gen_range(0.0..=self.emission_noise);
        let noise_seed = self.rng.gen::<u64>();
        let noise = Tensor::random(vec![base.len()], amplitude.max(1e-6), noise_seed);
        (rank, base.add(&noise).expect("same dims"))
    }

    /// Queries emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl Iterator for QueryStream {
    type Item = (usize, Tensor);
    fn next(&mut self) -> Option<Self::Item> {
        Some(self.next_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rank_counts(dist: TraceDistribution, n: usize) -> HashMap<usize, usize> {
        let mut s = QueryStream::new(32, 100, 20, dist, 42);
        let mut counts = HashMap::new();
        for _ in 0..n {
            let (r, _) = s.next_query();
            *counts.entry(r).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn uniform_covers_pool_evenly() {
        let counts = rank_counts(TraceDistribution::Uniform, 20_000);
        assert!(counts.len() > 95, "only {} ranks seen", counts.len());
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        // ~200 each; allow generous sampling noise.
        assert!(max < 2 * min.max(1), "max={max} min={min}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let counts = rank_counts(TraceDistribution::Zipfian { alpha: 0.7 }, 20_000);
        let head = counts.get(&0).copied().unwrap_or(0);
        let tail = counts.get(&99).copied().unwrap_or(0);
        assert!(head > 5 * tail.max(1), "head={head} tail={tail}");
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let c07 = rank_counts(TraceDistribution::Zipfian { alpha: 0.7 }, 20_000);
        let c08 = rank_counts(TraceDistribution::Zipfian { alpha: 0.8 }, 20_000);
        let top10 = |c: &HashMap<usize, usize>| -> usize {
            (0..10).map(|r| c.get(&r).copied().unwrap_or(0)).sum()
        };
        assert!(top10(&c08) > top10(&c07));
    }

    #[test]
    fn emissions_of_same_rank_are_near_duplicates() {
        let mut s = QueryStream::new(32, 10, 2, TraceDistribution::Uniform, 7);
        let base = s.base_query(3);
        // Collect two emissions of rank 3.
        let mut seen = Vec::new();
        for _ in 0..1000 {
            let (r, q) = s.next_query();
            if r == 3 {
                seen.push(q);
                if seen.len() == 2 {
                    break;
                }
            }
        }
        assert_eq!(seen.len(), 2);
        // Emissions stay much closer to their base than to other bases.
        let other = s.base_query(4);
        let to_other = base.sub(&other).unwrap().norm();
        for q in &seen {
            let d = q.sub(&base).unwrap().norm();
            assert!(d < to_other / 2.0, "emission too far: {d} vs {to_other}");
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let q1: Vec<usize> = QueryStream::new(16, 50, 5, TraceDistribution::Uniform, 1)
            .take(20)
            .map(|(r, _)| r)
            .collect();
        let q2: Vec<usize> = QueryStream::new(16, 50, 5, TraceDistribution::Uniform, 1)
            .take(20)
            .map(|(r, _)| r)
            .collect();
        assert_eq!(q1, q2);
        let q3: Vec<usize> = QueryStream::new(16, 50, 5, TraceDistribution::Uniform, 2)
            .take(20)
            .map(|(r, _)| r)
            .collect();
        assert_ne!(q1, q3);
    }

    #[test]
    fn emitted_counter_tracks() {
        let mut s = QueryStream::new(8, 4, 2, TraceDistribution::Uniform, 0);
        assert_eq!(s.emitted(), 0);
        let _ = s.next_query();
        let _ = s.next_query();
        assert_eq!(s.emitted(), 2);
    }
}
