//! Workload substrate for the DeepStore reproduction.
//!
//! * [`app`] — the five evaluated applications bound to their models,
//!   database sizes and the paper's batch-size sweeps (§3, §6.1).
//! * [`trace`] — query-trace generation: uniform and Zipfian sampling over
//!   a pool of base queries (§6.5), with controlled semantic-duplicate
//!   structure so the Query Cache experiments have the locality the paper
//!   synthesizes by adding noise to the Flickr30K test queries.
//! * [`gen`] — feature-database generation: deterministic, clusterable
//!   synthetic feature vectors of the right dimensionality.
//! * [`loadgen`] — open-loop load generation for the serving front end:
//!   Poisson/fixed arrival schedules over the trace mixes, replayed
//!   against a server with per-query SLO accounting.

pub mod app;
pub mod gen;
pub mod loadgen;
pub mod replay;
pub mod trace;

pub use app::{App, APP_NAMES};
pub use loadgen::{
    plan, run_open_loop, ArrivalProcess, LoadPlanConfig, LoadReport, LoadTarget, Offered,
};
pub use replay::QueryTrace;
pub use trace::{QueryStream, TraceDistribution};
