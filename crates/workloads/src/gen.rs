//! Synthetic feature-database generation.
//!
//! The paper extracts feature vectors from real datasets (CUHK03,
//! MagnaTagTune, Street2Shop, MSCOCO/Flickr30K, TREC-QA); timing and
//! energy depend only on the vectors' dimensionality and count, while
//! retrieval behaviour depends on their separability. We generate
//! deterministic vectors with a planted cluster structure: every vector
//! belongs to a cluster centroid plus bounded noise, so nearest-neighbour
//! and similarity queries have well-defined ground truth.

use deepstore_nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for clustered synthetic feature vectors.
#[derive(Debug, Clone)]
pub struct FeatureGen {
    /// Feature dimensionality (f32 elements).
    pub dim: usize,
    /// Number of planted clusters.
    pub clusters: usize,
    /// Noise amplitude around each centroid (uniform in ±noise).
    pub noise: f32,
    /// Base seed; all output is a pure function of (seed, index).
    pub seed: u64,
}

impl FeatureGen {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `clusters` is zero.
    pub fn new(dim: usize, clusters: usize, noise: f32, seed: u64) -> Self {
        assert!(dim > 0 && clusters > 0);
        FeatureGen {
            dim,
            clusters,
            noise,
            seed,
        }
    }

    /// The centroid of cluster `c` (wrapped modulo the cluster count).
    pub fn centroid(&self, c: usize) -> Tensor {
        let c = c % self.clusters;
        Tensor::random(
            vec![self.dim],
            1.0,
            self.seed ^ 0xC1u64.wrapping_mul(c as u64 + 1),
        )
    }

    /// Which cluster feature `idx` belongs to (round-robin).
    pub fn cluster_of(&self, idx: u64) -> usize {
        (idx % self.clusters as u64) as usize
    }

    /// The effective noise radius of cluster `c`: clusters are
    /// heterogeneous (some concepts are tight near-duplicates, some are
    /// loose paraphrases), spread over `[0.4, 1.6] × noise`. This is what
    /// makes threshold sweeps over the cluster structure gradual.
    pub fn cluster_noise(&self, c: usize) -> f32 {
        let h = (c as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seed) as f64
            / u64::MAX as f64;
        self.noise * (0.4 + 1.2 * h as f32)
    }

    /// The `idx`-th feature vector: its cluster centroid plus noise.
    pub fn feature(&self, idx: u64) -> Tensor {
        let cluster = self.cluster_of(idx);
        let centroid = self.centroid(cluster);
        let noise = self.cluster_noise(cluster);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(idx.wrapping_mul(0x9E37)));
        let data = centroid
            .data()
            .iter()
            .map(|&v| v + rng.gen_range(-noise..=noise))
            .collect();
        Tensor::from_vec(vec![self.dim], data).expect("dims match")
    }

    /// Materializes the first `n` features.
    pub fn features(&self, n: u64) -> Vec<Tensor> {
        (0..n).map(|i| self.feature(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> FeatureGen {
        FeatureGen::new(64, 4, 0.1, 7)
    }

    #[test]
    fn deterministic() {
        let g = gen();
        assert_eq!(g.feature(5), g.feature(5));
        assert_ne!(g.feature(5), g.feature(6));
        let g2 = FeatureGen::new(64, 4, 0.1, 8);
        assert_ne!(g.feature(5), g2.feature(5));
    }

    #[test]
    fn same_cluster_vectors_are_close() {
        let g = gen();
        // Features 0 and 4 share cluster 0; 0 and 1 do not.
        let a = g.feature(0);
        let b = g.feature(4);
        let c = g.feature(1);
        let close = a.sub(&b).unwrap().norm();
        let far = a.sub(&c).unwrap().norm();
        assert!(close < far, "close={close} far={far}");
        // Noise bound: per-element distance <= 2*noise.
        assert!(close <= 2.0 * 0.1 * (64f32).sqrt() + 1e-4);
    }

    #[test]
    fn cluster_assignment_is_round_robin() {
        let g = gen();
        assert_eq!(g.cluster_of(0), 0);
        assert_eq!(g.cluster_of(5), 1);
        assert_eq!(g.cluster_of(7), 3);
    }

    #[test]
    fn features_materializes_n() {
        let fs = gen().features(10);
        assert_eq!(fs.len(), 10);
        assert!(fs.iter().all(|f| f.len() == 64));
    }

    #[test]
    #[should_panic]
    fn zero_dim_panics() {
        let _ = FeatureGen::new(0, 1, 0.1, 0);
    }
}
