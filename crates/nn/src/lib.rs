//! Neural-network substrate for the DeepStore reproduction.
//!
//! DeepStore (MICRO'19) accelerates *intelligent queries*: similarity search
//! where the similarity metric is itself a small neural network (a
//! *similarity-comparison network*, SCN) so no conventional index can be
//! built and every query must scan the feature database. This crate provides
//! everything those networks need:
//!
//! * [`Tensor`] — a small dense f32 tensor with the handful of ops the
//!   paper's workloads use (dense matmul, 2-D convolution, element-wise ops).
//! * [`Layer`] / [`LayerShape`] — the three layer families the paper's
//!   characterization study found in intelligent-query workloads
//!   (fully-connected, convolutional, element-wise; §3 Observation 2).
//! * [`Model`] — a sequential two-branch similarity network with functional
//!   inference, FLOP and weight accounting, and an ONNX-like serializable
//!   graph form ([`graph`]).
//! * [`zoo`] — the five applications of Table 1 (ReId, MIR, ESTP, TIR,
//!   TextQA) with layer shapes chosen to match the paper's feature sizes,
//!   layer counts, FLOPs and weight sizes.
//!
//! # Example
//!
//! ```
//! use deepstore_nn::zoo;
//!
//! let scn = zoo::tir().seeded(7);
//! let query = scn.random_feature(1);
//! let item = scn.random_feature(2);
//! let score = scn.similarity(&query, &item).unwrap();
//! assert!(score.is_finite());
//! ```

pub mod batch;
pub mod graph;
pub(crate) mod kernels;
pub mod layer;
pub mod metrics;
pub mod model;
pub mod multiquery;
pub mod quant;
pub mod scratch;
pub mod tensor;
pub mod zoo;

pub use batch::Batch;

/// Name of the compute-kernel backend this process dispatches to:
/// `"avx"`, `"sse2"` or `"scalar"`. Selection is made once per process
/// from CPU feature detection, overridable with
/// `DEEPSTORE_FORCE_SCALAR=1`; all backends are bit-identical (see
/// `kernels` module docs), so this only matters for performance
/// reporting.
#[must_use]
pub fn kernel_backend() -> &'static str {
    kernels::backend_name()
}
pub use graph::ModelGraph;
pub use layer::{Activation, ElementWiseOp, Layer, LayerShape, MergeOp};
pub use model::{Model, ModelBuilder};
pub use multiquery::MultiQueryScorer;
pub use quant::{quantize_feature, BoundScorer, FeatureQuant};
pub use scratch::InferenceScratch;
pub use tensor::Tensor;

use std::fmt;

/// Errors produced by the neural-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two tensors (or a tensor and a layer) had incompatible shapes.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        found: String,
    },
    /// A model was executed before its weights were initialized.
    UninitializedWeights {
        /// Name of the offending layer.
        layer: String,
    },
    /// A serialized model graph could not be decoded.
    InvalidGraph(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            NnError::UninitializedWeights { layer } => {
                write!(f, "layer `{layer}` has uninitialized weights")
            }
            NnError::InvalidGraph(msg) => write!(f, "invalid model graph: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = NnError::ShapeMismatch {
            expected: "[2, 3]".into(),
            found: "[3, 2]".into(),
        };
        assert!(e.to_string().contains("shape mismatch"));
        let e = NnError::UninitializedWeights {
            layer: "fc1".into(),
        };
        assert!(e.to_string().contains("fc1"));
        let e = NnError::InvalidGraph("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
