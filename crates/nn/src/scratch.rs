//! Reusable activation buffers for allocation-free inference.
//!
//! The in-storage scan runs the similarity network once per stored
//! feature — millions of times per query — so the per-comparison heap
//! traffic of the allocating path (one tensor per layer, plus the merge)
//! dominates wall-clock time long before the MACs do. An
//! [`InferenceScratch`] owns that memory instead: two ping-pong
//! activation buffers sized for the model's widest layer, plus a merge
//! buffer for the two-branch entrance. After construction (or at worst
//! after the first forward pass), a full
//! [`similarity_scratch`](crate::Model::similarity_scratch) performs
//! zero heap allocations.
//!
//! A scratch is not thread-safe shared state: each scan worker owns one.

use crate::layer::MergeOp;
use crate::Model;

/// Scratch memory for one inference stream (one scan worker).
///
/// # Example
///
/// ```
/// use deepstore_nn::{zoo, InferenceScratch};
///
/// let model = zoo::textqa().seeded(1);
/// let mut scratch = InferenceScratch::for_model(&model);
/// let q = model.random_feature(1);
/// let d = model.random_feature(2);
/// let fast = model.similarity_scratch(&q, d.data(), &mut scratch).unwrap();
/// let reference = model.similarity(&q, &d).unwrap();
/// assert_eq!(fast.to_bits(), reference.to_bits());
/// ```
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    /// Ping activation buffer (layer outputs for even layer indices).
    pub(crate) ping: Vec<f32>,
    /// Pong activation buffer (layer outputs for odd layer indices).
    pub(crate) pong: Vec<f32>,
    /// Merged query⊕item buffer feeding the first layer.
    pub(crate) merge: Vec<f32>,
}

impl InferenceScratch {
    /// Builds a scratch sized for `model`: the activation buffers hold
    /// the model's widest layer output (or the merged input, whichever
    /// is larger) and the merge buffer holds the merged feature pair, so
    /// no buffer ever grows during inference.
    pub fn for_model(model: &Model) -> Self {
        let merged = match model.merge() {
            MergeOp::Concat => model.feature_len() * 2,
            MergeOp::ElementWise(_) => model.feature_len(),
        };
        let width = model
            .layers()
            .iter()
            .map(|l| l.shape.output_len())
            .fold(merged, usize::max);
        InferenceScratch {
            ping: Vec::with_capacity(width),
            pong: Vec::with_capacity(width),
            merge: Vec::with_capacity(merged),
        }
    }

    /// Combined capacity of the three buffers, in f32 elements (what a
    /// per-worker scratch costs in memory).
    pub fn capacity(&self) -> usize {
        self.ping.capacity() + self.pong.capacity() + self.merge.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn sized_for_widest_layer() {
        let m = zoo::tir(); // merge 512, layers 512/256/2
        let s = InferenceScratch::for_model(&m);
        assert_eq!(s.ping.capacity(), 512);
        assert_eq!(s.pong.capacity(), 512);
        assert_eq!(s.merge.capacity(), 512);
    }

    #[test]
    fn concat_merge_doubles_merge_buffer() {
        let m = zoo::mir(); // concat merge: 2 x 512
        let s = InferenceScratch::for_model(&m);
        assert_eq!(s.merge.capacity(), 1024);
        assert_eq!(s.capacity(), 1024 * 3);
    }

    #[test]
    fn conv_models_size_by_output_len() {
        let m = zoo::reid(); // conv1 output 128 x 8 x 6 = 6144 < 11264 merged
        let s = InferenceScratch::for_model(&m);
        assert_eq!(s.ping.capacity(), 11264);
    }
}
