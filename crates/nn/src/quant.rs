//! Int8 bound-then-refine support for the scan pruning cascade.
//!
//! The scan's pruning cascade (DeepEverest-style bound-then-refine)
//! needs two things from the NN layer:
//!
//! * [`FeatureQuant`] / [`quantize_feature`] — a per-feature symmetric
//!   int8 *sidecar* built once at `appendDB` time: the quantized lanes
//!   plus the scalars (`scale`, `abs_sum`, `max_abs`) the bound
//!   arithmetic consumes.
//! * [`BoundScorer`] — a per-(model, query) folded linear functional
//!   with a **provable upper bound** on the exact f32 similarity score:
//!   `upper_bound(feature) >= similarity(query, feature)` for every
//!   feature, always. The scan prunes a feature only when its bound is
//!   *strictly below* the running K-th best exact score, so recall@K is
//!   exactly 1.0 by construction, not empirically.
//!
//! # Eligibility: linear-foldable models
//!
//! A model is *cascade-eligible* ([`BoundScorer::supports`]) when every
//! layer is dense with an `Identity` activation. Such a model — merge,
//! dense stack, and head reduction (`out[0]` or mean) — is one affine
//! function of the item feature once the query is fixed:
//!
//! ```text
//! score(x) = ⟨g, x⟩ + d
//! ```
//!
//! where `g` and `d` are folded at query time in f64 (cost: one pass
//! over the weights, amortized over every feature in the database). Of
//! the paper's zoo, TextQA — the scan-throughput workload — is
//! eligible; models with ReLU/sigmoid stacks fall back to the exact
//! path, because a sound bound there requires interval propagation
//! through every tail layer, which costs as much as exact scoring (see
//! DESIGN.md §10 for the derivation and this trade-off).
//!
//! # The bound
//!
//! Phase 1 scores `D = Σ gq[k]·xq[k]` in exact i32 integer arithmetic
//! (order-independent, so SIMD/parallelism cannot change it), then
//! reconstructs `ã = s_g·s_x·D + d` and pads it with every error the
//! exact f32 path could see:
//!
//! * **quantization error** — `|x_k − s_x·xq[k]| ≤ s_x/2` and
//!   `|g_k − s_g·gq[k]| ≤ s_g/2`, giving
//!   `E ≤ (s_x/2)·Σ|g| + (s_g/2)·(Σ|x| + n·s_x/2)`;
//! * **float-rounding slack** — the exact path evaluates the *unfolded*
//!   network in f32 with its own summation order; a standard running
//!   error analysis (propagated per layer alongside a magnitude bound,
//!   both affine in the feature's `max_abs`) bounds how far that f32
//!   value can sit above the real-arithmetic score.
//!
//! Every bound-side computation runs in f64 with a safety factor, and
//! the final downcast rounds *up* — so the published f32 bound can only
//! be looser, never unsound.

use crate::layer::MergeOp;
use crate::{Activation, ElementWiseOp, Model, Tensor};

/// f32 machine epsilon as f64, the unit of the rounding-slack analysis.
const EPS32: f64 = f32::EPSILON as f64;

/// Safety factor on every error term: covers the f64 rounding of the
/// bound computation itself and the inequality slop in the analysis.
const SAFETY: f64 = 2.0;

/// Feature lengths above this disable the cascade: the i32 phase-1
/// accumulator is provably overflow-free only while
/// `n · 127² < 2³¹`.
const MAX_FOLD_LEN: usize = 100_000;

/// Per-feature symmetric int8 sidecar: the quantized lanes plus the
/// scalars the bound arithmetic needs. Built once per feature at
/// `appendDB` time ([`quantize_feature`]) and kept in host DRAM beside
/// the flash-resident f32 pages.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureQuant {
    /// Symmetric int8 lanes: `x_k ≈ scale · q[k]`, `q[k] ∈ [-127, 127]`
    /// (zero-point 0).
    pub q: Vec<i8>,
    /// Dequantization scale: `max|x| / 127` (0 for an all-zero feature).
    pub scale: f32,
    /// `Σ|x_k|` of the original f32 lanes, in f64.
    pub abs_sum: f64,
    /// `max|x_k|` of the original f32 lanes, in f64.
    pub max_abs: f64,
}

/// Quantizes one f32 feature vector into its int8 sidecar entry.
///
/// Symmetric (zero-point 0), per-feature scale `max|x| / 127`, round to
/// nearest: the per-lane reconstruction error is at most `scale / 2`.
#[must_use]
pub fn quantize_feature(x: &[f32]) -> FeatureQuant {
    let mut max_abs = 0.0f64;
    let mut abs_sum = 0.0f64;
    for &v in x {
        let a = (v as f64).abs();
        abs_sum += a;
        if a > max_abs {
            max_abs = a;
        }
    }
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
    let q = if scale > 0.0 {
        x.iter()
            .map(|&v| (v as f64 / scale).round().clamp(-127.0, 127.0) as i8)
            .collect()
    } else {
        vec![0i8; x.len()]
    };
    FeatureQuant {
        q,
        scale: scale as f32,
        abs_sum,
        max_abs,
    }
}

/// Exact integer dot product of two int8 vectors in an i32 accumulator.
/// Integer addition is associative, so the result is independent of
/// evaluation order — the autovectorizer is free to use whatever lane
/// arrangement it likes without a bit-identity contract.
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| i32::from(x) * i32::from(y))
        .sum()
}

/// A folded, quantized upper-bound scorer for one (model, query) pair.
///
/// Built once per scan ([`BoundScorer::new`]); [`BoundScorer::upper_bound`]
/// then costs one int8 dot plus a handful of f64 flops per feature.
/// Read-only after construction, so one instance is shared by every
/// scan shard.
#[derive(Debug, Clone)]
pub struct BoundScorer {
    /// Quantized folded functional `g` (len = feature_len).
    gq: Vec<i8>,
    /// Scale of `gq`: `g_k ≈ g_scale · gq[k]`.
    g_scale: f64,
    /// `Σ|g_k|`.
    g_abs_sum: f64,
    /// Affine offset `d`: query-side contribution plus folded biases.
    offset: f64,
    /// Per-lane quantization error bound of `g`: `g_scale / 2`.
    eps_g: f64,
    /// Feature length `n`.
    n: usize,
    /// Float-rounding slack, constant part (see module docs).
    err_const: f64,
    /// Float-rounding slack, coefficient of the feature's `max_abs`.
    err_coeff: f64,
}

impl BoundScorer {
    /// True when the cascade can bound this model: at least one layer,
    /// every layer dense with `Identity` activation and materialized
    /// weights, and a feature length small enough for exact i32
    /// phase-1 accumulation. Other models scan on the exact path.
    #[must_use]
    pub fn supports(model: &Model) -> bool {
        !model.layers().is_empty()
            && model.feature_len() <= MAX_FOLD_LEN
            && model.layers().iter().all(|l| {
                l.shape.is_dense()
                    && l.activation == Activation::Identity
                    && l.weights.is_some()
                    && l.bias.is_some()
            })
    }

    /// Folds `model` around `query` into a quantized linear functional.
    /// Returns `None` when [`BoundScorer::supports`] is false or the
    /// query length does not match the model.
    #[must_use]
    pub fn new(model: &Model, query: &Tensor) -> Option<Self> {
        if !Self::supports(model) || query.len() != model.feature_len() {
            return None;
        }
        let n = model.feature_len();
        let q = query.data();
        let layers = model.layers();

        // --- Backward fold: the head functional pulled through the
        // dense stack. `r` lives over the current layer's outputs;
        // `e` accumulates the bias contributions.
        let last_out = layers.last().expect("non-empty").shape.output_len();
        let mut r: Vec<f64> = if last_out <= 2 {
            // Head reduction for 1- or 2-wide outputs is `out[0]`.
            let mut v = vec![0.0; last_out];
            v[0] = 1.0;
            v
        } else {
            vec![1.0 / last_out as f64; last_out]
        };
        let mut e = 0.0f64;
        for layer in layers.iter().rev() {
            let w = layer.weights.as_ref().expect("supports checked").data();
            let b = layer.bias.as_ref().expect("supports checked").data();
            let out = layer.shape.output_len();
            let inp = layer.shape.input_len();
            debug_assert_eq!(r.len(), out);
            for (j, rj) in r.iter().enumerate() {
                e += rj * b[j] as f64;
            }
            let mut prev = vec![0.0f64; inp];
            for (j, rj) in r.iter().enumerate() {
                if *rj == 0.0 {
                    continue;
                }
                let row = &w[j * inp..(j + 1) * inp];
                for (k, &wv) in row.iter().enumerate() {
                    prev[k] += rj * wv as f64;
                }
            }
            r = prev;
        }
        // `r` is now the functional over the merged vector `u`.
        let u = r;

        // --- Merge fold: score = ⟨g, x⟩ + d over the item feature.
        let mut g = vec![0.0f64; n];
        let mut d = e;
        match model.merge() {
            MergeOp::Concat => {
                debug_assert_eq!(u.len(), 2 * n);
                for k in 0..n {
                    d += u[k] * q[k] as f64;
                    g[k] = u[n + k];
                }
            }
            MergeOp::ElementWise(op) => {
                debug_assert_eq!(u.len(), n);
                match op {
                    ElementWiseOp::Add => {
                        for k in 0..n {
                            d += u[k] * q[k] as f64;
                            g[k] = u[k];
                        }
                    }
                    // Merge is `q - item`, so the item coefficient is -u.
                    ElementWiseOp::Sub => {
                        for k in 0..n {
                            d += u[k] * q[k] as f64;
                            g[k] = -u[k];
                        }
                    }
                    ElementWiseOp::Mul => {
                        for k in 0..n {
                            g[k] = u[k] * q[k] as f64;
                        }
                    }
                }
            }
        }

        // --- Rounding-slack analysis: how far can the exact path's f32
        // forward pass sit above the real-arithmetic score? Propagate a
        // magnitude bound and an accumulated-error bound through merge,
        // stack and head. Both are affine in the feature's max|x| (call
        // it M), so each is carried as a (const, coeff-of-M) pair.
        let merged = match model.merge() {
            MergeOp::Concat => 2 * n,
            MergeOp::ElementWise(_) => n,
        };
        let mut mag_c = vec![0.0f64; merged];
        let mut mag_m = vec![0.0f64; merged];
        let mut err_c = vec![0.0f64; merged];
        let mut err_m = vec![0.0f64; merged];
        match model.merge() {
            MergeOp::Concat => {
                for k in 0..n {
                    mag_c[k] = (q[k] as f64).abs();
                    mag_m[n + k] = 1.0;
                }
            }
            MergeOp::ElementWise(op) => {
                for k in 0..n {
                    let qa = (q[k] as f64).abs();
                    match op {
                        ElementWiseOp::Add | ElementWiseOp::Sub => {
                            mag_c[k] = qa;
                            mag_m[k] = 1.0;
                            // One f32 add/sub per merged lane.
                            err_c[k] = EPS32 * qa;
                            err_m[k] = EPS32;
                        }
                        ElementWiseOp::Mul => {
                            mag_m[k] = qa;
                            err_m[k] = EPS32 * qa;
                        }
                    }
                }
            }
        }
        for layer in layers {
            let w = layer.weights.as_ref().expect("supports checked").data();
            let b = layer.bias.as_ref().expect("supports checked").data();
            let out = layer.shape.output_len();
            let inp = layer.shape.input_len();
            // γ for an (inp+1)-term f32 inner-product accumulation.
            let gamma = (inp + 2) as f64 * EPS32;
            let mut nm_c = vec![0.0f64; out];
            let mut nm_m = vec![0.0f64; out];
            let mut ne_c = vec![0.0f64; out];
            let mut ne_m = vec![0.0f64; out];
            for j in 0..out {
                let row = &w[j * inp..(j + 1) * inp];
                let (mut mc, mut mm, mut ec, mut em) = (0.0f64, 0.0, 0.0, 0.0);
                for (k, &wv) in row.iter().enumerate() {
                    let wa = (wv as f64).abs();
                    mc += wa * mag_c[k];
                    mm += wa * mag_m[k];
                    ec += wa * err_c[k];
                    em += wa * err_m[k];
                }
                let ba = (b[j] as f64).abs();
                nm_c[j] = mc + ba;
                nm_m[j] = mm;
                ne_c[j] = ec + gamma * (mc + ba);
                ne_m[j] = em + gamma * mm;
            }
            mag_c = nm_c;
            mag_m = nm_m;
            err_c = ne_c;
            err_m = ne_m;
        }
        // Head reduction: |r_head|-weighted error plus its own rounding.
        let (head_w, head_gamma): (Vec<f64>, f64) = if last_out <= 2 {
            let mut v = vec![0.0; last_out];
            v[0] = 1.0;
            (v, 2.0 * EPS32)
        } else {
            (
                vec![1.0 / last_out as f64; last_out],
                (last_out + 2) as f64 * EPS32,
            )
        };
        let mut err_const = 0.0f64;
        let mut err_coeff = 0.0f64;
        let mut head_mag_c = 0.0f64;
        let mut head_mag_m = 0.0f64;
        for j in 0..last_out {
            err_const += head_w[j] * err_c[j];
            err_coeff += head_w[j] * err_m[j];
            head_mag_c += head_w[j] * mag_c[j];
            head_mag_m += head_w[j] * mag_m[j];
        }
        err_const = SAFETY * (err_const + head_gamma * head_mag_c);
        err_coeff = SAFETY * (err_coeff + head_gamma * head_mag_m);

        // --- Quantize g.
        let mut g_max = 0.0f64;
        let mut g_abs_sum = 0.0f64;
        for &v in &g {
            let a = v.abs();
            g_abs_sum += a;
            if a > g_max {
                g_max = a;
            }
        }
        let g_scale = if g_max > 0.0 { g_max / 127.0 } else { 0.0 };
        let gq = if g_scale > 0.0 {
            g.iter()
                .map(|&v| (v / g_scale).round().clamp(-127.0, 127.0) as i8)
                .collect()
        } else {
            vec![0i8; n]
        };
        Some(BoundScorer {
            gq,
            g_scale,
            g_abs_sum,
            offset: d,
            eps_g: g_scale * 0.5,
            n,
            err_const,
            err_coeff,
        })
    }

    /// A sound f32 upper bound on the exact similarity score of the
    /// feature this sidecar entry was built from: one int8 dot plus a
    /// few f64 flops. See the module docs for the error budget.
    #[must_use]
    pub fn upper_bound(&self, fq: &FeatureQuant) -> f32 {
        debug_assert_eq!(fq.q.len(), self.n);
        let dot = f64::from(dot_i8(&self.gq, &fq.q));
        let s_x = fq.scale as f64;
        let approx = self.g_scale * s_x * dot + self.offset;
        let eps_x = s_x * 0.5;
        let e_quant = eps_x * self.g_abs_sum + self.eps_g * (fq.abs_sum + self.n as f64 * eps_x);
        let slack = self.err_const + self.err_coeff * fq.max_abs;
        // SAFETY factor again on the whole pad: absorbs the f64 rounding
        // of this very expression.
        let ub = approx + SAFETY * (e_quant + 1e-30) + slack;
        // Round *up* into f32: a nearest-cast can undershoot by half an
        // ulp, so take the next representable value.
        (ub as f32).next_up()
    }

    /// The feature length this scorer was folded for.
    #[must_use]
    pub fn feature_len(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, ModelBuilder};

    fn linear_model(merge: MergeOp, dims: &[usize], seed: u64) -> Model {
        let mut b = ModelBuilder::new("lin", dims[0]).merge(merge);
        let mut inp = match merge {
            MergeOp::Concat => dims[0] * 2,
            MergeOp::ElementWise(_) => dims[0],
        };
        for &out in &dims[1..] {
            b = b.dense(inp, out, Activation::Identity);
            inp = out;
        }
        b.build().seeded(seed)
    }

    const MERGES: [MergeOp; 4] = [
        MergeOp::Concat,
        MergeOp::ElementWise(ElementWiseOp::Add),
        MergeOp::ElementWise(ElementWiseOp::Sub),
        MergeOp::ElementWise(ElementWiseOp::Mul),
    ];

    #[test]
    fn quantize_roundtrip_error_is_within_half_scale() {
        let x: Vec<f32> = (0..37).map(|i| ((i as f32) * 0.7).sin() * 3.0).collect();
        let fq = quantize_feature(&x);
        for (k, &v) in x.iter().enumerate() {
            let back = fq.scale * f32::from(fq.q[k]);
            assert!(
                (v - back).abs() as f64 <= fq.scale as f64 * 0.5 + 1e-9,
                "lane {k}: {v} vs {back}"
            );
        }
        assert!(fq.max_abs > 0.0);
        assert!(fq.abs_sum >= fq.max_abs);
    }

    #[test]
    fn zero_feature_quantizes_to_zero() {
        let fq = quantize_feature(&[0.0; 8]);
        assert_eq!(fq.scale, 0.0);
        assert!(fq.q.iter().all(|&v| v == 0));
    }

    #[test]
    fn supports_accepts_linear_dense_and_rejects_the_rest() {
        for merge in MERGES {
            assert!(BoundScorer::supports(&linear_model(merge, &[16, 8, 4], 1)));
        }
        // textqa is the zoo's linear model; tir has ReLU, reid has conv.
        assert!(BoundScorer::supports(&zoo::textqa().seeded(3)));
        assert!(!BoundScorer::supports(&zoo::tir().seeded(3)));
        assert!(!BoundScorer::supports(&zoo::reid().seeded(3)));
        // Unweighted models are rejected.
        assert!(!BoundScorer::supports(&zoo::textqa()));
    }

    #[test]
    fn bound_dominates_exact_score_across_merges_and_depths() {
        for merge in MERGES {
            for dims in [&[24usize, 6][..], &[16, 12, 5], &[10, 8, 8, 1]] {
                for seed in 0..4u64 {
                    let model = linear_model(merge, dims, seed * 7 + 1);
                    let query = model.random_feature(seed ^ 0xABCD);
                    let bs = BoundScorer::new(&model, &query).expect("eligible");
                    for fi in 0..32u64 {
                        let item = model.random_feature(1000 + fi);
                        let fq = quantize_feature(item.data());
                        let exact = model.similarity(&query, &item).unwrap();
                        let ub = bs.upper_bound(&fq);
                        assert!(
                            ub >= exact,
                            "bound {ub} < exact {exact} (merge {merge:?}, dims {dims:?}, \
                             seed {seed}, feature {fi})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_is_reasonably_tight_on_textqa() {
        // Not a soundness requirement, but the cascade is useless if the
        // bound is orders of magnitude above the score.
        let model = zoo::textqa().seeded_metric(11);
        let query = model.random_feature(9);
        let bs = BoundScorer::new(&model, &query).expect("textqa is linear");
        let mut worst = 0.0f64;
        for fi in 0..64u64 {
            let item = model.random_feature(fi);
            let fq = quantize_feature(item.data());
            let exact = model.similarity(&query, &item).unwrap() as f64;
            let ub = bs.upper_bound(&fq) as f64;
            assert!(ub >= exact);
            worst = worst.max(ub - exact);
        }
        assert!(worst < 0.5, "bound gap {worst} too loose to prune anything");
    }

    #[test]
    fn new_rejects_mismatched_query() {
        let model = zoo::textqa().seeded(5);
        let bad = Tensor::random(vec![7], 1.0, 0);
        assert!(BoundScorer::new(&model, &bad).is_none());
        let good = model.random_feature(1);
        let bs = BoundScorer::new(&model, &good).unwrap();
        assert_eq!(bs.feature_len(), model.feature_len());
    }
}
