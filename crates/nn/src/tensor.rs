//! A small dense `f32` tensor.
//!
//! The similarity-comparison networks of the DeepStore workloads are tiny by
//! deep-learning standards (Table 1: 0.08–9.8 MFLOPs per comparison), so a
//! straightforward row-major tensor with naive kernels is both sufficient and
//! easy to audit. All shape errors are reported through
//! [`NnError::ShapeMismatch`](crate::NnError) rather than
//! panics so the in-storage runtime can surface them to the host.

use crate::{NnError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use deepstore_nn::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.shape(), &[2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Example
    ///
    /// ```
    /// use deepstore_nn::Tensor;
    /// let z = Tensor::zeros(vec![3, 4]);
    /// assert_eq!(z.len(), 12);
    /// assert!(z.data().iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{expected} elements for shape {shape:?}"),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Creates a tensor with values drawn uniformly from `[-scale, scale)`,
    /// deterministically seeded.
    pub fn random(shape: Vec<usize>, scale: f32, seed: u64) -> Self {
        let len: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..len).map(|_| rng.gen_range(-scale..scale)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                found: format!("shape {shape:?} = {expected} elements"),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Dot product with another tensor of identical length.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_len(other)?;
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the lengths differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the lengths differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the lengths differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Concatenation of two 1-D (or flattened) tensors.
    pub fn concat(&self, other: &Tensor) -> Tensor {
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Cosine similarity with another tensor.
    ///
    /// Returns 0 when either tensor has zero norm.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the lengths differ.
    pub fn cosine(&self, other: &Tensor) -> Result<f32> {
        let d = self.dot(other)?;
        let n = self.norm() * other.norm();
        Ok(if n == 0.0 { 0.0 } else { d / n })
    }

    /// Dense matrix-vector product: `W (out x in) * self (in) + b (out)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `w` is not 2-D with its second
    /// dimension equal to `self.len()`, or `b.len()` differs from the first
    /// dimension of `w`.
    pub fn dense(&self, w: &Tensor, b: &Tensor) -> Result<Tensor> {
        if w.shape.len() != 2 || w.shape[1] != self.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("weight matrix [out, {}]", self.len()),
                found: format!("{:?}", w.shape),
            });
        }
        let out = w.shape[0];
        if b.len() != out {
            return Err(NnError::ShapeMismatch {
                expected: format!("bias [{out}]"),
                found: format!("{:?}", b.shape),
            });
        }
        let mut y = Vec::with_capacity(out);
        crate::kernels::dense_into(&w.data, &b.data, &self.data, &mut y);
        Ok(Tensor {
            shape: vec![out],
            data: y,
        })
    }

    /// 2-D convolution over a `[C, H, W]` tensor with a `[Co, Cg, Kh, Kw]`
    /// kernel, zero "same" padding and the given strides. `groups` splits
    /// the input channels into equal groups (`Cg = C / groups`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input is not 3-D, the kernel
    /// is not 4-D, or channel counts are inconsistent with `groups`.
    pub fn conv2d(
        &self,
        kernel: &Tensor,
        bias: &Tensor,
        stride: (usize, usize),
        groups: usize,
    ) -> Result<Tensor> {
        if self.shape.len() != 3 {
            return Err(NnError::ShapeMismatch {
                expected: "input [C, H, W]".into(),
                found: format!("{:?}", self.shape),
            });
        }
        if kernel.shape.len() != 4 {
            return Err(NnError::ShapeMismatch {
                expected: "kernel [Co, Cg, Kh, Kw]".into(),
                found: format!("{:?}", kernel.shape),
            });
        }
        let (c, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        let (co, cg, kh, kw) = (
            kernel.shape[0],
            kernel.shape[1],
            kernel.shape[2],
            kernel.shape[3],
        );
        if groups == 0 || c % groups != 0 || co % groups != 0 || cg != c / groups {
            return Err(NnError::ShapeMismatch {
                expected: format!(
                    "kernel group channels {} (C={c} / groups={groups})",
                    c / groups.max(1)
                ),
                found: format!("Cg={cg}"),
            });
        }
        if bias.len() != co {
            return Err(NnError::ShapeMismatch {
                expected: format!("bias [{co}]"),
                found: format!("{:?}", bias.shape),
            });
        }
        let dims = crate::kernels::ConvDims {
            c,
            h,
            w,
            co,
            cg,
            kh,
            kw,
            stride,
            groups,
        };
        let (oh, ow) = (dims.oh(), dims.ow());
        let mut out = Vec::with_capacity(co * oh * ow);
        crate::kernels::conv2d_into(&self.data, &kernel.data, &bias.data, dims, &mut out);
        Ok(Tensor {
            shape: vec![co, oh, ow],
            data: out,
        })
    }

    /// Applies ReLU in place and returns the tensor.
    pub fn relu(mut self) -> Tensor {
        for x in &mut self.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        self
    }

    /// Applies the logistic sigmoid in place and returns the tensor.
    pub fn sigmoid(mut self) -> Tensor {
        for x in &mut self.data {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        self
    }

    /// Applies tanh in place and returns the tensor.
    pub fn tanh(mut self) -> Tensor {
        for x in &mut self.data {
            *x = x.tanh();
        }
        self
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    fn check_same_len(&self, other: &Tensor) -> Result<()> {
        if self.len() != other.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} elements", self.len()),
                found: format!("{} elements", other.len()),
            });
        }
        Ok(())
    }

    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_len(other)?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        let b = Tensor::from_slice(&[1.0, 0.0]);
        assert_eq!(a.dot(&b).unwrap(), 3.0);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[2.0, 4.0, 6.0]);
        assert!((a.cosine(&b).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = Tensor::from_slice(&[0.0, 0.0]);
        let b = Tensor::from_slice(&[1.0, 1.0]);
        assert_eq!(a.cosine(&b).unwrap(), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-2.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.concat(&b).data(), &[1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_is_error() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn dense_matvec() {
        // W = [[1, 2], [3, 4]], x = [1, 1], b = [0.5, -0.5]
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let x = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[0.5, -0.5]);
        let y = x.dense(&w, &b).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn dense_rejects_bad_shapes() {
        let w = Tensor::from_vec(vec![2, 3], vec![0.0; 6]).unwrap();
        let x = Tensor::from_slice(&[1.0, 1.0]); // needs 3 inputs
        let b = Tensor::from_slice(&[0.0, 0.0]);
        assert!(x.dense(&w, &b).is_err());
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let k = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let b = Tensor::from_slice(&[0.0]);
        let y = x.conv2d(&k, &b, (1, 1), 1).unwrap();
        assert_eq!(y.data(), x.data());
        assert_eq!(y.shape(), &[1, 2, 2]);
    }

    #[test]
    fn conv2d_stride_halves_output() {
        let x = Tensor::zeros(vec![2, 8, 6]);
        let k = Tensor::random(vec![4, 2, 3, 3], 0.1, 1);
        let b = Tensor::zeros(vec![4]);
        let y = x.conv2d(&k, &b, (2, 2), 1).unwrap();
        assert_eq!(y.shape(), &[4, 4, 3]);
    }

    #[test]
    fn conv2d_grouped_channels() {
        let x = Tensor::random(vec![4, 4, 4], 1.0, 2);
        // 2 groups: kernel sees 2 input channels per group.
        let k = Tensor::random(vec![4, 2, 3, 3], 0.1, 3);
        let b = Tensor::zeros(vec![4]);
        let y = x.conv2d(&k, &b, (1, 1), 2).unwrap();
        assert_eq!(y.shape(), &[4, 4, 4]);
    }

    #[test]
    fn conv2d_sum_kernel_counts_neighbors() {
        // 3x3 all-ones kernel over an all-ones 3x3 input: center sees 9.
        let x = Tensor::from_vec(vec![1, 3, 3], vec![1.0; 9]).unwrap();
        let k = Tensor::from_vec(vec![1, 1, 3, 3], vec![1.0; 9]).unwrap();
        let b = Tensor::zeros(vec![1]);
        let y = x.conv2d(&k, &b, (1, 1), 1).unwrap();
        assert_eq!(y.data()[4], 9.0); // center
        assert_eq!(y.data()[0], 4.0); // corner sees a 2x2 window
    }

    #[test]
    fn activations() {
        let t = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(t.clone().relu().data(), &[0.0, 0.0, 2.0]);
        let s = t.clone().sigmoid();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        let th = t.tanh();
        assert!(th.data()[2] > 0.9 && th.data()[2] < 1.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(vec![2, 2]).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert!(r.reshape(vec![5]).is_err());
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(vec![16], 1.0, 42);
        let b = Tensor::random(vec![16], 1.0, 42);
        assert_eq!(a, b);
        let c = Tensor::random(vec![16], 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(Tensor::default().mean(), 0.0);
        assert_eq!(Tensor::from_slice(&[1.0, 3.0]).mean(), 2.0);
    }

    #[test]
    fn collects_from_iterator() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
