//! Serializable model graphs (the `loadModel` exchange format).
//!
//! The paper's `loadModel` API (Table 2) transfers "the computational graph
//! and the model weights, specified in the ONNX format" to the SSD. We use a
//! JSON-serializable [`ModelGraph`] playing the same role: a self-contained
//! description of an SCN/QCN that the in-storage runtime can register and
//! later instantiate.

use crate::{Model, NnError, Result};
use serde::{Deserialize, Serialize};

/// A serialized computational graph plus weights, as shipped over the
/// `loadModel` API.
///
/// # Example
///
/// ```
/// use deepstore_nn::{zoo, ModelGraph};
///
/// let model = zoo::textqa().seeded(1);
/// let graph = ModelGraph::from_model(&model);
/// let bytes = graph.to_bytes().unwrap();
/// let restored = ModelGraph::from_bytes(&bytes).unwrap().into_model();
/// assert_eq!(restored.name(), "textqa");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Format version, for forward compatibility.
    version: u32,
    /// The embedded model (layers, merge op, and any materialized weights).
    model: Model,
}

impl ModelGraph {
    /// Current serialization format version.
    pub const VERSION: u32 = 1;

    /// Wraps a model (with or without weights) into a shippable graph.
    pub fn from_model(model: &Model) -> Self {
        ModelGraph {
            version: Self::VERSION,
            model: model.clone(),
        }
    }

    /// Unwraps the embedded model.
    pub fn into_model(self) -> Model {
        self.model
    }

    /// Borrows the embedded model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Serializes the graph to bytes (JSON).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if serialization fails (which only
    /// happens on pathological float values).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| NnError::InvalidGraph(e.to_string()))
    }

    /// Deserializes a graph from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] on malformed input or an
    /// unsupported format version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let graph: ModelGraph =
            serde_json::from_slice(bytes).map_err(|e| NnError::InvalidGraph(e.to_string()))?;
        if graph.version != Self::VERSION {
            return Err(NnError::InvalidGraph(format!(
                "unsupported graph version {} (expected {})",
                graph.version,
                Self::VERSION
            )));
        }
        Ok(graph)
    }

    /// Size in bytes of the serialized form (the `cg_size` argument of
    /// `loadModel`).
    ///
    /// # Errors
    ///
    /// Same as [`ModelGraph::to_bytes`].
    pub fn byte_len(&self) -> Result<usize> {
        Ok(self.to_bytes()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn roundtrip_preserves_model() {
        let m = zoo::textqa().seeded(42);
        let g = ModelGraph::from_model(&m);
        let bytes = g.to_bytes().unwrap();
        let back = ModelGraph::from_bytes(&bytes).unwrap();
        assert_eq!(back.model(), &m);
        assert_eq!(back.into_model().total_flops(), m.total_flops());
    }

    #[test]
    fn roundtrip_without_weights() {
        let m = zoo::tir();
        let g = ModelGraph::from_model(&m);
        let back = ModelGraph::from_bytes(&g.to_bytes().unwrap()).unwrap();
        assert!(!back.model().is_seeded());
    }

    #[test]
    fn rejects_garbage() {
        assert!(ModelGraph::from_bytes(b"not json").is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let m = zoo::textqa();
        let mut g = ModelGraph::from_model(&m);
        g.version = 99;
        let bytes = serde_json::to_vec(&g).unwrap();
        assert!(matches!(
            ModelGraph::from_bytes(&bytes),
            Err(NnError::InvalidGraph(_))
        ));
    }

    #[test]
    fn byte_len_matches_serialized_size() {
        let g = ModelGraph::from_model(&zoo::textqa());
        assert_eq!(g.byte_len().unwrap(), g.to_bytes().unwrap().len());
    }
}
