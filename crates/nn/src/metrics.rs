//! Retrieval-quality metrics.
//!
//! Intelligent-query systems are judged by ranking quality: the paper's
//! applications train "until the model accuracy is within 5% of the
//! advertised accuracy" (§3). These helpers score a retrieved ranking
//! against a ground-truth relevance set: recall@K, precision@K, and
//! average precision — used by the functional engine's quality tests and
//! the `recall` extension experiment.

/// Recall@K: the fraction of relevant items found in the top `k` of the
/// ranking. Returns 0 when there are no relevant items.
pub fn recall_at_k(ranking: &[u64], relevant: &[u64], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|id| relevant.contains(id))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Precision@K: the fraction of the top `k` that is relevant. Returns 0
/// for `k == 0`.
pub fn precision_at_k(ranking: &[u64], relevant: &[u64], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let considered = ranking.len().min(k);
    if considered == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|id| relevant.contains(id))
        .count();
    hits as f64 / considered as f64
}

/// Average precision of a ranking: the mean of precision@i over the ranks
/// `i` where a relevant item appears, normalized by the relevant count.
pub fn average_precision(ranking: &[u64], relevant: &[u64]) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, id) in ranking.iter().enumerate() {
        if relevant.contains(id) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Mean average precision over several queries' `(ranking, relevant)`
/// pairs. Returns 0 for an empty set.
pub fn mean_average_precision(queries: &[(Vec<u64>, Vec<u64>)]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|(r, rel)| average_precision(r, rel))
        .sum::<f64>()
        / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let ranking = [1, 2, 3, 9, 8];
        let relevant = [1, 2, 3];
        assert_eq!(recall_at_k(&ranking, &relevant, 3), 1.0);
        assert_eq!(precision_at_k(&ranking, &relevant, 3), 1.0);
        assert_eq!(average_precision(&ranking, &relevant), 1.0);
    }

    #[test]
    fn recall_grows_with_k() {
        let ranking = [9, 1, 8, 2, 7, 3];
        let relevant = [1, 2, 3];
        assert_eq!(recall_at_k(&ranking, &relevant, 1), 0.0);
        assert!((recall_at_k(&ranking, &relevant, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&ranking, &relevant, 4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&ranking, &relevant, 6), 1.0);
    }

    #[test]
    fn precision_penalizes_noise() {
        let ranking = [1, 9, 2, 8];
        let relevant = [1, 2];
        assert_eq!(precision_at_k(&ranking, &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&ranking, &relevant, 1), 1.0);
        assert_eq!(precision_at_k(&ranking, &relevant, 0), 0.0);
    }

    #[test]
    fn average_precision_orders_matter() {
        let relevant = [1, 2];
        let good = [1, 2, 9, 8];
        let bad = [9, 8, 1, 2];
        assert!(average_precision(&good, &relevant) > average_precision(&bad, &relevant));
        // AP of [1,2,...] = (1/1 + 2/2)/2 = 1.0.
        assert_eq!(average_precision(&good, &relevant), 1.0);
        // AP of [9,8,1,2] = (1/3 + 2/4)/2.
        let expected = (1.0 / 3.0 + 0.5) / 2.0;
        assert!((average_precision(&bad, &relevant) - expected).abs() < 1e-12);
    }

    #[test]
    fn map_averages_queries() {
        let q1 = (vec![1u64, 9], vec![1u64]);
        let q2 = (vec![9u64, 1], vec![1u64]);
        let map = mean_average_precision(&[q1, q2]);
        assert!((map - (1.0 + 0.5) / 2.0).abs() < 1e-12);
        assert_eq!(mean_average_precision(&[]), 0.0);
    }

    #[test]
    fn empty_relevant_sets_score_zero() {
        assert_eq!(recall_at_k(&[1, 2], &[], 2), 0.0);
        assert_eq!(average_precision(&[1, 2], &[]), 0.0);
    }
}
