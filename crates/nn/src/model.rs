//! Two-branch similarity models (SCN / QCN).
//!
//! A [`Model`] describes the online half of Figure 1: given a query feature
//! vector and a dataset feature vector, merge them ([`MergeOp`]) and run the
//! merged tensor through a stack of layers to produce a similarity score.
//! The same type also serves as the Query Comparison Network (QCN) of the
//! query cache (§4.6), which compares two *query* feature vectors.

use crate::layer::{Activation, Layer, LayerShape, MergeOp};
use crate::scratch::InferenceScratch;
use crate::{NnError, Result, Tensor};
use serde::{Deserialize, Serialize};

/// A two-branch similarity-comparison network.
///
/// # Example
///
/// ```
/// use deepstore_nn::{Activation, LayerShape, MergeOp, ModelBuilder, ElementWiseOp};
///
/// let model = ModelBuilder::new("toy", 8)
///     .merge(MergeOp::ElementWise(ElementWiseOp::Mul))
///     .dense(8, 4, Activation::Relu)
///     .dense(4, 1, Activation::Sigmoid)
///     .build()
///     .seeded(3);
/// let q = model.random_feature(1);
/// let d = model.random_feature(2);
/// let s = model.similarity(&q, &d).unwrap();
/// assert!((0.0..=1.0).contains(&s));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    feature_len: usize,
    merge: MergeOp,
    layers: Vec<Layer>,
}

impl Model {
    /// The model's name (e.g. `"tir"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Length (in f32 elements) of one feature vector.
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// Size in bytes of one feature vector at fp32.
    pub fn feature_bytes(&self) -> usize {
        self.feature_len * 4
    }

    /// How the two branches are merged.
    pub fn merge(&self) -> MergeOp {
        self.merge
    }

    /// The layer stack, in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer shapes only (what the timing/energy simulators consume).
    /// Includes the merge as an element-wise pseudo-layer when applicable,
    /// mirroring Table 1's element-wise layer count.
    pub fn layer_shapes(&self) -> Vec<LayerShape> {
        let mut shapes = Vec::with_capacity(self.layers.len() + 1);
        if let MergeOp::ElementWise(op) = self.merge {
            shapes.push(LayerShape::ElementWise {
                len: self.feature_len,
                op,
            });
        }
        shapes.extend(self.layers.iter().map(|l| l.shape));
        shapes
    }

    /// Total FLOPs for one similarity comparison (Table 1 "Total FLOPs").
    pub fn total_flops(&self) -> u64 {
        self.layer_shapes().iter().map(|s| s.flops()).sum()
    }

    /// Total MAC count for one comparison.
    pub fn total_macs(&self) -> u64 {
        self.layer_shapes().iter().map(|s| s.macs()).sum()
    }

    /// Total weight size in bytes (Table 1 "Total Weight Size").
    pub fn weight_bytes(&self) -> u64 {
        self.layer_shapes().iter().map(|s| s.weight_bytes()).sum()
    }

    /// Number of convolutional layers (Table 1 "#CONV layers").
    pub fn conv_layer_count(&self) -> usize {
        self.layer_shapes().iter().filter(|s| s.is_conv()).count()
    }

    /// Number of fully-connected layers (Table 1 "#FC layers").
    pub fn fc_layer_count(&self) -> usize {
        self.layer_shapes().iter().filter(|s| s.is_dense()).count()
    }

    /// Number of element-wise layers (Table 1 "#Element-wise layers").
    pub fn element_wise_layer_count(&self) -> usize {
        self.layer_shapes()
            .iter()
            .filter(|s| s.is_element_wise())
            .count()
    }

    /// Returns a copy of the model with all weights deterministically
    /// initialized from `seed`.
    pub fn seeded(mut self, seed: u64) -> Model {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.seed_weights(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64),
            );
        }
        self
    }

    /// Returns a copy seeded with *metric* weights: a deterministic
    /// initialization under which the similarity score is ordered by
    /// actual feature similarity, standing in for a trained model in
    /// examples and retrieval tests.
    ///
    /// Hidden layers get non-negative weights; the head's scoring unit is
    /// sign-flipped by merge type: for a [`MergeOp::ElementWise`]
    /// *subtract* merge the head is negative (identical inputs merge to
    /// zero, giving the maximal score), while *multiply*/concat merges use
    /// a positive head (aligned inputs give large positive products).
    /// Only element-wise merges carry a formal guarantee; concat-merge
    /// models remain heuristic.
    pub fn seeded_metric(self, seed: u64) -> Model {
        let mut model = self.seeded(seed);
        let flip_nonneg = |t: &mut Tensor| {
            for v in t.data_mut() {
                *v = v.abs();
            }
        };
        let n = model.layers.len();
        for (i, layer) in model.layers.iter_mut().enumerate() {
            if let Some(w) = &mut layer.weights {
                flip_nonneg(w);
                if i + 1 == n {
                    let head_sign = match model.merge {
                        MergeOp::ElementWise(crate::ElementWiseOp::Sub) => -1.0f32,
                        _ => 1.0,
                    };
                    // Only the scoring unit (first output row) is signed.
                    let shape = layer.shape;
                    if let LayerShape::Dense { in_features, .. } = shape {
                        for v in &mut w.data_mut()[..in_features] {
                            *v *= head_sign;
                        }
                    }
                }
            }
        }
        model
    }

    /// True once every weighted layer has materialized weights.
    pub fn is_seeded(&self) -> bool {
        self.layers
            .iter()
            .all(|l| matches!(l.shape, LayerShape::ElementWise { .. }) || l.weights.is_some())
    }

    /// Generates a deterministic pseudo-random feature vector of the right
    /// length for this model.
    pub fn random_feature(&self, seed: u64) -> Tensor {
        Tensor::random(vec![self.feature_len], 1.0, seed)
    }

    /// Computes the similarity score between a query feature vector and a
    /// dataset feature vector: merge, run the layer stack, reduce the final
    /// tensor to a scalar (first element if the head ends in a single unit
    /// or a pair, otherwise the mean).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if either vector has the wrong
    /// length, or [`NnError::UninitializedWeights`] if the model has not
    /// been [`seeded`](Model::seeded) (or loaded with trained weights).
    pub fn similarity(&self, query: &Tensor, item: &Tensor) -> Result<f32> {
        let out = self.forward_pair(query, item)?;
        // Two-unit heads are (match, no-match) logits; single-unit heads are
        // the score directly; wider heads are reduced by mean.
        Ok(match out.len() {
            0 => 0.0,
            1 | 2 => out.data()[0],
            _ => out.mean(),
        })
    }

    /// Computes the similarity score without allocating: the merge and
    /// every layer activation land in the caller's [`InferenceScratch`]
    /// buffers, ping-ponging between the two activation arenas. The item
    /// arrives as a raw `&[f32]` slice because the scan hot path decodes
    /// features straight out of flash pages and never materializes a
    /// [`Tensor`] for them.
    ///
    /// Shares every compute kernel with [`Model::similarity`] (see
    /// `crate::kernels`), so the two paths return bit-identical scores.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::similarity`].
    pub fn similarity_scratch(
        &self,
        query: &Tensor,
        item: &[f32],
        scratch: &mut InferenceScratch,
    ) -> Result<f32> {
        if query.len() != self.feature_len || item.len() != self.feature_len {
            return Err(NnError::ShapeMismatch {
                expected: format!("two feature vectors of length {}", self.feature_len),
                found: format!("lengths {} and {}", query.len(), item.len()),
            });
        }
        let q = query.data();
        scratch.merge.clear();
        match self.merge {
            MergeOp::Concat => {
                scratch.merge.extend_from_slice(q);
                scratch.merge.extend_from_slice(item);
            }
            MergeOp::ElementWise(op) => match op {
                crate::ElementWiseOp::Add => {
                    scratch.merge.extend(q.iter().zip(item).map(|(a, b)| a + b));
                }
                crate::ElementWiseOp::Sub => {
                    scratch.merge.extend(q.iter().zip(item).map(|(a, b)| a - b));
                }
                crate::ElementWiseOp::Mul => {
                    scratch.merge.extend(q.iter().zip(item).map(|(a, b)| a * b));
                }
            },
        }
        // Ping-pong through the layer stack: read from one arena, write
        // into the other. Disjoint-field borrows keep this allocation- and
        // copy-free.
        let mut in_ping = false;
        for (i, layer) in self.layers.iter().enumerate() {
            let InferenceScratch { ping, pong, merge } = scratch;
            if i == 0 {
                layer.forward_into(merge, ping)?;
                in_ping = true;
            } else if in_ping {
                layer.forward_into(ping, pong)?;
                in_ping = false;
            } else {
                layer.forward_into(pong, ping)?;
                in_ping = true;
            }
        }
        let out: &[f32] = if self.layers.is_empty() {
            &scratch.merge
        } else if in_ping {
            &scratch.ping
        } else {
            &scratch.pong
        };
        // Same reduction as `similarity` (Tensor::mean sums in the same
        // order), so the scalar is bit-identical too.
        Ok(match out.len() {
            0 => 0.0,
            1 | 2 => out[0],
            _ => out.iter().sum::<f32>() / out.len() as f32,
        })
    }

    /// Runs the full forward pass and returns the raw head output.
    ///
    /// # Errors
    ///
    /// Same as [`Model::similarity`].
    pub fn forward_pair(&self, query: &Tensor, item: &Tensor) -> Result<Tensor> {
        if query.len() != self.feature_len || item.len() != self.feature_len {
            return Err(NnError::ShapeMismatch {
                expected: format!("two feature vectors of length {}", self.feature_len),
                found: format!("lengths {} and {}", query.len(), item.len()),
            });
        }
        let mut x = match self.merge {
            MergeOp::Concat => query.concat(item),
            MergeOp::ElementWise(op) => match op {
                crate::ElementWiseOp::Add => query.add(item)?,
                crate::ElementWiseOp::Sub => query.sub(item)?,
                crate::ElementWiseOp::Mul => query.mul(item)?,
            },
        };
        for layer in &self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Scores a batch of dataset feature vectors against one query.
    ///
    /// # Errors
    ///
    /// Same as [`Model::similarity`]; fails on the first mismatching item.
    pub fn similarity_batch(&self, query: &Tensor, items: &[Tensor]) -> Result<Vec<f32>> {
        items.iter().map(|it| self.similarity(query, it)).collect()
    }
}

/// Builder for [`Model`] (C-BUILDER).
///
/// Layers are appended in execution order; [`ModelBuilder::build`] validates
/// that consecutive layer shapes are compatible and panics on programmer
/// error (shape validation is a construction-time concern, not a runtime
/// input).
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    feature_len: usize,
    merge: MergeOp,
    layers: Vec<Layer>,
}

impl ModelBuilder {
    /// Starts a model with the given name and per-branch feature length.
    pub fn new(name: impl Into<String>, feature_len: usize) -> Self {
        ModelBuilder {
            name: name.into(),
            feature_len,
            merge: MergeOp::Concat,
            layers: Vec::new(),
        }
    }

    /// Sets the branch-merge operation (default: concatenation).
    pub fn merge(mut self, merge: MergeOp) -> Self {
        self.merge = merge;
        self
    }

    /// Appends a fully-connected layer.
    pub fn dense(mut self, in_features: usize, out_features: usize, act: Activation) -> Self {
        let n = self.layers.len();
        self.layers.push(Layer::new(
            format!("fc{n}"),
            LayerShape::Dense {
                in_features,
                out_features,
            },
            act,
        ));
        self
    }

    /// Appends a 2-D convolution layer with "same" padding.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        mut self,
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: (usize, usize),
        groups: usize,
        act: Activation,
    ) -> Self {
        let n = self.layers.len();
        self.layers.push(Layer::new(
            format!("conv{n}"),
            LayerShape::Conv2d {
                in_channels,
                out_channels,
                in_h,
                in_w,
                kernel,
                stride,
                groups,
            },
            act,
        ));
        self
    }

    /// Finalizes the model.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer shapes are incompatible (the output
    /// length of layer *i* must equal the input length of layer *i+1*, and
    /// the first layer must accept the merged feature length). These are
    /// construction-time programmer errors, not runtime conditions.
    pub fn build(self) -> Model {
        let mut expected = match self.merge {
            MergeOp::Concat => self.feature_len * 2,
            MergeOp::ElementWise(_) => self.feature_len,
        };
        for layer in &self.layers {
            let found = layer.shape.input_len();
            assert_eq!(
                found, expected,
                "layer `{}` expects {found} inputs but the previous stage produces {expected}",
                layer.name
            );
            expected = layer.shape.output_len();
        }
        Model {
            name: self.name,
            feature_len: self.feature_len,
            merge: self.merge,
            layers: self.layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElementWiseOp;

    fn toy() -> Model {
        ModelBuilder::new("toy", 4)
            .merge(MergeOp::ElementWise(ElementWiseOp::Sub))
            .dense(4, 3, Activation::Relu)
            .dense(3, 1, Activation::Sigmoid)
            .build()
    }

    #[test]
    fn accounting_matches_layer_sums() {
        let m = toy();
        // EW merge (4 MACs/FLOPs) + fc 4x3 + fc 3x1.
        assert_eq!(m.total_macs(), 4 + 12 + 3);
        assert_eq!(m.total_flops(), 4 + 24 + 6);
        assert_eq!(m.weight_bytes(), ((12 + 3) + (3 + 1)) * 4);
        assert_eq!(m.fc_layer_count(), 2);
        assert_eq!(m.element_wise_layer_count(), 1);
        assert_eq!(m.conv_layer_count(), 0);
    }

    #[test]
    fn concat_merge_doubles_first_layer_input() {
        let m = ModelBuilder::new("c", 4)
            .dense(8, 2, Activation::Identity)
            .build();
        assert_eq!(m.element_wise_layer_count(), 0);
        assert_eq!(m.layer_shapes().len(), 1);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn build_panics_on_incompatible_layers() {
        ModelBuilder::new("bad", 4)
            .dense(9, 2, Activation::Identity) // concat gives 8, not 9
            .build();
    }

    #[test]
    fn similarity_requires_seeding() {
        let m = toy();
        let q = m.random_feature(1);
        let d = m.random_feature(2);
        assert!(matches!(
            m.similarity(&q, &d),
            Err(NnError::UninitializedWeights { .. })
        ));
    }

    #[test]
    fn similarity_is_deterministic_and_bounded_by_sigmoid() {
        let m = toy().seeded(11);
        let q = m.random_feature(1);
        let d = m.random_feature(2);
        let s1 = m.similarity(&q, &d).unwrap();
        let s2 = m.similarity(&q, &d).unwrap();
        assert_eq!(s1, s2);
        assert!((0.0..=1.0).contains(&s1));
    }

    #[test]
    fn identical_inputs_score_higher_than_random_under_sub_merge() {
        // With a Sub merge, identical vectors merge to zero, giving a fixed
        // head input; the score must at least be finite & deterministic.
        let m = toy().seeded(11);
        let q = m.random_feature(7);
        let same = m.similarity(&q, &q).unwrap();
        assert!(same.is_finite());
    }

    #[test]
    fn similarity_rejects_wrong_lengths() {
        let m = toy().seeded(1);
        let q = Tensor::from_slice(&[0.0; 3]);
        let d = m.random_feature(2);
        assert!(m.similarity(&q, &d).is_err());
    }

    #[test]
    fn batch_scores_match_individual_scores() {
        let m = toy().seeded(5);
        let q = m.random_feature(0);
        let items: Vec<Tensor> = (1..5).map(|i| m.random_feature(i)).collect();
        let batch = m.similarity_batch(&q, &items).unwrap();
        for (i, item) in items.iter().enumerate() {
            assert_eq!(batch[i], m.similarity(&q, item).unwrap());
        }
    }

    #[test]
    fn scratch_similarity_matches_reference_bitwise() {
        for m in [
            crate::zoo::tir().seeded(3),
            crate::zoo::mir().seeded(4),
            crate::zoo::textqa().seeded(5),
            crate::zoo::reid().seeded(6), // conv layers
            toy().seeded(7),
        ] {
            let mut scratch = crate::InferenceScratch::for_model(&m);
            let q = m.random_feature(1);
            for i in 2..6 {
                let d = m.random_feature(i);
                let fast = m.similarity_scratch(&q, d.data(), &mut scratch).unwrap();
                let reference = m.similarity(&q, &d).unwrap();
                assert_eq!(fast.to_bits(), reference.to_bits(), "{}", m.name());
            }
        }
    }

    #[test]
    fn scratch_similarity_rejects_wrong_lengths() {
        let m = toy().seeded(1);
        let mut scratch = crate::InferenceScratch::for_model(&m);
        let q = m.random_feature(1);
        assert!(m.similarity_scratch(&q, &[0.0; 3], &mut scratch).is_err());
        let short = Tensor::from_slice(&[0.0; 3]);
        let d = m.random_feature(2);
        assert!(m
            .similarity_scratch(&short, d.data(), &mut scratch)
            .is_err());
    }

    #[test]
    fn seeded_is_reported() {
        let m = toy();
        assert!(!m.is_seeded());
        assert!(m.seeded(1).is_seeded());
    }

    #[test]
    fn feature_bytes_is_4x_len() {
        assert_eq!(toy().feature_bytes(), 16);
    }

    #[test]
    fn metric_seeding_ranks_duplicates_first_for_sub_merge() {
        let m = crate::zoo::reid().seeded_metric(5);
        let q = m.random_feature(1);
        let self_score = m.similarity(&q, &q).unwrap();
        for i in 2..12 {
            let other = m.random_feature(i);
            let s = m.similarity(&q, &other).unwrap();
            assert!(
                self_score >= s,
                "random item outranked duplicate: {s} > {self_score}"
            );
        }
    }

    #[test]
    fn metric_seeding_ranks_duplicates_first_for_mul_merge() {
        for m in [
            crate::zoo::tir().seeded_metric(6),
            crate::zoo::textqa().seeded_metric(6),
        ] {
            let q = m.random_feature(1);
            let self_score = m.similarity(&q, &q).unwrap();
            for i in 2..12 {
                let s = m.similarity(&q, &m.random_feature(i)).unwrap();
                assert!(self_score > s, "{}: {s} >= {self_score}", m.name());
            }
        }
    }

    #[test]
    fn metric_seeding_prefers_nearer_neighbours() {
        let m = crate::zoo::reid().seeded_metric(9);
        let q = m.random_feature(0);
        let near_noise = Tensor::random(vec![m.feature_len()], 0.05, 77);
        let far_noise = Tensor::random(vec![m.feature_len()], 0.8, 78);
        let near = q.add(&near_noise).unwrap();
        let far = q.add(&far_noise).unwrap();
        let sn = m.similarity(&q, &near).unwrap();
        let sf = m.similarity(&q, &far).unwrap();
        assert!(sn > sf, "near {sn} !> far {sf}");
    }
}
