//! The compute kernels shared by every inference path.
//!
//! Both the allocating reference path ([`crate::Tensor::dense`],
//! [`crate::Tensor::conv2d`], [`crate::Layer::forward`]) and the
//! allocation-free scratch path ([`crate::Layer::forward_into`],
//! [`crate::Model::similarity_scratch`]) call the functions in this
//! module, so the two paths execute the *same f32 operations in the same
//! order* and their results are bit-identical by construction. That
//! shared-kernel discipline is what lets the in-storage scan use the
//! scratch path while tests compare it bit-for-bit against the reference
//! path (see DESIGN.md, "Summation order and bit-identity").
//!
//! # Dispatch
//!
//! Each public kernel is a thin dispatcher over two backends:
//!
//! * [`scalar`] — the portable implementation, written for scalar ILP
//!   (independent accumulator chains, hoisted bounds checks). It is the
//!   *specification*: the summation order documented on
//!   [`dot_unrolled`] is defined by this code.
//! * `simd` (x86_64 only) — explicit `core::arch` intrinsics that
//!   replay the scalar backend's accumulation order lane-for-lane, so
//!   the two backends are bit-identical (proven by the proptests at the
//!   bottom of this file). The f32x4 dot keeps the four scalar chains in
//!   one SSE register; the fused multi-query kernel keeps each of its
//!   [`QUERY_LANES`] independent per-query chains in one AVX lane; the
//!   conv2d interior runs eight output pixels (eight independent
//!   chains) per AVX register. No FMA is ever used — a fused
//!   multiply-add rounds once where the contract rounds twice.
//!
//! Backend selection happens at runtime: SSE2 is part of the x86_64
//! baseline, AVX is detected with `is_x86_feature_detected!`, and
//! setting `DEEPSTORE_FORCE_SCALAR=1` in the environment (read once per
//! process) forces the scalar backend everywhere — CI runs the whole
//! equivalence suite under that override so both arms stay green.

use std::sync::OnceLock;

/// True when `DEEPSTORE_FORCE_SCALAR` is set (to anything but `0`):
/// every kernel dispatches to the scalar backend. Read once per process.
fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("DEEPSTORE_FORCE_SCALAR").is_some_and(|v| v != *"0"))
}

/// True when the AVX (f32x8) backend is usable for this process.
#[cfg(target_arch = "x86_64")]
fn use_avx() -> bool {
    static AVX: OnceLock<bool> = OnceLock::new();
    !force_scalar() && *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

/// True when the SSE2 (f32x4) backend is usable for this process.
/// SSE2 is architecturally guaranteed on x86_64, so this is just the
/// scalar-override check.
#[cfg(target_arch = "x86_64")]
fn use_sse() -> bool {
    !force_scalar()
}

/// Name of the kernel backend this process dispatches to: `"avx"`,
/// `"sse2"` or `"scalar"`. Surfaced through
/// [`crate::kernel_backend`] for benches and stats.
pub(crate) fn backend_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if use_avx() {
            return "avx";
        }
        if use_sse() {
            return "sse2";
        }
    }
    "scalar"
}

/// Lane width of the fused multi-query dense kernel: eight queries are
/// scored against one item per pass over the weight row. Eight f32 lanes
/// fill one AVX register (or two SSE registers) and keep the per-row
/// accumulator set (4 chains × 8 lanes) inside the register file.
pub(crate) const QUERY_LANES: usize = 8;

/// Sequential tail accumulation shared by [`dot_unrolled`] (`L = 1`) and
/// [`dense_into_multi`] (`L = QUERY_LANES`): after the quad chains are
/// combined, the leftover `len % 4` weight lanes are multiplied in one
/// at a time, in index order, each into every query lane. This helper is
/// the single source of truth for the tail's summation order — both
/// backends of both kernels call it (the SIMD backends fall back to it
/// for their tails), so the contract lives in exactly one place.
#[inline(always)]
pub(crate) fn tail_accumulate<const L: usize>(acc: &mut [f32; L], w_tail: &[f32], xt_tail: &[f32]) {
    debug_assert_eq!(xt_tail.len(), w_tail.len() * L);
    for (i, &wi) in w_tail.iter().enumerate() {
        let xr = &xt_tail[i * L..(i + 1) * L];
        for l in 0..L {
            acc[l] += wi * xr[l];
        }
    }
}

/// Dot product over four independent accumulators.
///
/// Lanes `0,4,8,…` feed `s0`, lanes `1,5,9,…` feed `s1`, and so on; the
/// partial sums are combined as `(s0 + s1) + (s2 + s3)` and any tail
/// lanes (length not a multiple of 4) are then added sequentially. This
/// order is fixed: every caller — reference or scratch path — inherits
/// it, which is what keeps the two paths bit-identical. The SIMD backend
/// holds `[s0, s1, s2, s3]` in one f32x4 register and replays the same
/// combine, so dispatch never changes the result bits.
#[inline]
pub(crate) fn dot_unrolled(w: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(w.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if use_sse() {
        // SAFETY: SSE2 is baseline on x86_64.
        return unsafe { simd::dot_sse2(w, x) };
    }
    scalar::dot_unrolled(w, x)
}

/// Dense matrix-vector product `y = W x + b` into a caller-owned buffer.
///
/// `w` is row-major `[out, in]`; `out` is cleared and refilled, so a
/// buffer with `b.len()` capacity makes the call allocation-free. Shape
/// checking is the caller's job (the `Tensor` / `Layer` wrappers do it).
pub(crate) fn dense_into(w: &[f32], b: &[f32], x: &[f32], out: &mut Vec<f32>) {
    let inp = x.len();
    out.clear();
    out.reserve(b.len());
    for (o, &bias) in b.iter().enumerate() {
        let row = &w[o * inp..(o + 1) * inp];
        out.push(dot_unrolled(row, x) + bias);
    }
}

/// Dense matrix-vector product for [`QUERY_LANES`] inputs at once:
/// `out[o][l] = Σ_k w[o][k] · xt[k][l] + b[o]`.
///
/// `xt` is *lane-transposed*: `QUERY_LANES` input vectors interleaved so
/// that `xt[k*QUERY_LANES + l]` is element `k` of input `l`. `out` is
/// refilled in the same layout. The weight row is read **once** for all
/// eight inputs (the batched scan's weight-reuse win), and each lane's
/// accumulation replays [`dot_unrolled`]'s exact order — four
/// independent chains over `k % 4`, combined `(s0 + s1) + (s2 + s3)`,
/// tail lanes added sequentially, bias added last — so every lane is
/// bit-identical to a [`dense_into`] call on that input alone. The AVX
/// backend maps the eight query lanes onto one f32x8 register per
/// chain (broadcast weight × lane vector), which is the same
/// computation with the lane loop in hardware.
pub(crate) fn dense_into_multi(w: &[f32], bias: &[f32], xt: &[f32], out: &mut Vec<f32>) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        // SAFETY: AVX support was verified by `use_avx`.
        unsafe { simd::dense_into_multi_avx(w, bias, xt, out) };
        return;
    }
    scalar::dense_into_multi(w, bias, xt, out);
}

/// Shape of a conv2d operand set; bundles the dimensions the kernel
/// needs so call sites stay readable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvDims {
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels.
    pub co: usize,
    /// Input channels per group (`c / groups`).
    pub cg: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (rows, cols).
    pub stride: (usize, usize),
    /// Channel groups.
    pub groups: usize,
}

impl ConvDims {
    /// Output height under "same" padding.
    pub fn oh(&self) -> usize {
        self.h.div_ceil(self.stride.0)
    }

    /// Output width under "same" padding.
    pub fn ow(&self) -> usize {
        self.w.div_ceil(self.stride.1)
    }
}

/// 2-D "same"-padded convolution into a caller-owned buffer.
///
/// The valid kernel ranges `[ky_lo, ky_hi)` / `[kx_lo, kx_hi)` are
/// computed once per output row/column, so the inner reduction never
/// tests padding bounds; interior pixels (full `kx` range) take a
/// slice-zip fast path. The *order* of multiply-adds is exactly the
/// order the naive quadruple loop with `continue`-on-padding produced:
/// skipped taps contributed nothing, so eliding them leaves the
/// accumulation sequence unchanged and results bit-identical. The AVX
/// backend (unit column stride only) computes eight interior output
/// pixels at once — eight independent accumulator chains, each visiting
/// taps in the same `(channel, ky, kx)` order — so it is bit-identical
/// too.
pub(crate) fn conv2d_into(
    x: &[f32],
    kernel: &[f32],
    bias: &[f32],
    d: ConvDims,
    out: &mut Vec<f32>,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() && d.stride.1 == 1 {
        // SAFETY: AVX support was verified by `use_avx`.
        unsafe { simd::conv2d_into_avx(x, kernel, bias, d, out) };
        return;
    }
    scalar::conv2d_into(x, kernel, bias, d, out);
}

/// The portable scalar backend — the specification of every kernel's
/// summation order.
pub(crate) mod scalar {
    use super::{tail_accumulate, ConvDims, QUERY_LANES};

    /// Scalar [`super::dot_unrolled`]: four independent chains combined
    /// `(s0 + s1) + (s2 + s3)`, sequential tail.
    #[inline]
    pub(crate) fn dot_unrolled(w: &[f32], x: &[f32]) -> f32 {
        debug_assert_eq!(w.len(), x.len());
        let mut wq = w.chunks_exact(4);
        let mut xq = x.chunks_exact(4);
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (wc, xc) in (&mut wq).zip(&mut xq) {
            s0 += wc[0] * xc[0];
            s1 += wc[1] * xc[1];
            s2 += wc[2] * xc[2];
            s3 += wc[3] * xc[3];
        }
        let mut acc = [(s0 + s1) + (s2 + s3)];
        tail_accumulate::<1>(&mut acc, wq.remainder(), xq.remainder());
        acc[0]
    }

    /// Scalar [`super::dense_into`]: one [`dot_unrolled`] per row. The
    /// dispatcher reproduces this loop via the dispatched dot, so this
    /// backend copy exists as the specification the equivalence tests
    /// compare against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn dense_into(w: &[f32], b: &[f32], x: &[f32], out: &mut Vec<f32>) {
        let inp = x.len();
        out.clear();
        out.reserve(b.len());
        for (o, &bias) in b.iter().enumerate() {
            let row = &w[o * inp..(o + 1) * inp];
            out.push(dot_unrolled(row, x) + bias);
        }
    }

    /// Scalar [`super::dense_into_multi`]: per-lane accumulator arrays;
    /// the per-lane loops are trivially vectorizable (independent lanes,
    /// no reassociation), which is where the batch throughput comes from
    /// even without the explicit-SIMD backend.
    pub(crate) fn dense_into_multi(w: &[f32], bias: &[f32], xt: &[f32], out: &mut Vec<f32>) {
        const L: usize = QUERY_LANES;
        let inp = xt.len() / L;
        debug_assert_eq!(xt.len(), inp * L);
        out.clear();
        out.reserve(bias.len() * L);
        for (o, &b0) in bias.iter().enumerate() {
            let row = &w[o * inp..(o + 1) * inp];
            // `chunks_exact` hands the optimizer compile-time-known slice
            // lengths, so the `l` loops below are bounds-check-free and
            // vectorize cleanly.
            let mut quads = row.chunks_exact(4);
            let mut xq = xt.chunks_exact(4 * L);
            let (mut s0, mut s1, mut s2, mut s3) =
                ([0.0f32; L], [0.0f32; L], [0.0f32; L], [0.0f32; L]);
            for (wc, x) in (&mut quads).zip(&mut xq) {
                let (x0, r) = x.split_at(L);
                let (x1, r) = r.split_at(L);
                let (x2, x3) = r.split_at(L);
                for l in 0..L {
                    s0[l] += wc[0] * x0[l];
                    s1[l] += wc[1] * x1[l];
                    s2[l] += wc[2] * x2[l];
                    s3[l] += wc[3] * x3[l];
                }
            }
            let mut acc = [0.0f32; L];
            for l in 0..L {
                acc[l] = (s0[l] + s1[l]) + (s2[l] + s3[l]);
            }
            tail_accumulate::<L>(&mut acc, quads.remainder(), xq.remainder());
            for a in acc {
                out.push(a + b0);
            }
        }
    }

    /// One output pixel of the "same"-padded convolution: the
    /// accumulator starts at the bias and visits taps in
    /// `(channel, ky, kx)` order, with the padding-clipped ranges
    /// precomputed by the caller. Shared by both conv backends — the
    /// scalar kernel calls it for every pixel, the AVX kernel for
    /// border/remainder pixels — so the per-pixel order is defined once.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn conv_pixel(
        x: &[f32],
        kernel: &[f32],
        b0: f32,
        d: ConvDims,
        ocn: usize,
        in_base: usize,
        ybase: usize,
        xbase: usize,
        ky_range: (usize, usize),
    ) -> f32 {
        let ph = d.kh / 2;
        let pw = d.kw / 2;
        let (ky_lo, ky_hi) = ky_range;
        let kx_lo = pw.saturating_sub(xbase);
        let kx_hi = d.kw.min(d.w + pw - xbase);
        let mut acc = b0;
        for icg in 0..d.cg {
            let ic = in_base + icg;
            let x_plane = &x[ic * d.h * d.w..(ic + 1) * d.h * d.w];
            let k_base = ((ocn * d.cg + icg) * d.kh) * d.kw;
            for ky in ky_lo..ky_hi {
                let iy = ybase + ky - ph;
                let xrow = &x_plane[iy * d.w..(iy + 1) * d.w];
                let krow = &kernel[k_base + ky * d.kw..k_base + (ky + 1) * d.kw];
                if kx_lo == 0 && kx_hi == d.kw && xbase >= pw {
                    // Interior fast path: the whole kernel row
                    // overlaps the input row.
                    let xs = &xrow[xbase - pw..xbase - pw + d.kw];
                    for (xv, kv) in xs.iter().zip(krow) {
                        acc += xv * kv;
                    }
                } else {
                    for (kx, kv) in krow.iter().enumerate().take(kx_hi).skip(kx_lo) {
                        let ix = xbase + kx - pw;
                        acc += xrow[ix] * kv;
                    }
                }
            }
        }
        acc
    }

    /// Scalar [`super::conv2d_into`].
    pub(crate) fn conv2d_into(
        x: &[f32],
        kernel: &[f32],
        bias: &[f32],
        d: ConvDims,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(x.len(), d.c * d.h * d.w);
        let (sh, sw) = d.stride;
        let (oh, ow) = (d.oh(), d.ow());
        let ph = d.kh / 2;
        let co_per_group = d.co / d.groups;
        out.clear();
        out.reserve(d.co * oh * ow);
        debug_assert_eq!(bias.len(), d.co);
        for (ocn, &b0) in bias.iter().enumerate() {
            let g = ocn / co_per_group;
            let in_base = g * d.cg;
            for oy in 0..oh {
                let ybase = oy * sh;
                // iy = ybase + ky - ph must land in [0, h).
                let ky_lo = ph.saturating_sub(ybase);
                let ky_hi = d.kh.min(d.h + ph - ybase);
                for ox in 0..ow {
                    let xbase = ox * sw;
                    out.push(conv_pixel(
                        x,
                        kernel,
                        b0,
                        d,
                        ocn,
                        in_base,
                        ybase,
                        xbase,
                        (ky_lo, ky_hi),
                    ));
                }
            }
        }
    }
}

/// Explicit-SIMD backend (x86_64). Every function replays the scalar
/// backend's accumulation order exactly; see the module docs for the
/// per-kernel argument.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{scalar, tail_accumulate, ConvDims, QUERY_LANES};
    use std::arch::x86_64::*;

    /// f32x4 dot product: one SSE register holds the four scalar chains
    /// `[s0, s1, s2, s3]`; each quad iteration is `mul` then `add`
    /// (never FMA), and the horizontal combine is the contract's
    /// `(s0 + s1) + (s2 + s3)`.
    ///
    /// # Safety
    ///
    /// Requires SSE2, which is part of the x86_64 baseline.
    #[inline]
    pub(super) unsafe fn dot_sse2(w: &[f32], x: &[f32]) -> f32 {
        debug_assert_eq!(w.len(), x.len());
        let quads = w.len() / 4;
        let mut s = _mm_setzero_ps();
        for q in 0..quads {
            let wv = _mm_loadu_ps(w.as_ptr().add(4 * q));
            let xv = _mm_loadu_ps(x.as_ptr().add(4 * q));
            s = _mm_add_ps(s, _mm_mul_ps(wv, xv));
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), s);
        let mut acc = [(lanes[0] + lanes[1]) + (lanes[2] + lanes[3])];
        tail_accumulate::<1>(&mut acc, &w[4 * quads..], &x[4 * quads..]);
        acc[0]
    }

    /// f32x8 fused multi-query dense kernel: the eight query lanes live
    /// in one AVX register per accumulator chain; each quad step
    /// broadcasts one weight and does `mul` + `add` per chain, and the
    /// chains combine as `(s0 + s1) + (s2 + s3)` lane-wise — exactly the
    /// scalar backend's per-lane arithmetic.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX support.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn dense_into_multi_avx(
        w: &[f32],
        bias: &[f32],
        xt: &[f32],
        out: &mut Vec<f32>,
    ) {
        const L: usize = QUERY_LANES;
        let inp = xt.len() / L;
        debug_assert_eq!(xt.len(), inp * L);
        out.clear();
        out.reserve(bias.len() * L);
        let quads = inp / 4;
        for (o, &b0) in bias.iter().enumerate() {
            let row = &w[o * inp..(o + 1) * inp];
            let mut s0 = _mm256_setzero_ps();
            let mut s1 = _mm256_setzero_ps();
            let mut s2 = _mm256_setzero_ps();
            let mut s3 = _mm256_setzero_ps();
            for q in 0..quads {
                let wq = &row[4 * q..4 * q + 4];
                let xb = xt.as_ptr().add(4 * q * L);
                s0 = _mm256_add_ps(
                    s0,
                    _mm256_mul_ps(_mm256_set1_ps(wq[0]), _mm256_loadu_ps(xb)),
                );
                s1 = _mm256_add_ps(
                    s1,
                    _mm256_mul_ps(_mm256_set1_ps(wq[1]), _mm256_loadu_ps(xb.add(L))),
                );
                s2 = _mm256_add_ps(
                    s2,
                    _mm256_mul_ps(_mm256_set1_ps(wq[2]), _mm256_loadu_ps(xb.add(2 * L))),
                );
                s3 = _mm256_add_ps(
                    s3,
                    _mm256_mul_ps(_mm256_set1_ps(wq[3]), _mm256_loadu_ps(xb.add(3 * L))),
                );
            }
            let sv = _mm256_add_ps(_mm256_add_ps(s0, s1), _mm256_add_ps(s2, s3));
            let mut acc = [0.0f32; L];
            _mm256_storeu_ps(acc.as_mut_ptr(), sv);
            tail_accumulate::<L>(&mut acc, &row[4 * quads..], &xt[4 * quads * L..]);
            for a in acc {
                out.push(a + b0);
            }
        }
    }

    /// AVX conv2d for unit column stride: eight interior output pixels
    /// per register. For a fixed kernel tap the eight pixels read eight
    /// consecutive input elements (stride 1), so each tap is one
    /// unaligned load, one broadcast, `mul` + `add`. Each pixel is an
    /// independent accumulator chain starting at the bias and visiting
    /// taps in `(channel, ky, kx)` order — the same chain
    /// [`scalar::conv_pixel`] computes, which also handles border and
    /// remainder pixels here.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX support, and `d.stride.1 == 1`.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn conv2d_into_avx(
        x: &[f32],
        kernel: &[f32],
        bias: &[f32],
        d: ConvDims,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(x.len(), d.c * d.h * d.w);
        debug_assert_eq!(d.stride.1, 1);
        let sh = d.stride.0;
        let (oh, ow) = (d.oh(), d.ow());
        let ph = d.kh / 2;
        let pw = d.kw / 2;
        let co_per_group = d.co / d.groups;
        out.clear();
        out.reserve(d.co * oh * ow);
        debug_assert_eq!(bias.len(), d.co);
        // Interior columns: xbase >= pw and xbase - pw + kw <= w, so the
        // full kernel row overlaps the input row (with stride 1,
        // xbase == ox).
        let lo = pw;
        let hi = (d.w + pw).saturating_sub(d.kw) + 1;
        let hi = hi.min(ow).max(lo);
        for (ocn, &b0) in bias.iter().enumerate() {
            let g = ocn / co_per_group;
            let in_base = g * d.cg;
            for oy in 0..oh {
                let ybase = oy * sh;
                let ky_lo = ph.saturating_sub(ybase);
                let ky_hi = d.kh.min(d.h + ph - ybase);
                let mut ox = 0usize;
                while ox < ow {
                    if ox >= lo && ox + 8 <= hi {
                        let mut acc = _mm256_set1_ps(b0);
                        for icg in 0..d.cg {
                            let ic = in_base + icg;
                            let x_plane = &x[ic * d.h * d.w..(ic + 1) * d.h * d.w];
                            let k_base = ((ocn * d.cg + icg) * d.kh) * d.kw;
                            for ky in ky_lo..ky_hi {
                                let iy = ybase + ky - ph;
                                let xrow = x_plane.as_ptr().add(iy * d.w);
                                for kx in 0..d.kw {
                                    let kv = _mm256_set1_ps(kernel[k_base + ky * d.kw + kx]);
                                    let xv = _mm256_loadu_ps(xrow.add(ox - pw + kx));
                                    acc = _mm256_add_ps(acc, _mm256_mul_ps(kv, xv));
                                }
                            }
                        }
                        let mut lanes = [0.0f32; 8];
                        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                        out.extend_from_slice(&lanes);
                        ox += 8;
                    } else {
                        out.push(scalar::conv_pixel(
                            x,
                            kernel,
                            b0,
                            d,
                            ocn,
                            in_base,
                            ybase,
                            ox,
                            (ky_lo, ky_hi),
                        ));
                        ox += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_unrolled_matches_reference_order() {
        // 10 lanes: 2 full quads + 2 tail lanes.
        let w: Vec<f32> = (0..10).map(|i| (i as f32) * 0.5 + 1.0).collect();
        let x: Vec<f32> = (0..10).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let got = dot_unrolled(&w, &x);
        // Reproduce the documented order explicitly.
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
        for q in 0..2 {
            s0 += w[4 * q] * x[4 * q];
            s1 += w[4 * q + 1] * x[4 * q + 1];
            s2 += w[4 * q + 2] * x[4 * q + 2];
            s3 += w[4 * q + 3] * x[4 * q + 3];
        }
        let mut want = (s0 + s1) + (s2 + s3);
        want += w[8] * x[8];
        want += w[9] * x[9];
        assert_eq!(got.to_bits(), want.to_bits());
        // The scalar backend is the same specification.
        assert_eq!(scalar::dot_unrolled(&w, &x).to_bits(), want.to_bits());
    }

    #[test]
    fn dense_into_multi_matches_per_lane_dense_into() {
        // 10 inputs (2 quads + 2 tail lanes), 3 outputs, 8 query lanes.
        let (inp, outp) = (10usize, 3usize);
        let w: Vec<f32> = (0..inp * outp).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..outp).map(|i| i as f32 * 0.1).collect();
        let xs: Vec<Vec<f32>> = (0..QUERY_LANES)
            .map(|l| (0..inp).map(|k| ((l * inp + k) as f32).cos()).collect())
            .collect();
        let mut xt = vec![0.0f32; inp * QUERY_LANES];
        for (l, x) in xs.iter().enumerate() {
            for (k, &v) in x.iter().enumerate() {
                xt[k * QUERY_LANES + l] = v;
            }
        }
        let mut fused = Vec::new();
        dense_into_multi(&w, &b, &xt, &mut fused);
        let mut single = Vec::new();
        for (l, x) in xs.iter().enumerate() {
            dense_into(&w, &b, x, &mut single);
            for (o, &v) in single.iter().enumerate() {
                assert_eq!(
                    fused[o * QUERY_LANES + l].to_bits(),
                    v.to_bits(),
                    "lane {l} output {o}"
                );
            }
        }
    }

    #[test]
    fn dense_into_reuses_capacity() {
        let w = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [0.5f32, -0.5];
        let x = [1.0f32, 1.0, 1.0];
        let mut out = Vec::with_capacity(2);
        let ptr = out.as_ptr();
        dense_into(&w, &b, &x, &mut out);
        assert_eq!(out, vec![6.5, 14.5]);
        dense_into(&w, &b, &x, &mut out);
        assert_eq!(ptr, out.as_ptr(), "no reallocation on reuse");
    }

    /// Deterministic pseudo-random f32s with mixed magnitudes, so the
    /// bit-identity comparisons exercise non-trivial rounding.
    fn lcg_vec(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((s >> 40) as f32) / ((1u32 << 24) as f32);
                (u - 0.5) * 4.0
            })
            .collect()
    }

    #[test]
    fn dispatched_dot_is_bit_identical_to_scalar_backend() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 15, 16, 33, 64, 200, 513] {
            let w = lcg_vec(n as u64 + 1, n);
            let x = lcg_vec(n as u64 + 77, n);
            assert_eq!(
                dot_unrolled(&w, &x).to_bits(),
                scalar::dot_unrolled(&w, &x).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn dispatched_dense_into_is_bit_identical_to_scalar_backend() {
        for (inp, outp) in [(1usize, 1usize), (5, 3), (16, 4), (37, 9), (200, 17)] {
            let w = lcg_vec(inp as u64 * 31 + outp as u64, inp * outp);
            let b = lcg_vec(outp as u64 + 5, outp);
            let x = lcg_vec(inp as u64 + 9, inp);
            let (mut got, mut want) = (Vec::new(), Vec::new());
            dense_into(&w, &b, &x, &mut got);
            scalar::dense_into(&w, &b, &x, &mut want);
            let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "inp={inp} outp={outp}");
        }
    }

    #[test]
    fn dispatched_dense_into_multi_is_bit_identical_to_scalar_backend() {
        for (inp, outp) in [(1usize, 1usize), (4, 2), (10, 3), (37, 9), (200, 17)] {
            let w = lcg_vec(inp as u64 * 17 + outp as u64, inp * outp);
            let b = lcg_vec(outp as u64 + 3, outp);
            let xt = lcg_vec(inp as u64 + 13, inp * QUERY_LANES);
            let (mut got, mut want) = (Vec::new(), Vec::new());
            dense_into_multi(&w, &b, &xt, &mut got);
            scalar::dense_into_multi(&w, &b, &xt, &mut want);
            let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "inp={inp} outp={outp}");
        }
    }

    #[test]
    fn dispatched_conv2d_is_bit_identical_to_scalar_backend() {
        // Covers: width ≥ 8 interiors (AVX chunks), narrow widths
        // (all-border), multi-channel, groups, and both strides (the
        // stride-2 column case must fall back to scalar).
        let cases = [
            // (c, h, w, co, kh, kw, stride, groups)
            (
                1usize,
                4usize,
                20usize,
                2usize,
                3usize,
                3usize,
                (1usize, 1usize),
                1usize,
            ),
            (3, 6, 13, 4, 3, 3, (1, 1), 1),
            (2, 5, 5, 2, 3, 3, (1, 1), 1),
            (4, 8, 16, 4, 3, 3, (2, 1), 2),
            (1, 9, 18, 3, 5, 5, (1, 1), 1),
            (2, 6, 24, 2, 3, 3, (2, 2), 1),
            (1, 3, 8, 1, 1, 1, (1, 1), 1),
        ];
        for (i, &(c, h, w, co, kh, kw, stride, groups)) in cases.iter().enumerate() {
            let d = ConvDims {
                c,
                h,
                w,
                co,
                cg: c / groups,
                kh,
                kw,
                stride,
                groups,
            };
            let x = lcg_vec(i as u64 + 1, c * h * w);
            let kernel = lcg_vec(i as u64 + 100, co * d.cg * kh * kw);
            let bias = lcg_vec(i as u64 + 200, co);
            let (mut got, mut want) = (Vec::new(), Vec::new());
            conv2d_into(&x, &kernel, &bias, d, &mut got);
            scalar::conv2d_into(&x, &kernel, &bias, d, &mut want);
            assert_eq!(got.len(), want.len(), "case {i}");
            for (j, (g, e)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), e.to_bits(), "case {i} elem {j}");
            }
        }
    }

    #[test]
    fn backend_name_is_stable() {
        let name = backend_name();
        assert!(["avx", "sse2", "scalar"].contains(&name));
        assert_eq!(name, backend_name());
    }

    mod proptests {
        use super::super::*;
        use super::lcg_vec;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The dispatched dot (SIMD when available) is bit-identical
            /// to the scalar specification for arbitrary lengths,
            /// including every tail-length class.
            #[test]
            fn dot_simd_matches_scalar_to_the_bit(
                pairs in collection::vec((-8.0f32..8.0f32, -8.0f32..8.0f32), 0..300)
            ) {
                let w: Vec<f32> = pairs.iter().map(|p| p.0).collect();
                let x: Vec<f32> = pairs.iter().map(|p| p.1).collect();
                prop_assert_eq!(
                    dot_unrolled(&w, &x).to_bits(),
                    scalar::dot_unrolled(&w, &x).to_bits()
                );
            }

            /// The dispatched fused multi-query kernel is bit-identical
            /// to the scalar specification on every lane and output.
            #[test]
            fn dense_multi_simd_matches_scalar_to_the_bit(
                (inp, outp, seed) in (1usize..40, 1usize..8, 0u64..1_000_000)
            ) {
                let w = lcg_vec(seed ^ 1, inp * outp);
                let b = lcg_vec(seed ^ 2, outp);
                let xt = lcg_vec(seed ^ 3, inp * QUERY_LANES);
                let (mut got, mut want) = (Vec::new(), Vec::new());
                dense_into_multi(&w, &b, &xt, &mut got);
                scalar::dense_into_multi(&w, &b, &xt, &mut want);
                let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want);
            }

            /// The dispatched conv2d is bit-identical to the scalar
            /// specification across random geometries (both strides, so
            /// the AVX interior path and the scalar fallback are both
            /// exercised).
            #[test]
            fn conv_simd_matches_scalar_to_the_bit(
                (c, h, w, co, ksel, sw, seed) in (
                    1usize..4, 1usize..8, 1usize..24, 1usize..4,
                    0usize..2, 1usize..3, 0u64..1_000_000,
                )
            ) {
                let (kh, kw) = [(1usize, 1usize), (3, 3)][ksel];
                let d = ConvDims {
                    c, h, w, co,
                    cg: c,
                    kh, kw,
                    stride: (1, sw),
                    groups: 1,
                };
                let x = lcg_vec(seed ^ 10, c * h * w);
                let kernel = lcg_vec(seed ^ 11, co * c * kh * kw);
                let bias = lcg_vec(seed ^ 12, co);
                let (mut got, mut want) = (Vec::new(), Vec::new());
                conv2d_into(&x, &kernel, &bias, d, &mut got);
                scalar::conv2d_into(&x, &kernel, &bias, d, &mut want);
                let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
