//! The compute kernels shared by every inference path.
//!
//! Both the allocating reference path ([`crate::Tensor::dense`],
//! [`crate::Tensor::conv2d`], [`crate::Layer::forward`]) and the
//! allocation-free scratch path ([`crate::Layer::forward_into`],
//! [`crate::Model::similarity_scratch`]) call the functions in this
//! module, so the two paths execute the *same f32 operations in the same
//! order* and their results are bit-identical by construction. That
//! shared-kernel discipline is what lets the in-storage scan use the
//! scratch path while tests compare it bit-for-bit against the reference
//! path (see DESIGN.md, "Summation order and bit-identity").
//!
//! The kernels are written for scalar ILP rather than allocation
//! convenience:
//!
//! * the dense (matrix-vector) kernel unrolls each row's reduction over
//!   four independent accumulators, breaking the loop-carried FP add
//!   dependency that serializes a naive `acc += w*x` loop;
//! * the conv2d kernel precomputes the valid `ky`/`kx` kernel ranges per
//!   output coordinate, hoisting the zero-padding bounds checks out of
//!   the inner loops, with a branch-free slice-zip fast path for interior
//!   pixels.

/// Dot product over four independent accumulators.
///
/// Lanes `0,4,8,…` feed `s0`, lanes `1,5,9,…` feed `s1`, and so on; the
/// partial sums are combined as `(s0 + s1) + (s2 + s3)` and any tail
/// lanes (length not a multiple of 4) are then added sequentially. This
/// order is fixed: every caller — reference or scratch path — inherits
/// it, which is what keeps the two paths bit-identical.
#[inline]
pub(crate) fn dot_unrolled(w: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(w.len(), x.len());
    let mut wq = w.chunks_exact(4);
    let mut xq = x.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (wc, xc) in (&mut wq).zip(&mut xq) {
        s0 += wc[0] * xc[0];
        s1 += wc[1] * xc[1];
        s2 += wc[2] * xc[2];
        s3 += wc[3] * xc[3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (wi, xi) in wq.remainder().iter().zip(xq.remainder()) {
        acc += wi * xi;
    }
    acc
}

/// Dense matrix-vector product `y = W x + b` into a caller-owned buffer.
///
/// `w` is row-major `[out, in]`; `out` is cleared and refilled, so a
/// buffer with `b.len()` capacity makes the call allocation-free. Shape
/// checking is the caller's job (the `Tensor` / `Layer` wrappers do it).
pub(crate) fn dense_into(w: &[f32], b: &[f32], x: &[f32], out: &mut Vec<f32>) {
    let inp = x.len();
    out.clear();
    out.reserve(b.len());
    for (o, &bias) in b.iter().enumerate() {
        let row = &w[o * inp..(o + 1) * inp];
        out.push(dot_unrolled(row, x) + bias);
    }
}

/// Lane width of the fused multi-query dense kernel: eight queries are
/// scored against one item per pass over the weight row. Eight f32 lanes
/// fill one AVX register (or two SSE registers) and keep the per-row
/// accumulator set (4 chains × 8 lanes) inside the register file.
pub(crate) const QUERY_LANES: usize = 8;

/// Dense matrix-vector product for [`QUERY_LANES`] inputs at once:
/// `out[o][l] = Σ_k w[o][k] · xt[k][l] + b[o]`.
///
/// `xt` is *lane-transposed*: `QUERY_LANES` input vectors interleaved so
/// that `xt[k*QUERY_LANES + l]` is element `k` of input `l`. `out` is
/// refilled in the same layout. The weight row is read **once** for all
/// eight inputs (the batched scan's weight-reuse win), and each lane's
/// accumulation replays [`dot_unrolled`]'s exact order — four
/// independent chains over `k % 4`, combined `(s0 + s1) + (s2 + s3)`,
/// tail lanes added sequentially, bias added last — so every lane is
/// bit-identical to a [`dense_into`] call on that input alone. The
/// per-lane loops are trivially vectorizable (independent lanes, no
/// reassociation), which is where the batch throughput comes from.
pub(crate) fn dense_into_multi(w: &[f32], bias: &[f32], xt: &[f32], out: &mut Vec<f32>) {
    const L: usize = QUERY_LANES;
    let inp = xt.len() / L;
    debug_assert_eq!(xt.len(), inp * L);
    out.clear();
    out.reserve(bias.len() * L);
    for (o, &b0) in bias.iter().enumerate() {
        let row = &w[o * inp..(o + 1) * inp];
        // `chunks_exact` hands the optimizer compile-time-known slice
        // lengths, so the `l` loops below are bounds-check-free and
        // vectorize cleanly.
        let mut quads = row.chunks_exact(4);
        let mut xq = xt.chunks_exact(4 * L);
        let (mut s0, mut s1, mut s2, mut s3) = ([0.0f32; L], [0.0f32; L], [0.0f32; L], [0.0f32; L]);
        for (wc, x) in (&mut quads).zip(&mut xq) {
            let (x0, r) = x.split_at(L);
            let (x1, r) = r.split_at(L);
            let (x2, x3) = r.split_at(L);
            for l in 0..L {
                s0[l] += wc[0] * x0[l];
                s1[l] += wc[1] * x1[l];
                s2[l] += wc[2] * x2[l];
                s3[l] += wc[3] * x3[l];
            }
        }
        let mut acc = [0.0f32; L];
        for l in 0..L {
            acc[l] = (s0[l] + s1[l]) + (s2[l] + s3[l]);
        }
        for (&wi, xr) in quads.remainder().iter().zip(xq.remainder().chunks_exact(L)) {
            for l in 0..L {
                acc[l] += wi * xr[l];
            }
        }
        for a in acc {
            out.push(a + b0);
        }
    }
}

/// Shape of a conv2d operand set; bundles the dimensions the kernel
/// needs so call sites stay readable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvDims {
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels.
    pub co: usize,
    /// Input channels per group (`c / groups`).
    pub cg: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (rows, cols).
    pub stride: (usize, usize),
    /// Channel groups.
    pub groups: usize,
}

impl ConvDims {
    /// Output height under "same" padding.
    pub fn oh(&self) -> usize {
        self.h.div_ceil(self.stride.0)
    }

    /// Output width under "same" padding.
    pub fn ow(&self) -> usize {
        self.w.div_ceil(self.stride.1)
    }
}

/// 2-D "same"-padded convolution into a caller-owned buffer.
///
/// The valid kernel ranges `[ky_lo, ky_hi)` / `[kx_lo, kx_hi)` are
/// computed once per output row/column, so the inner reduction never
/// tests padding bounds; interior pixels (full `kx` range) take a
/// slice-zip fast path. The *order* of multiply-adds is exactly the
/// order the naive quadruple loop with `continue`-on-padding produced:
/// skipped taps contributed nothing, so eliding them leaves the
/// accumulation sequence unchanged and results bit-identical.
pub(crate) fn conv2d_into(
    x: &[f32],
    kernel: &[f32],
    bias: &[f32],
    d: ConvDims,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(x.len(), d.c * d.h * d.w);
    let (sh, sw) = d.stride;
    let (oh, ow) = (d.oh(), d.ow());
    let ph = d.kh / 2;
    let pw = d.kw / 2;
    let co_per_group = d.co / d.groups;
    out.clear();
    out.reserve(d.co * oh * ow);
    debug_assert_eq!(bias.len(), d.co);
    for (ocn, &b0) in bias.iter().enumerate() {
        let g = ocn / co_per_group;
        let in_base = g * d.cg;
        for oy in 0..oh {
            let ybase = oy * sh;
            // iy = ybase + ky - ph must land in [0, h).
            let ky_lo = ph.saturating_sub(ybase);
            let ky_hi = d.kh.min(d.h + ph - ybase);
            for ox in 0..ow {
                let xbase = ox * sw;
                let kx_lo = pw.saturating_sub(xbase);
                let kx_hi = d.kw.min(d.w + pw - xbase);
                let mut acc = b0;
                for icg in 0..d.cg {
                    let ic = in_base + icg;
                    let x_plane = &x[ic * d.h * d.w..(ic + 1) * d.h * d.w];
                    let k_base = ((ocn * d.cg + icg) * d.kh) * d.kw;
                    for ky in ky_lo..ky_hi {
                        let iy = ybase + ky - ph;
                        let xrow = &x_plane[iy * d.w..(iy + 1) * d.w];
                        let krow = &kernel[k_base + ky * d.kw..k_base + (ky + 1) * d.kw];
                        if kx_lo == 0 && kx_hi == d.kw && xbase >= pw {
                            // Interior fast path: the whole kernel row
                            // overlaps the input row.
                            let xs = &xrow[xbase - pw..xbase - pw + d.kw];
                            for (xv, kv) in xs.iter().zip(krow) {
                                acc += xv * kv;
                            }
                        } else {
                            for (kx, kv) in krow.iter().enumerate().take(kx_hi).skip(kx_lo) {
                                let ix = xbase + kx - pw;
                                acc += xrow[ix] * kv;
                            }
                        }
                    }
                }
                out.push(acc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_unrolled_matches_reference_order() {
        // 10 lanes: 2 full quads + 2 tail lanes.
        let w: Vec<f32> = (0..10).map(|i| (i as f32) * 0.5 + 1.0).collect();
        let x: Vec<f32> = (0..10).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let got = dot_unrolled(&w, &x);
        // Reproduce the documented order explicitly.
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
        for q in 0..2 {
            s0 += w[4 * q] * x[4 * q];
            s1 += w[4 * q + 1] * x[4 * q + 1];
            s2 += w[4 * q + 2] * x[4 * q + 2];
            s3 += w[4 * q + 3] * x[4 * q + 3];
        }
        let mut want = (s0 + s1) + (s2 + s3);
        want += w[8] * x[8];
        want += w[9] * x[9];
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn dense_into_multi_matches_per_lane_dense_into() {
        // 10 inputs (2 quads + 2 tail lanes), 3 outputs, 8 query lanes.
        let (inp, outp) = (10usize, 3usize);
        let w: Vec<f32> = (0..inp * outp).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..outp).map(|i| i as f32 * 0.1).collect();
        let xs: Vec<Vec<f32>> = (0..QUERY_LANES)
            .map(|l| (0..inp).map(|k| ((l * inp + k) as f32).cos()).collect())
            .collect();
        let mut xt = vec![0.0f32; inp * QUERY_LANES];
        for (l, x) in xs.iter().enumerate() {
            for (k, &v) in x.iter().enumerate() {
                xt[k * QUERY_LANES + l] = v;
            }
        }
        let mut fused = Vec::new();
        dense_into_multi(&w, &b, &xt, &mut fused);
        let mut single = Vec::new();
        for (l, x) in xs.iter().enumerate() {
            dense_into(&w, &b, x, &mut single);
            for (o, &v) in single.iter().enumerate() {
                assert_eq!(
                    fused[o * QUERY_LANES + l].to_bits(),
                    v.to_bits(),
                    "lane {l} output {o}"
                );
            }
        }
    }

    #[test]
    fn dense_into_reuses_capacity() {
        let w = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [0.5f32, -0.5];
        let x = [1.0f32, 1.0, 1.0];
        let mut out = Vec::with_capacity(2);
        let ptr = out.as_ptr();
        dense_into(&w, &b, &x, &mut out);
        assert_eq!(out, vec![6.5, 14.5]);
        dense_into(&w, &b, &x, &mut out);
        assert_eq!(ptr, out.as_ptr(), "no reallocation on reuse");
    }
}
