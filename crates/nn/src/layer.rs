//! Layer types for similarity-comparison networks.
//!
//! The paper's characterization study (§3, Observation 2) found that
//! intelligent-query SCNs consist of convolutional, fully-connected and
//! element-wise layers; those are exactly the layer families modelled here.
//! Each layer carries both a *shape* (used by the timing/energy simulators,
//! which never touch real data) and optional *weights* (used by the
//! functional inference path).

use crate::{NnError, Result, Tensor};
use serde::{Deserialize, Serialize};

/// Element-wise operations supported by the modified systolic array (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementWiseOp {
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise (Hadamard) product — used by TIR's "vector dot product".
    Mul,
}

/// How the query branch and dataset branch are merged at the entrance of a
/// two-branch SCN (§2.1, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MergeOp {
    /// Concatenate the two feature vectors (no arithmetic, no element-wise
    /// layer in the Table 1 accounting).
    Concat,
    /// Combine with an element-wise operation (counts as one element-wise
    /// layer in Table 1).
    ElementWise(ElementWiseOp),
}

/// Nonlinear activations applied after a weighted layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// No activation.
    #[default]
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a tensor.
    pub fn apply(self, mut t: Tensor) -> Tensor {
        self.apply_slice(t.data_mut());
        t
    }

    /// Applies the activation lane-wise, in place. Both the allocating
    /// and the scratch inference paths use this, so their results agree
    /// bit for bit.
    pub fn apply_slice(self, xs: &mut [f32]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for x in xs {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for x in xs {
                    *x = 1.0 / (1.0 + (-*x).exp());
                }
            }
            Activation::Tanh => {
                for x in xs {
                    *x = x.tanh();
                }
            }
        }
    }
}

/// The pure shape of a layer: everything the cycle-accurate and energy
/// simulators need, with no weight data attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerShape {
    /// Fully-connected layer `in_features -> out_features`.
    Dense {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
    },
    /// 2-D convolution over `[in_channels, in_h, in_w]` with "same" padding.
    Conv2d {
        /// Input channel count.
        in_channels: usize,
        /// Output channel count.
        out_channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Square kernel side.
        kernel: usize,
        /// Stride (rows, cols).
        stride: (usize, usize),
        /// Channel groups (1 = dense convolution).
        groups: usize,
    },
    /// Element-wise operation over vectors of the given length.
    ElementWise {
        /// Vector length.
        len: usize,
        /// Operation applied lane-wise.
        op: ElementWiseOp,
    },
}

impl LayerShape {
    /// Number of output elements this layer produces for one input sample.
    pub fn output_len(&self) -> usize {
        match *self {
            LayerShape::Dense { out_features, .. } => out_features,
            LayerShape::Conv2d {
                out_channels,
                in_h,
                in_w,
                stride,
                ..
            } => out_channels * in_h.div_ceil(stride.0) * in_w.div_ceil(stride.1),
            LayerShape::ElementWise { len, .. } => len,
        }
    }

    /// Number of input elements this layer consumes for one sample.
    pub fn input_len(&self) -> usize {
        match *self {
            LayerShape::Dense { in_features, .. } => in_features,
            LayerShape::Conv2d {
                in_channels,
                in_h,
                in_w,
                ..
            } => in_channels * in_h * in_w,
            LayerShape::ElementWise { len, .. } => len,
        }
    }

    /// Multiply-accumulate count for one sample.
    ///
    /// Element-wise layers are counted as one op per lane (the paper counts
    /// them in "Total FLOPs" at one FLOP per element).
    pub fn macs(&self) -> u64 {
        match *self {
            LayerShape::Dense {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            LayerShape::Conv2d {
                in_channels,
                kernel,
                groups,
                ..
            } => {
                let reduction = kernel * kernel * in_channels / groups;
                (self.output_len() * reduction) as u64
            }
            LayerShape::ElementWise { len, .. } => len as u64,
        }
    }

    /// Floating-point operation count for one sample (2 per MAC for weighted
    /// layers, 1 per element for element-wise layers).
    pub fn flops(&self) -> u64 {
        match self {
            LayerShape::ElementWise { .. } => self.macs(),
            _ => 2 * self.macs(),
        }
    }

    /// Weight parameter count (kernel + bias; element-wise layers have none).
    pub fn weight_params(&self) -> u64 {
        match *self {
            LayerShape::Dense {
                in_features,
                out_features,
            } => (in_features * out_features + out_features) as u64,
            LayerShape::Conv2d {
                in_channels,
                out_channels,
                kernel,
                groups,
                ..
            } => (out_channels * (in_channels / groups) * kernel * kernel + out_channels) as u64,
            LayerShape::ElementWise { .. } => 0,
        }
    }

    /// Weight size in bytes at 32-bit precision (the paper evaluates all
    /// systems at fp32, §5).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_params() * 4
    }

    /// The intrinsic per-cycle parallelism of this layer when processing a
    /// single feature vector on a systolic array (§4.5, Figure 6):
    ///
    /// * fully-connected layers expose at most `out_features` parallel MACs
    ///   (one output element per PE under output-stationary dataflow);
    /// * convolutions expose at most `kernel² × in_channels/groups` parallel
    ///   MACs (the reduction tree of one output element);
    /// * element-wise layers expose the full vector length.
    pub fn intrinsic_parallelism(&self) -> usize {
        match *self {
            LayerShape::Dense { out_features, .. } => out_features,
            LayerShape::Conv2d {
                in_channels,
                kernel,
                groups,
                ..
            } => kernel * kernel * in_channels / groups,
            LayerShape::ElementWise { len, .. } => len,
        }
    }

    /// True for convolutional layers.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerShape::Conv2d { .. })
    }

    /// True for fully-connected layers.
    pub fn is_dense(&self) -> bool {
        matches!(self, LayerShape::Dense { .. })
    }

    /// True for element-wise layers.
    pub fn is_element_wise(&self) -> bool {
        matches!(self, LayerShape::ElementWise { .. })
    }
}

/// A layer: a shape, an activation, and (optionally) materialized weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable layer name (unique within a model).
    pub name: String,
    /// The layer's shape, used by the timing and energy models.
    pub shape: LayerShape,
    /// Activation applied to the layer output.
    pub activation: Activation,
    /// Kernel / weight-matrix tensor, if materialized.
    pub weights: Option<Tensor>,
    /// Bias tensor, if materialized.
    pub bias: Option<Tensor>,
}

impl Layer {
    /// Creates an unweighted layer (shape only).
    pub fn new(name: impl Into<String>, shape: LayerShape, activation: Activation) -> Self {
        Layer {
            name: name.into(),
            shape,
            activation,
            weights: None,
            bias: None,
        }
    }

    /// Fills the layer with deterministic pseudo-random weights scaled by
    /// `1/sqrt(fan_in)` (so activations stay O(1) through deep stacks).
    pub fn seed_weights(&mut self, seed: u64) {
        match self.shape {
            LayerShape::Dense {
                in_features,
                out_features,
            } => {
                let scale = 1.0 / (in_features as f32).sqrt();
                self.weights = Some(Tensor::random(vec![out_features, in_features], scale, seed));
                self.bias = Some(Tensor::zeros(vec![out_features]));
            }
            LayerShape::Conv2d {
                in_channels,
                out_channels,
                kernel,
                groups,
                ..
            } => {
                let cg = in_channels / groups;
                let fan_in = (kernel * kernel * cg) as f32;
                let scale = 1.0 / fan_in.sqrt();
                self.weights = Some(Tensor::random(
                    vec![out_channels, cg, kernel, kernel],
                    scale,
                    seed,
                ));
                self.bias = Some(Tensor::zeros(vec![out_channels]));
            }
            LayerShape::ElementWise { .. } => {
                // Element-wise layers carry no weights.
                self.weights = None;
                self.bias = None;
            }
        }
    }

    /// Runs the layer forward on one input tensor.
    ///
    /// Element-wise layers interpret the input as the *already merged*
    /// operand stream and simply pass it through (the merge arithmetic is
    /// done by [`MergeOp`] handling in [`crate::Model::similarity`]).
    ///
    /// This is the allocating wrapper over [`Layer::forward_into`]; the
    /// two share kernels and are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UninitializedWeights`] if a weighted layer has no
    /// weights, or [`NnError::ShapeMismatch`] if the input does not fit.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut out = Vec::with_capacity(self.shape.output_len());
        self.forward_into(input.data(), &mut out)?;
        let shape = match self.shape {
            LayerShape::Conv2d {
                out_channels,
                in_h,
                in_w,
                stride,
                ..
            } => vec![
                out_channels,
                in_h.div_ceil(stride.0),
                in_w.div_ceil(stride.1),
            ],
            _ => vec![out.len()],
        };
        Tensor::from_vec(shape, out)
    }

    /// Runs the layer forward from a flat input slice into a caller-owned
    /// output buffer — the scan hot path. `out` is cleared and refilled;
    /// with sufficient capacity (see
    /// [`InferenceScratch`](crate::InferenceScratch)) the call performs
    /// no heap allocation. The convolutional arm consumes the flat slice
    /// directly (no reshape, no clone).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::forward`].
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) -> Result<()> {
        let expected = self.shape.input_len();
        if input.len() != expected {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{expected}]"),
                found: format!("[{}]", input.len()),
            });
        }
        match self.shape {
            LayerShape::Dense { .. } => {
                let (w, b) = self.weights_or_err()?;
                crate::kernels::dense_into(w.data(), b.data(), input, out);
            }
            LayerShape::Conv2d {
                in_channels,
                out_channels,
                in_h,
                in_w,
                kernel,
                stride,
                groups,
            } => {
                let (w, b) = self.weights_or_err()?;
                let dims = crate::kernels::ConvDims {
                    c: in_channels,
                    h: in_h,
                    w: in_w,
                    co: out_channels,
                    cg: in_channels / groups,
                    kh: kernel,
                    kw: kernel,
                    stride,
                    groups,
                };
                crate::kernels::conv2d_into(input, w.data(), b.data(), dims, out);
            }
            LayerShape::ElementWise { .. } => {
                out.clear();
                out.extend_from_slice(input);
            }
        }
        self.activation.apply_slice(out);
        Ok(())
    }

    fn weights_or_err(&self) -> Result<(&Tensor, &Tensor)> {
        match (&self.weights, &self.bias) {
            (Some(w), Some(b)) => Ok((w, b)),
            _ => Err(NnError::UninitializedWeights {
                layer: self.name.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(inf: usize, outf: usize) -> LayerShape {
        LayerShape::Dense {
            in_features: inf,
            out_features: outf,
        }
    }

    #[test]
    fn dense_accounting() {
        let s = dense(512, 256);
        assert_eq!(s.macs(), 512 * 256);
        assert_eq!(s.flops(), 2 * 512 * 256);
        assert_eq!(s.weight_params(), 512 * 256 + 256);
        assert_eq!(s.output_len(), 256);
        assert_eq!(s.input_len(), 512);
        assert_eq!(s.intrinsic_parallelism(), 256);
        assert!(s.is_dense() && !s.is_conv() && !s.is_element_wise());
    }

    #[test]
    fn conv_accounting() {
        let s = LayerShape::Conv2d {
            in_channels: 64,
            out_channels: 64,
            in_h: 16,
            in_w: 11,
            kernel: 3,
            stride: (2, 1),
            groups: 1,
        };
        // Same padding, stride (2,1): output 8 x 11 x 64.
        assert_eq!(s.output_len(), 8 * 11 * 64);
        assert_eq!(s.macs(), (8 * 11 * 64) as u64 * 576);
        assert_eq!(s.intrinsic_parallelism(), 3 * 3 * 64); // = 576 (Fig. 6)
        assert!(s.is_conv());
    }

    #[test]
    fn grouped_conv_divides_reduction() {
        let s = LayerShape::Conv2d {
            in_channels: 128,
            out_channels: 128,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: (1, 1),
            groups: 2,
        };
        assert_eq!(s.intrinsic_parallelism(), 3 * 3 * 64);
        assert_eq!(s.weight_params(), (128 * 64 * 9 + 128) as u64);
    }

    #[test]
    fn element_wise_accounting() {
        let s = LayerShape::ElementWise {
            len: 512,
            op: ElementWiseOp::Mul,
        };
        assert_eq!(s.macs(), 512);
        assert_eq!(s.flops(), 512); // one FLOP per lane
        assert_eq!(s.weight_params(), 0);
        assert_eq!(s.intrinsic_parallelism(), 512);
    }

    #[test]
    fn forward_dense_requires_weights() {
        let layer = Layer::new("fc", dense(4, 2), Activation::Identity);
        let x = Tensor::from_slice(&[1.0; 4]);
        assert!(matches!(
            layer.forward(&x),
            Err(NnError::UninitializedWeights { .. })
        ));
    }

    #[test]
    fn forward_dense_with_seeded_weights() {
        let mut layer = Layer::new("fc", dense(4, 2), Activation::Relu);
        layer.seed_weights(9);
        let x = Tensor::from_slice(&[1.0; 4]);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.len(), 2);
        assert!(y.data().iter().all(|&v| v >= 0.0)); // ReLU applied
    }

    #[test]
    fn forward_conv_reshapes_flat_input() {
        let shape = LayerShape::Conv2d {
            in_channels: 2,
            out_channels: 3,
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: (2, 2),
            groups: 1,
        };
        let mut layer = Layer::new("conv", shape, Activation::Identity);
        layer.seed_weights(1);
        let x = Tensor::from_slice(&[0.5; 32]);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.len(), 3 * 2 * 2);
        assert_eq!(y.len(), shape.output_len());
    }

    #[test]
    fn forward_element_wise_passthrough() {
        let layer = Layer::new(
            "ew",
            LayerShape::ElementWise {
                len: 3,
                op: ElementWiseOp::Add,
            },
            Activation::Identity,
        );
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(layer.forward(&x).unwrap(), x);
        let bad = Tensor::from_slice(&[1.0]);
        assert!(layer.forward(&bad).is_err());
    }

    #[test]
    fn seeded_weights_are_deterministic() {
        let mut a = Layer::new("fc", dense(8, 8), Activation::Identity);
        let mut b = Layer::new("fc", dense(8, 8), Activation::Identity);
        a.seed_weights(5);
        b.seed_weights(5);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn activation_default_is_identity() {
        assert_eq!(Activation::default(), Activation::Identity);
        let t = Tensor::from_slice(&[-1.0]);
        assert_eq!(Activation::Identity.apply(t.clone()), t);
    }
}
