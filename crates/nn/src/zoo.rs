//! The five intelligent-query applications of Table 1.
//!
//! Each constructor returns an *unseeded* [`Model`] whose layer shapes were
//! chosen to match the paper's reported characteristics:
//!
//! | App    | Feature | #Conv | #FC | #EW | FLOPs (paper) | Weights (paper) |
//! |--------|---------|-------|-----|-----|---------------|-----------------|
//! | ReId   | 44 KB   | 2     | 2   | 1   | 9.8 M         | 10.7 MB         |
//! | MIR    | 2 KB    | 0     | 3   | 0   | 1.05 M        | 2 MB            |
//! | ESTP   | 16 KB   | 0     | 3   | 0   | 4.72 M        | 9 MB            |
//! | TIR    | 2 KB    | 0     | 3   | 1   | 0.79 M        | 1.5 MB          |
//! | TextQA | 0.8 KB  | 0     | 1   | 1   | 0.08 M        | 0.16 MB         |
//!
//! TIR uses the exact layer sizes the paper names (§3: "a vector dot product
//! and three fully connected layers with sizes 512×512, 512×256, 256×2").
//! The remaining models are reconstructions constrained by the public
//! numbers plus the design-space observations of §4.5 / Figure 6 (largest FC
//! layer exposes 512 parallel MACs; largest conv layer exposes 576 = 3²·64
//! and saturates at 1024 PEs). Deviations from the paper's FLOP/weight
//! totals are reported by the Table 1 bench and recorded in EXPERIMENTS.md.

use crate::layer::{Activation, ElementWiseOp, MergeOp};
use crate::model::{Model, ModelBuilder};

/// All five paper applications, in Table 1 order.
pub fn all() -> Vec<Model> {
    vec![reid(), mir(), estp(), tir(), textqa()]
}

/// Looks up a zoo model by its lowercase name.
pub fn by_name(name: &str) -> Option<Model> {
    match name {
        "reid" => Some(reid()),
        "mir" => Some(mir()),
        "estp" => Some(estp()),
        "tir" => Some(tir()),
        "textqa" => Some(textqa()),
        _ => None,
    }
}

/// Person Re-Identification (ReId): visual search for the same person across
/// a stored image database (CUHK03).
///
/// Feature: 44 KB = 11264 f32 laid out as a 64-channel 16×11 feature map.
/// Structure: element-wise subtract merge, two convolutions (the second a
/// 1×1 pointwise conv), and two FC layers. The 3×3×64 convolution exposes
/// 576 parallel MACs — the "largest ConvD layer" of Figure 6.
pub fn reid() -> Model {
    ModelBuilder::new("reid", 64 * 16 * 11)
        .merge(MergeOp::ElementWise(ElementWiseOp::Sub))
        // conv0: 3x3, 64 -> 64, stride (2,2): 16x11 -> 8x6.
        .conv2d(64, 64, 16, 11, 3, (2, 2), 1, Activation::Relu)
        // conv1: 1x1 pointwise expansion, 64 -> 128 on the 8x6 map.
        .conv2d(64, 128, 8, 6, 1, (1, 1), 1, Activation::Relu)
        // fc2: flatten 8*6*128 = 6144 -> 424 (sized to land weight bytes).
        .dense(8 * 6 * 128, 424, Activation::Relu)
        // fc3: 424 -> 2 match/no-match head.
        .dense(424, 2, Activation::Identity)
        .build()
}

/// Music Information Retrieval (MIR): retrieve music by style and
/// instrumentation (MagnaTagTune).
///
/// Feature: 2 KB = 512 f32. Structure: concatenation merge (so zero
/// element-wise layers, matching Table 1) and three FC layers.
pub fn mir() -> Model {
    ModelBuilder::new("mir", 512)
        .dense(1024, 448, Activation::Relu)
        .dense(448, 96, Activation::Relu)
        .dense(96, 2, Activation::Identity)
        .build()
}

/// Exact Street To Shop (ESTP): online shopping from a real-world photo of
/// a garment item (Street2Shop).
///
/// Feature: 16 KB = 4096 f32. Structure: concatenation merge and three FC
/// layers; the first FC holds nearly all of the 9 MB of weights.
pub fn estp() -> Model {
    ModelBuilder::new("estp", 4096)
        .dense(8192, 270, Activation::Relu)
        .dense(270, 160, Activation::Relu)
        .dense(160, 2, Activation::Identity)
        .build()
}

/// Text-based Image Retrieval (TIR): retrieve images from a sentence query
/// (MSCOCO / Flickr30K).
///
/// Feature: 2 KB = 512 f32. Structure taken verbatim from §3: an
/// element-wise vector product followed by FC layers 512×512, 512×256 and
/// 256×2. Its first FC layer is the "largest FC layer" of Figure 6
/// (512 parallel MACs).
pub fn tir() -> Model {
    ModelBuilder::new("tir", 512)
        .merge(MergeOp::ElementWise(ElementWiseOp::Mul))
        .dense(512, 512, Activation::Relu)
        .dense(512, 256, Activation::Relu)
        .dense(256, 2, Activation::Identity)
        .build()
}

/// Text Question-and-Answer reranking (TextQA): rerank short text pairs for
/// a question (TREC QA).
///
/// Feature: 0.8 KB = 200 f32. Structure: element-wise product merge and a
/// single 200×200 FC layer whose mean output is the relevance score.
pub fn textqa() -> Model {
    ModelBuilder::new("textqa", 200)
        .merge(MergeOp::ElementWise(ElementWiseOp::Mul))
        .dense(200, 200, Activation::Identity)
        .build()
}

/// The Query Comparison Network (QCN) used by the similarity-based query
/// cache (§4.6): "a QCN whose structure is similar to the SCN". We reuse the
/// application's SCN architecture, independently seeded, operating on pairs
/// of *query* feature vectors.
pub fn qcn_for(model: &Model) -> Model {
    by_name(model.name()).unwrap_or_else(|| model.clone())
}

/// Paper-reported characteristics for one Table 1 row, for comparison
/// against the reconstructed models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Application name.
    pub name: &'static str,
    /// Feature vector size in KB.
    pub feature_kb: f64,
    /// Convolutional layer count.
    pub conv_layers: usize,
    /// Fully-connected layer count.
    pub fc_layers: usize,
    /// Element-wise layer count.
    pub element_wise_layers: usize,
    /// Total FLOPs per comparison (millions).
    pub mflops: f64,
    /// Total weight size in MB.
    pub weight_mb: f64,
}

/// The five rows of Table 1 as published.
pub fn paper_table1() -> [PaperRow; 5] {
    [
        PaperRow {
            name: "reid",
            feature_kb: 44.0,
            conv_layers: 2,
            fc_layers: 2,
            element_wise_layers: 1,
            mflops: 9.8,
            weight_mb: 10.7,
        },
        PaperRow {
            name: "mir",
            feature_kb: 2.0,
            conv_layers: 0,
            fc_layers: 3,
            element_wise_layers: 0,
            mflops: 1.05,
            weight_mb: 2.0,
        },
        PaperRow {
            name: "estp",
            feature_kb: 16.0,
            conv_layers: 0,
            fc_layers: 3,
            element_wise_layers: 0,
            mflops: 4.72,
            weight_mb: 9.0,
        },
        PaperRow {
            name: "tir",
            feature_kb: 2.0,
            conv_layers: 0,
            fc_layers: 3,
            element_wise_layers: 1,
            mflops: 0.79,
            weight_mb: 1.5,
        },
        PaperRow {
            name: "textqa",
            feature_kb: 0.8,
            conv_layers: 0,
            fc_layers: 1,
            element_wise_layers: 1,
            mflops: 0.08,
            weight_mb: 0.16,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    /// Relative deviation allowed between a reconstructed model and the
    /// paper's published FLOP / weight totals.
    const TOLERANCE: f64 = 0.30;

    #[test]
    fn feature_sizes_match_table1_exactly() {
        for row in paper_table1() {
            let m = by_name(row.name).unwrap();
            // Table 1 reports KB with one significant digit for TextQA
            // (0.8 KB = 800 B); allow a 3% rounding band.
            let kb = m.feature_bytes() as f64 / 1024.0;
            let dev = (kb - row.feature_kb).abs() / row.feature_kb;
            assert!(
                dev < 0.03,
                "{}: {kb} KB vs paper {} KB",
                row.name,
                row.feature_kb
            );
        }
    }

    #[test]
    fn layer_counts_match_table1_exactly() {
        for row in paper_table1() {
            let m = by_name(row.name).unwrap();
            assert_eq!(m.conv_layer_count(), row.conv_layers, "{} convs", row.name);
            assert_eq!(m.fc_layer_count(), row.fc_layers, "{} fcs", row.name);
            assert_eq!(
                m.element_wise_layer_count(),
                row.element_wise_layers,
                "{} element-wise",
                row.name
            );
        }
    }

    #[test]
    fn flops_and_weights_within_tolerance() {
        for row in paper_table1() {
            let m = by_name(row.name).unwrap();
            let mflops = m.total_flops() as f64 / 1e6;
            let weight_mb = m.weight_bytes() as f64 / MB;
            let flop_dev = (mflops - row.mflops).abs() / row.mflops;
            let weight_dev = (weight_mb - row.weight_mb).abs() / row.weight_mb;
            assert!(
                flop_dev < TOLERANCE,
                "{}: {mflops:.3} MFLOPs vs paper {} ({:.0}% off)",
                row.name,
                row.mflops,
                flop_dev * 100.0
            );
            assert!(
                weight_dev < TOLERANCE,
                "{}: {weight_mb:.3} MB weights vs paper {} ({:.0}% off)",
                row.name,
                row.weight_mb,
                weight_dev * 100.0
            );
        }
    }

    #[test]
    fn tir_matches_paper_exactly() {
        // The paper names TIR's layers explicitly; verify exact FLOPs:
        // 512 (dot) + 2*(512*512 + 512*256 + 256*2) = 787,456.
        let m = tir();
        assert_eq!(m.total_flops(), 512 + 2 * (512 * 512 + 512 * 256 + 256 * 2));
    }

    #[test]
    fn largest_fc_parallelism_is_512() {
        let max_fc = all()
            .iter()
            .flat_map(|m| m.layer_shapes())
            .filter(|s| s.is_dense())
            .map(|s| s.intrinsic_parallelism())
            .max()
            .unwrap();
        assert_eq!(max_fc, 512, "Figure 6: FC saturates at 512 PEs");
    }

    #[test]
    fn largest_conv_parallelism_is_576() {
        let max_conv = all()
            .iter()
            .flat_map(|m| m.layer_shapes())
            .filter(|s| s.is_conv())
            .map(|s| s.intrinsic_parallelism())
            .max()
            .unwrap();
        // 576 <= 1024: "no performance gain beyond 1024 PEs" for conv.
        assert_eq!(max_conv, 576);
    }

    #[test]
    fn by_name_covers_all_and_rejects_unknown() {
        for m in all() {
            assert!(by_name(m.name()).is_some());
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn zoo_models_run_end_to_end() {
        for m in all() {
            let m = m.seeded(99);
            let q = m.random_feature(1);
            let d = m.random_feature(2);
            let s = m.similarity(&q, &d).unwrap();
            assert!(s.is_finite(), "{} produced non-finite score", m.name());
        }
    }

    #[test]
    fn qcn_matches_scn_architecture() {
        let scn = tir();
        let qcn = qcn_for(&scn);
        assert_eq!(qcn.feature_len(), scn.feature_len());
        assert_eq!(qcn.total_flops(), scn.total_flops());
    }
}
