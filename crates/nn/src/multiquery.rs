//! Multi-query scoring: one decoded item, many queries, one weight pass.
//!
//! The in-storage scan is query-independent on its database side — the
//! flash pages it walks and the features it decodes are the same for
//! every concurrently pending query. A [`MultiQueryScorer`] exploits
//! that: it is built once per scan for a *batch* of query feature
//! vectors and scores each decoded item against all of them, streaming
//! every dense weight row **once per item** instead of once per
//! (item, query) pair.
//!
//! Queries are packed lane-transposed into blocks of eight so the fused
//! dense kernel can keep eight independent accumulator sets live while
//! reusing each weight row from L1. A partial final block is either
//! padded (replicating the last query; pad lanes are computed and
//! discarded) or routed through the allocation-free single-query
//! scratch path, whichever wastes less work. Convolutional models take
//! the scratch path for every query — they still share the batch's
//! single decode pass.
//!
//! Every lane replays the single-query kernel's exact f32 operation
//! order, so batch scores are bit-identical to
//! [`Model::similarity_scratch`] (and therefore to
//! [`Model::similarity`]).

use crate::kernels::{dense_into_multi, QUERY_LANES};
use crate::layer::{LayerShape, MergeOp};
use crate::scratch::InferenceScratch;
use crate::{ElementWiseOp, Model, NnError, Result, Tensor};

/// A partial final block with this many queries or fewer runs through
/// the per-query scratch path; with more, it is padded to a full fused
/// block. Padding costs eight lanes of fused compute regardless of how
/// many are live; the scratch path costs one full weight stream per
/// query — the crossover sits at a small remainder.
const PAD_THRESHOLD: usize = 3;

/// Scores one decoded database feature against a fixed batch of
/// queries. One scorer per scan worker; not shared across threads.
///
/// # Example
///
/// ```
/// use deepstore_nn::{zoo, MultiQueryScorer};
///
/// let model = zoo::tir().seeded(1);
/// let queries: Vec<_> = (0..3).map(|i| model.random_feature(i)).collect();
/// let mut scorer = MultiQueryScorer::new(&model, &queries).unwrap();
/// let item = model.random_feature(99);
/// let mut scores = Vec::new();
/// scorer.score_into(&model, item.data(), &mut scores).unwrap();
/// for (q, s) in queries.iter().zip(&scores) {
///     assert_eq!(s.to_bits(), model.similarity(q, &item).unwrap().to_bits());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MultiQueryScorer {
    nq: usize,
    feature_len: usize,
    /// Lane-transposed query blocks, `feature_len * QUERY_LANES` each.
    /// The final block may carry pad lanes replicating the last query.
    fused_qt: Vec<Vec<f32>>,
    /// Live (non-pad) lanes of the final fused block.
    last_block_lanes: usize,
    /// Queries scored via the single-query scratch path (conv models,
    /// or a small partial final block), in batch order after the fused
    /// ones.
    tail: Vec<Tensor>,
    /// Lane-transposed merge buffer for the fused path. Sized like the
    /// activation arenas because the buffers rotate through the layer
    /// stack.
    merge_t: Vec<f32>,
    /// Ping-pong activation arenas for the fused path.
    ping: Vec<f32>,
    pong: Vec<f32>,
    /// Scratch for the per-query tail path.
    scratch: InferenceScratch,
}

impl MultiQueryScorer {
    /// Builds a scorer for `queries` against `model`. The query vectors
    /// are captured (transposed or cloned) at construction: the scorer
    /// is self-contained for the duration of a scan.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if any query's length differs
    /// from the model's feature length, or if `queries` is empty.
    pub fn new(model: &Model, queries: &[Tensor]) -> Result<Self> {
        let flen = model.feature_len();
        if queries.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: "at least one query".into(),
                found: "empty batch".into(),
            });
        }
        for q in queries {
            if q.len() != flen {
                return Err(NnError::ShapeMismatch {
                    expected: format!("[{flen}]"),
                    found: format!("[{}]", q.len()),
                });
            }
        }

        let fusable = model
            .layers()
            .iter()
            .all(|l| !matches!(l.shape, LayerShape::Conv2d { .. }));
        let full_blocks = queries.len() / QUERY_LANES;
        let remainder = queries.len() % QUERY_LANES;
        let fused_count = if !fusable {
            0
        } else if remainder > PAD_THRESHOLD {
            queries.len()
        } else {
            full_blocks * QUERY_LANES
        };

        let mut fused_qt = Vec::new();
        let mut last_block_lanes = QUERY_LANES;
        for chunk in queries[..fused_count].chunks(QUERY_LANES) {
            let mut qt = vec![0.0f32; flen * QUERY_LANES];
            for (l, q) in chunk.iter().enumerate() {
                for (k, &v) in q.data().iter().enumerate() {
                    qt[k * QUERY_LANES + l] = v;
                }
            }
            // Pad lanes replicate the last live query so they traverse
            // the same numeric range as a real lane (no zero-input
            // special cases); their scores are discarded.
            let last = chunk.last().expect("chunks are non-empty");
            for l in chunk.len()..QUERY_LANES {
                for (k, &v) in last.data().iter().enumerate() {
                    qt[k * QUERY_LANES + l] = v;
                }
            }
            last_block_lanes = chunk.len();
            fused_qt.push(qt);
        }

        let merged = match model.merge() {
            MergeOp::Concat => flen * 2,
            MergeOp::ElementWise(_) => flen,
        };
        let width = model
            .layers()
            .iter()
            .map(|l| l.shape.output_len())
            .fold(merged, usize::max);

        Ok(MultiQueryScorer {
            nq: queries.len(),
            feature_len: flen,
            fused_qt,
            last_block_lanes,
            tail: queries[fused_count..].to_vec(),
            merge_t: Vec::with_capacity(width * QUERY_LANES),
            ping: Vec::with_capacity(width * QUERY_LANES),
            pong: Vec::with_capacity(width * QUERY_LANES),
            scratch: InferenceScratch::for_model(model),
        })
    }

    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.nq
    }

    /// Scores `item` against every query of the batch, refilling
    /// `scores` in batch order. `model` must be the model the scorer
    /// was built for. After the first call, the scorer performs no
    /// heap allocations (give `scores` capacity for
    /// [`num_queries`](Self::num_queries) entries).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::similarity_scratch`].
    pub fn score_into(&mut self, model: &Model, item: &[f32], scores: &mut Vec<f32>) -> Result<()> {
        if item.len() != self.feature_len || model.feature_len() != self.feature_len {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}]", self.feature_len),
                found: format!("[{}]", item.len()),
            });
        }
        scores.clear();
        for (b, qt) in self.fused_qt.iter().enumerate() {
            let live = if b + 1 == self.fused_qt.len() {
                self.last_block_lanes
            } else {
                QUERY_LANES
            };
            fused_block(
                model,
                qt,
                item,
                &mut self.merge_t,
                &mut self.ping,
                &mut self.pong,
                live,
                scores,
            )?;
        }
        for q in &self.tail {
            scores.push(model.similarity_scratch(q, item, &mut self.scratch)?);
        }
        Ok(())
    }
}

/// Runs the fused pipeline for one lane-transposed query block, pushing
/// the `live` lanes' scores. Mirrors `Model::similarity_scratch` stage
/// for stage; each lane's operation order is identical to the
/// single-query path, which is what keeps the two bit-identical.
#[allow(clippy::too_many_arguments)]
fn fused_block(
    model: &Model,
    qt: &[f32],
    item: &[f32],
    merge_t: &mut Vec<f32>,
    ping: &mut Vec<f32>,
    pong: &mut Vec<f32>,
    live: usize,
    scores: &mut Vec<f32>,
) -> Result<()> {
    const L: usize = QUERY_LANES;
    // Merge, lane-wise: one scalar op per lane, as in the scratch path.
    merge_t.clear();
    match model.merge() {
        MergeOp::Concat => {
            merge_t.extend_from_slice(qt);
            for &v in item {
                merge_t.extend(std::iter::repeat_n(v, L));
            }
        }
        MergeOp::ElementWise(op) => {
            for (k, &v) in item.iter().enumerate() {
                let lanes = &qt[k * L..(k + 1) * L];
                match op {
                    ElementWiseOp::Add => merge_t.extend(lanes.iter().map(|q| q + v)),
                    ElementWiseOp::Sub => merge_t.extend(lanes.iter().map(|q| q - v)),
                    ElementWiseOp::Mul => merge_t.extend(lanes.iter().map(|q| q * v)),
                }
            }
        }
    }

    // Layer stack. The three buffers rotate: `src` always holds the
    // current activations, `dst` receives the next layer's output, and
    // the rotation retires the oldest buffer back into circulation (its
    // contents are dead once the following layer has consumed them).
    let mut src: &mut Vec<f32> = merge_t;
    let mut dst: &mut Vec<f32> = ping;
    let mut spare: &mut Vec<f32> = pong;
    for layer in model.layers() {
        match layer.shape {
            LayerShape::Dense { in_features, .. } => {
                if src.len() != in_features * L {
                    return Err(NnError::ShapeMismatch {
                        expected: format!("[{in_features}] per lane"),
                        found: format!("[{}] per lane", src.len() / L),
                    });
                }
                let (w, b) = match (&layer.weights, &layer.bias) {
                    (Some(w), Some(b)) => (w, b),
                    _ => {
                        return Err(NnError::UninitializedWeights {
                            layer: layer.name.clone(),
                        })
                    }
                };
                dense_into_multi(w.data(), b.data(), src, dst);
            }
            LayerShape::ElementWise { .. } => {
                dst.clear();
                dst.extend_from_slice(src);
            }
            LayerShape::Conv2d { .. } => unreachable!("conv models take the scratch path"),
        }
        layer.activation.apply_slice(dst);
        std::mem::swap(&mut src, &mut dst);
        std::mem::swap(&mut dst, &mut spare);
    }

    // Head reduction per lane, in the scratch path's order.
    let out_t: &[f32] = src;
    let rows = out_t.len() / L;
    for l in 0..live {
        scores.push(match rows {
            0 => 0.0,
            1 | 2 => out_t[l],
            _ => (0..rows).map(|j| out_t[j * L + l]).sum::<f32>() / rows as f32,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn batch_matches_single(model: &Model, nq: usize) {
        let queries: Vec<Tensor> = (0..nq as u64).map(|i| model.random_feature(i)).collect();
        let mut scorer = MultiQueryScorer::new(model, &queries).unwrap();
        let mut scores = Vec::new();
        for seed in 100..104u64 {
            let item = model.random_feature(seed);
            scorer.score_into(model, item.data(), &mut scores).unwrap();
            assert_eq!(scores.len(), nq);
            for (i, q) in queries.iter().enumerate() {
                let reference = model.similarity(q, &item).unwrap();
                assert_eq!(
                    scores[i].to_bits(),
                    reference.to_bits(),
                    "{} query {i}/{nq}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn fused_scores_are_bit_identical_across_batch_widths() {
        // 1..=2 tail-only, 3 tail at the threshold, 7 padded partial
        // block, 8 exact, 9 and 17 full block(s) + small tail, 12 full
        // block + padded remainder.
        for m in [
            zoo::tir().seeded(3),
            zoo::textqa().seeded(4),
            zoo::mir().seeded(5),
        ] {
            for nq in [1, 2, 3, 7, 8, 9, 12, 17] {
                batch_matches_single(&m, nq);
            }
        }
    }

    #[test]
    fn conv_models_fall_back_per_query() {
        let m = zoo::reid().seeded(6);
        batch_matches_single(&m, 5);
    }

    #[test]
    fn empty_batch_is_rejected() {
        let m = zoo::tir().seeded(1);
        assert!(MultiQueryScorer::new(&m, &[]).is_err());
    }

    #[test]
    fn wrong_lengths_are_rejected() {
        let m = zoo::tir().seeded(1);
        let short = Tensor::from_slice(&[0.0; 3]);
        assert!(MultiQueryScorer::new(&m, &[short]).is_err());
        let q = m.random_feature(1);
        let mut scorer = MultiQueryScorer::new(&m, &[q]).unwrap();
        let mut scores = Vec::new();
        assert!(scorer.score_into(&m, &[0.0; 3], &mut scores).is_err());
    }

    #[test]
    fn score_into_is_allocation_free_after_warmup() {
        // Buffer pointers are stable across calls once warmed.
        let m = zoo::tir().seeded(2);
        let queries: Vec<Tensor> = (0..8).map(|i| m.random_feature(i)).collect();
        let mut scorer = MultiQueryScorer::new(&m, &queries).unwrap();
        let mut scores = Vec::with_capacity(8);
        let item = m.random_feature(50);
        scorer.score_into(&m, item.data(), &mut scores).unwrap();
        let (p1, p2, p3) = (
            scorer.merge_t.as_ptr(),
            scorer.ping.as_ptr(),
            scorer.pong.as_ptr(),
        );
        scorer.score_into(&m, item.data(), &mut scores).unwrap();
        assert_eq!(p1, scorer.merge_t.as_ptr());
        assert_eq!(p2, scorer.ping.as_ptr());
        assert_eq!(p3, scorer.pong.as_ptr());
    }

    #[test]
    fn unseeded_model_errors() {
        let m = zoo::tir();
        let q = m.random_feature(1);
        let mut scorer = MultiQueryScorer::new(&m, &[q]).unwrap();
        let mut scores = Vec::new();
        let item = m.random_feature(2);
        assert!(matches!(
            scorer.score_into(&m, item.data(), &mut scores),
            Err(NnError::UninitializedWeights { .. })
        ));
    }
}
