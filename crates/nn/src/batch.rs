//! Batched inference.
//!
//! The GPU+SSD baseline scores *batches* of database feature vectors per
//! kernel launch (§3: "a batch of database feature vectors are compared
//! against an intelligent query on a GPU at the same time"). This module
//! provides that execution style for the functional layer: a dense
//! matrix-matrix path and a batched similarity entry point that is
//! bit-for-bit consistent with the per-item path (the scores must agree,
//! because the paper's in-storage and GPU systems compute the same SCN).

use crate::layer::{LayerShape, MergeOp};
use crate::{Model, NnError, Result, Tensor};

/// A batch of feature vectors stored row-major: `rows` vectors of length
/// `dim` each.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl Batch {
    /// Stacks feature vectors into a batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the vectors differ in length
    /// or the batch is empty.
    pub fn from_rows(rows: &[Tensor]) -> Result<Batch> {
        let first = rows.first().ok_or(NnError::ShapeMismatch {
            expected: "at least one row".into(),
            found: "empty batch".into(),
        })?;
        let dim = first.len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            if r.len() != dim {
                return Err(NnError::ShapeMismatch {
                    expected: format!("[{dim}]"),
                    found: format!("{:?}", r.shape()),
                });
            }
            data.extend_from_slice(r.data());
        }
        Ok(Batch {
            rows: rows.len(),
            dim,
            data,
        })
    }

    /// Batch size.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Per-row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Dense layer applied to every row: `Y = X W^T + b`, where `W` is
    /// `[out, in]`. A blocked triple loop — the "GEMM" of the functional
    /// simulator.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on dimension mismatch.
    pub fn dense(&self, w: &Tensor, b: &Tensor) -> Result<Batch> {
        if w.shape().len() != 2 || w.shape()[1] != self.dim {
            return Err(NnError::ShapeMismatch {
                expected: format!("weights [out, {}]", self.dim),
                found: format!("{:?}", w.shape()),
            });
        }
        let out = w.shape()[0];
        if b.len() != out {
            return Err(NnError::ShapeMismatch {
                expected: format!("bias [{out}]"),
                found: format!("{:?}", b.shape()),
            });
        }
        let mut data = Vec::with_capacity(self.rows * out);
        let mut row_out = Vec::with_capacity(out);
        for r in 0..self.rows {
            // Shares the unrolled kernel with Tensor::dense so batched and
            // per-row results stay bit-identical.
            crate::kernels::dense_into(w.data(), b.data(), self.row(r), &mut row_out);
            data.extend_from_slice(&row_out);
        }
        Ok(Batch {
            rows: self.rows,
            dim: out,
            data,
        })
    }
}

impl Model {
    /// Scores a whole batch of items against one query with batched
    /// layer execution where possible (dense stacks), falling back to the
    /// per-item path for convolutional models. The results are identical
    /// to [`Model::similarity`] on each item.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::similarity`].
    pub fn similarity_batched(&self, query: &Tensor, items: &[Tensor]) -> Result<Vec<f32>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // Convolutional models keep the per-item path (ReId); dense-only
        // models run as stacked GEMMs.
        let dense_only = self
            .layers()
            .iter()
            .all(|l| matches!(l.shape, LayerShape::Dense { .. }));
        if !dense_only {
            return self.similarity_batch(query, items);
        }
        // Merge every item with the query.
        let merged: Result<Vec<Tensor>> = items
            .iter()
            .map(|item| {
                if item.len() != self.feature_len() || query.len() != self.feature_len() {
                    return Err(NnError::ShapeMismatch {
                        expected: format!("[{}]", self.feature_len()),
                        found: format!("{:?}", item.shape()),
                    });
                }
                Ok(match self.merge() {
                    MergeOp::Concat => query.concat(item),
                    MergeOp::ElementWise(op) => match op {
                        crate::ElementWiseOp::Add => query.add(item)?,
                        crate::ElementWiseOp::Sub => query.sub(item)?,
                        crate::ElementWiseOp::Mul => query.mul(item)?,
                    },
                })
            })
            .collect();
        let mut batch = Batch::from_rows(&merged?)?;
        for layer in self.layers() {
            let (w, b) = match (&layer.weights, &layer.bias) {
                (Some(w), Some(b)) => (w, b),
                _ => {
                    return Err(NnError::UninitializedWeights {
                        layer: layer.name.clone(),
                    })
                }
            };
            batch = batch.dense(w, b)?;
            // Activation, row-wise.
            for i in 0..batch.rows {
                let start = i * batch.dim;
                let row = Tensor::from_slice(&batch.data[start..start + batch.dim]);
                let activated = layer.activation.apply(row);
                batch.data[start..start + batch.dim].copy_from_slice(activated.data());
            }
        }
        // Reduce each row exactly as `similarity` reduces the head.
        Ok((0..batch.rows)
            .map(|i| {
                let row = batch.row(i);
                match row.len() {
                    0 => 0.0,
                    1 | 2 => row[0],
                    _ => row.iter().sum::<f32>() / row.len() as f32,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn batch_construction_checks_shapes() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let batch = Batch::from_rows(&[a, b]).unwrap();
        assert_eq!(batch.rows(), 2);
        assert_eq!(batch.dim(), 2);
        assert_eq!(batch.row(1), &[3.0, 4.0]);
        let odd = Tensor::from_slice(&[1.0]);
        assert!(Batch::from_rows(&[Tensor::from_slice(&[1.0, 2.0]), odd]).is_err());
        assert!(Batch::from_rows(&[]).is_err());
    }

    #[test]
    fn batched_dense_matches_per_row_dense() {
        let w = Tensor::random(vec![3, 4], 1.0, 1);
        let b = Tensor::random(vec![3], 1.0, 2);
        let rows: Vec<Tensor> = (0..5)
            .map(|i| Tensor::random(vec![4], 1.0, 10 + i))
            .collect();
        let batch = Batch::from_rows(&rows).unwrap().dense(&w, &b).unwrap();
        for (i, r) in rows.iter().enumerate() {
            let single = r.dense(&w, &b).unwrap();
            assert_eq!(batch.row(i), single.data(), "row {i}");
        }
    }

    #[test]
    fn batched_similarity_matches_per_item_for_dense_models() {
        for name in ["mir", "estp", "tir", "textqa"] {
            let m = zoo::by_name(name).unwrap().seeded(5);
            let q = m.random_feature(0);
            let items: Vec<Tensor> = (1..9).map(|i| m.random_feature(i)).collect();
            let batched = m.similarity_batched(&q, &items).unwrap();
            let single = m.similarity_batch(&q, &items).unwrap();
            for (i, (a, b)) in batched.iter().zip(&single).enumerate() {
                assert!((a - b).abs() < 1e-4, "{name} item {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn conv_models_fall_back_and_still_agree() {
        let m = zoo::reid().seeded(6);
        let q = m.random_feature(0);
        let items: Vec<Tensor> = (1..3).map(|i| m.random_feature(i)).collect();
        let batched = m.similarity_batched(&q, &items).unwrap();
        let single = m.similarity_batch(&q, &items).unwrap();
        assert_eq!(batched, single);
    }

    #[test]
    fn empty_batch_is_empty() {
        let m = zoo::tir().seeded(1);
        assert!(m
            .similarity_batched(&m.random_feature(0), &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unseeded_batched_model_errors() {
        let m = zoo::tir();
        let q = m.random_feature(0);
        assert!(matches!(
            m.similarity_batched(&q, &[m.random_feature(1)]),
            Err(NnError::UninitializedWeights { .. })
        ));
    }
}
