//! Release-mode smoke check (ignored by default): fused multi-query
//! scoring must beat per-query scoring on throughput for dense models.
//!
//! Run with `cargo test -p deepstore-nn --release -- --ignored`.

use deepstore_nn::{zoo, InferenceScratch, MultiQueryScorer};
use std::time::Instant;

#[test]
#[ignore = "timing smoke test; run with --release -- --ignored"]
fn fused_tir_beats_per_query() {
    let m = zoo::tir().seeded(1);
    let queries: Vec<_> = (0..8u64).map(|i| m.random_feature(i)).collect();
    let items: Vec<_> = (100..228u64).map(|i| m.random_feature(i)).collect();

    let mut scorer = MultiQueryScorer::new(&m, &queries).unwrap();
    let mut scores = Vec::with_capacity(8);
    let mut scratch = InferenceScratch::for_model(&m);
    // Warm up.
    scorer.score_into(&m, items[0].data(), &mut scores).unwrap();
    m.similarity_scratch(&queries[0], items[0].data(), &mut scratch)
        .unwrap();

    let t0 = Instant::now();
    let mut acc = 0.0f32;
    for it in &items {
        scorer.score_into(&m, it.data(), &mut scores).unwrap();
        acc += scores.iter().sum::<f32>();
    }
    let fused = t0.elapsed();

    let t1 = Instant::now();
    for it in &items {
        for q in &queries {
            acc += m.similarity_scratch(q, it.data(), &mut scratch).unwrap();
        }
    }
    let single = t1.elapsed();
    println!(
        "fused {:?} vs per-query {:?} => {:.2}x (acc {acc})",
        fused,
        single,
        single.as_secs_f64() / fused.as_secs_f64()
    );
    assert!(single.as_secs_f64() / fused.as_secs_f64() > 1.5);
}
