//! GPU compute-throughput model.
//!
//! The similarity-comparison networks batch thousands of feature vectors
//! into one GEMM per layer (§3: "batch sizes are taken such that the GPU
//! utilization is nearly at 100%"), so the GPU runs at a substantial but
//! not peak fraction of its fp32 throughput. The paper reports that moving
//! from Pascal to Volta makes the compute-intensive SCN layers 33% faster
//! (§3), which fixes the relative throughput of the two boards.

use serde::{Deserialize, Serialize};

/// One GPU's effective throughput for SCN workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Effective sustained fp32 throughput on batched SCN layers, FLOP/s.
    pub effective_flops: f64,
    /// Host-to-device copy bandwidth (pinned cudaMemcpy), bytes/s.
    pub h2d_bytes_per_sec: f64,
}

impl GpuSpec {
    /// NVIDIA Titan V (Volta): 14.9 TFLOPs peak fp32; SCN layers sustain
    /// slightly over half of peak at the paper's batch sizes.
    pub fn titan_v() -> Self {
        GpuSpec {
            name: "Titan V (Volta)".into(),
            effective_flops: 8.0e12,
            h2d_bytes_per_sec: 12.0e9,
        }
    }

    /// NVIDIA Titan Xp (Pascal): fixed at 33% slower SCN compute than
    /// Volta, matching the paper's measurement (§3).
    pub fn titan_xp() -> Self {
        GpuSpec {
            name: "Titan Xp (Pascal)".into(),
            effective_flops: 8.0e12 / 1.33,
            h2d_bytes_per_sec: 12.0e9,
        }
    }

    /// Seconds to compute `flops` FLOPs.
    pub fn compute_secs(&self, flops: u64) -> f64 {
        flops as f64 / self.effective_flops
    }

    /// Seconds to copy `bytes` host-to-device.
    pub fn h2d_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.h2d_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_is_33_percent_faster_than_pascal() {
        let v = GpuSpec::titan_v();
        let p = GpuSpec::titan_xp();
        let flops = 1_000_000_000_000u64;
        let ratio = p.compute_secs(flops) / v.compute_secs(flops);
        assert!((ratio - 1.33).abs() < 1e-9);
    }

    #[test]
    fn compute_time_scales_with_flops() {
        let v = GpuSpec::titan_v();
        assert!((v.compute_secs(8_000_000_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(v.compute_secs(0), 0.0);
    }

    #[test]
    fn h2d_time_matches_bandwidth() {
        let v = GpuSpec::titan_v();
        assert!((v.h2d_secs(12_000_000_000) - 1.0).abs() < 1e-9);
    }
}
