//! The wimpy embedded-core baseline (§6.2).
//!
//! Conventional in-storage computing runs application logic on the SSD
//! controller's embedded CPUs. The paper evaluates "a high-end 8-core
//! ARM-A57 as wimpy cores inside the SSD controller" and finds them
//! 4.5–22.8× *slower* than the GPU+SSD baseline: matrix-vector similarity
//! kernels on small cores achieve only a few GFLOPs, nowhere near the
//! throughput the scan needs even though the cores enjoy full internal
//! flash bandwidth.

use crate::ScanSpec;
use deepstore_flash::stream::{stripe_pages, ChannelStream};
use deepstore_flash::{SimDuration, SsdConfig};
use serde::{Deserialize, Serialize};

/// Embedded-CPU in-storage baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WimpyCores {
    /// Core count.
    pub cores: usize,
    /// Effective aggregate fp32 throughput on SCN matrix-vector kernels,
    /// FLOP/s. The A57's NEON units are poorly utilized by small
    /// matrix-vector products; 2 GFLOPs/core effective is generous.
    pub effective_flops: f64,
    /// The drive the cores live in.
    pub ssd: SsdConfig,
}

impl WimpyCores {
    /// The paper's 8-core ARM A57 configuration.
    pub fn arm_a57_octa() -> Self {
        WimpyCores {
            cores: 8,
            effective_flops: 16.0e9,
            ssd: SsdConfig::paper_default(),
        }
    }

    /// Full-scan query time: compute on the embedded cores overlapped with
    /// internal flash streaming.
    pub fn query_time(&self, spec: &ScanSpec) -> SimDuration {
        let compute = SimDuration::from_secs_f64(spec.total_flops() as f64 / self.effective_flops);
        let pages = spec
            .total_bytes()
            .div_ceil(self.ssd.geometry.page_bytes as u64);
        let per_channel = stripe_pages(pages, self.ssd.geometry.channels);
        let stream = deepstore_flash::stream::all_channels_stream(&self.ssd, &per_channel);
        compute.max(stream)
    }

    /// Sanity helper: the single-channel stream model for this drive.
    pub fn channel_stream(&self) -> ChannelStream {
        ChannelStream::new(&self.ssd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::GpuSsdSystem;
    use deepstore_nn::zoo;

    const DB: u64 = 25 * (1 << 30);

    #[test]
    fn wimpy_cores_are_compute_bound() {
        let w = WimpyCores::arm_a57_octa();
        let spec = ScanSpec::from_model(&zoo::mir(), DB);
        let t = w.query_time(&spec);
        let compute = spec.total_flops() as f64 / w.effective_flops;
        assert!((t.as_secs_f64() - compute).abs() / compute < 1e-9);
    }

    #[test]
    fn wimpy_is_order_of_magnitude_slower_than_gpu() {
        // Figure 8: wimpy cores are 4.5-22.8x slower than GPU+SSD. Our
        // model lands every app in a 5-100x band.
        let w = WimpyCores::arm_a57_octa();
        for app in ["reid", "mir", "estp", "tir", "textqa"] {
            let model = zoo::by_name(app).unwrap();
            let spec = ScanSpec::from_model(&model, DB);
            let tw = w.query_time(&spec).as_secs_f64();
            let tg = GpuSsdSystem::paper_default(app).query(&spec).total_secs;
            let slowdown = tw / tg;
            assert!(
                (4.0..110.0).contains(&slowdown),
                "{app}: slowdown = {slowdown:.1}"
            );
        }
    }

    #[test]
    fn tiny_scan_is_stream_bound() {
        // With almost no compute, the internal stream becomes the limit.
        let mut w = WimpyCores::arm_a57_octa();
        w.effective_flops = 1e15;
        let spec = ScanSpec {
            feature_bytes: 2048,
            flops_per_cmp: 1,
            macs_per_cmp: 1,
            num_features: 1_000_000,
        };
        let t = w.query_time(&spec);
        assert!(t > SimDuration::ZERO);
    }
}
