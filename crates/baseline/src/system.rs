//! The GPU+SSD baseline system (§3, §6.1).
//!
//! A query scans the whole feature database in batches: each batch is read
//! from the SSD into host memory, copied to the GPU (`cudaMemcpy`), and
//! scored by the similarity network. Batches are prefetched while the GPU
//! computes, so the pipelined total is the maximum of the I/O stream and
//! the transfer+compute stream — but because storage I/O contributes
//! 56–90% of the per-batch time (Figure 2), "prefetching barely improves
//! the performance of the system".

use crate::calibration::Calibration;
use crate::gpu::GpuSpec;
use crate::ScanSpec;
use deepstore_flash::host::HostReadModel;
use deepstore_flash::{SimDuration, SsdConfig};
use serde::{Deserialize, Serialize};

/// Time spent in each phase of a query (the Figure 2 decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Time reading the feature database from the SSD, seconds.
    pub ssd_read_secs: f64,
    /// Host-to-device copy time, seconds.
    pub memcpy_secs: f64,
    /// GPU compute time, seconds.
    pub compute_secs: f64,
    /// End-to-end time with prefetch pipelining, seconds.
    pub total_secs: f64,
}

impl PhaseBreakdown {
    /// Sum of the three phases (the denominator of Figure 2's percentage
    /// bars, which are profiled per-phase).
    pub fn phase_sum_secs(&self) -> f64 {
        self.ssd_read_secs + self.memcpy_secs + self.compute_secs
    }

    /// Percentages (ssd, memcpy, compute) of the phase sum.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let s = self.phase_sum_secs();
        if s == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                100.0 * self.ssd_read_secs / s,
                100.0 * self.memcpy_secs / s,
                100.0 * self.compute_secs / s,
            )
        }
    }
}

/// The GPU+SSD baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSsdSystem {
    /// The GPU doing the similarity comparison.
    pub gpu: GpuSpec,
    /// The host's view of the SSD.
    pub host: HostReadModel,
    /// Per-application calibration.
    pub calibration: Calibration,
}

impl GpuSsdSystem {
    /// Builds the paper's evaluated baseline: Titan V + Intel DC P4500
    /// class SSD, with the calibration for the named application.
    pub fn paper_default(app_name: &str) -> Self {
        let calibration = Calibration::for_app(app_name);
        GpuSsdSystem {
            gpu: GpuSpec::titan_v(),
            host: HostReadModel::new(SsdConfig::paper_default())
                .with_software_overhead(calibration.io_overhead),
            calibration,
        }
    }

    /// Swaps in a different GPU (e.g. Pascal for Figure 2).
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Aggregates `n` SSDs (Figure 10b).
    pub fn with_ssds(mut self, n: usize) -> Self {
        self.host = self.host.with_ssds(n);
        self
    }

    /// Uses a custom SSD configuration (Figure 10a sweeps channel counts).
    pub fn with_ssd_config(mut self, cfg: SsdConfig) -> Self {
        let n = self.host.num_ssds;
        self.host = HostReadModel::new(cfg)
            .with_software_overhead(self.calibration.io_overhead)
            .with_ssds(n);
        self
    }

    /// Full-scan query time decomposition.
    ///
    /// The pipelined total overlaps SSD reads with transfer+compute; the
    /// three phase durations are what a profiler reports for each stream.
    pub fn query(&self, spec: &ScanSpec) -> PhaseBreakdown {
        let bytes = spec.total_bytes();
        let ssd_read = self.host.read_time(bytes).as_secs_f64();
        let memcpy = self.gpu.h2d_secs(bytes);
        let compute = self.gpu.compute_secs(spec.total_flops());
        PhaseBreakdown {
            ssd_read_secs: ssd_read,
            memcpy_secs: memcpy,
            compute_secs: compute,
            total_secs: ssd_read.max(memcpy + compute),
        }
    }

    /// Per-batch breakdown for the Figure 2 batch-size sweep: scanning the
    /// database in batches of `batch` features adds a per-batch dispatch
    /// overhead (kernel launches, queue submissions) that shrinks as the
    /// batch grows.
    pub fn query_batched(&self, spec: &ScanSpec, batch: u64) -> PhaseBreakdown {
        assert!(batch > 0, "batch must be positive");
        let batches = spec.num_features.div_ceil(batch).max(1);
        // Fixed cost per batch: one NVMe round-trip + one kernel dispatch.
        const PER_BATCH_IO_OVERHEAD_S: f64 = 120e-6;
        const PER_BATCH_DISPATCH_S: f64 = 40e-6;
        let base = self.query(spec);
        let ssd = base.ssd_read_secs + batches as f64 * PER_BATCH_IO_OVERHEAD_S;
        let compute = base.compute_secs + batches as f64 * PER_BATCH_DISPATCH_S;
        PhaseBreakdown {
            ssd_read_secs: ssd,
            memcpy_secs: base.memcpy_secs,
            compute_secs: compute,
            total_secs: ssd.max(base.memcpy_secs + compute),
        }
    }

    /// End-to-end query time as a [`SimDuration`].
    pub fn query_time(&self, spec: &ScanSpec) -> SimDuration {
        SimDuration::from_secs_f64(self.query(spec).total_secs)
    }

    /// GPU board energy for one query, joules. The baseline keeps the GPU
    /// pipeline saturated (batches sized for ~100% utilization, §3), so
    /// the board draws its active power for the whole query.
    pub fn query_energy_j(&self, spec: &ScanSpec) -> f64 {
        let t = self.query(spec).total_secs;
        deepstore_energy::gpu::GpuPowerModel::titan_v().energy_j(t, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    const DB: u64 = 25 * (1 << 30);

    fn spec(name: &str) -> ScanSpec {
        ScanSpec::from_model(&zoo::by_name(name).unwrap(), DB)
    }

    #[test]
    fn all_apps_are_io_bound() {
        // Observation 1: storage I/O dominates for every workload.
        for app in ["reid", "mir", "estp", "tir", "textqa"] {
            let sys = GpuSsdSystem::paper_default(app);
            let b = sys.query(&spec(app));
            assert!(
                b.ssd_read_secs > b.memcpy_secs + b.compute_secs,
                "{app} not I/O-bound: {b:?}"
            );
            assert_eq!(b.total_secs, b.ssd_read_secs);
        }
    }

    #[test]
    fn io_share_lands_in_papers_band() {
        // Figure 2: SSD read time is 56-90% of the phase sum.
        for app in ["reid", "mir", "estp", "tir", "textqa"] {
            let sys = GpuSsdSystem::paper_default(app);
            let (io, _, _) = sys.query(&spec(app)).percentages();
            assert!((56.0..=90.0).contains(&io), "{app}: io = {io:.1}%");
        }
    }

    #[test]
    fn volta_speeds_compute_not_total() {
        // §3: Volta's 33% faster compute does not improve the I/O-bound
        // end-to-end time.
        let app = "mir";
        let volta = GpuSsdSystem::paper_default(app);
        let pascal = GpuSsdSystem::paper_default(app).with_gpu(GpuSpec::titan_xp());
        let bv = volta.query(&spec(app));
        let bp = pascal.query(&spec(app));
        assert!(bp.compute_secs > bv.compute_secs * 1.3);
        assert!((bp.total_secs - bv.total_secs).abs() < 1e-9);
    }

    #[test]
    fn batching_overheads_shrink_with_batch_size() {
        let sys = GpuSsdSystem::paper_default("mir");
        let s = spec("mir");
        let small = sys.query_batched(&s, 5_000);
        let large = sys.query_batched(&s, 50_000);
        assert!(small.total_secs > large.total_secs);
        assert!(large.total_secs >= sys.query(&s).total_secs);
    }

    #[test]
    fn multi_ssd_scaling_saturates_at_compute() {
        // Figure 10b: the traditional system "does not scale at the same
        // rate as the number of SSDs" because compute time is constant.
        let sys1 = GpuSsdSystem::paper_default("mir");
        let sys8 = GpuSsdSystem::paper_default("mir").with_ssds(8);
        let s = spec("mir");
        let t1 = sys1.query(&s).total_secs;
        let t8 = sys8.query(&s).total_secs;
        let scaling = t1 / t8;
        assert!(scaling > 1.5 && scaling < 8.0, "scaling = {scaling}");
    }

    #[test]
    fn channel_scaling_saturates_at_external_link() {
        // Figure 10a: beyond 8 channels the host sees no improvement.
        let s = spec("mir");
        let mut cfg8 = SsdConfig::paper_default();
        cfg8.geometry.channels = 8;
        let mut cfg64 = SsdConfig::paper_default();
        cfg64.geometry.channels = 64;
        let t8 = GpuSsdSystem::paper_default("mir")
            .with_ssd_config(cfg8)
            .query(&s)
            .total_secs;
        let t64 = GpuSsdSystem::paper_default("mir")
            .with_ssd_config(cfg64)
            .query(&s)
            .total_secs;
        assert!((t8 - t64).abs() / t8 < 0.05, "t8={t8} t64={t64}");
    }

    #[test]
    fn gpu_energy_is_power_times_time() {
        let sys = GpuSsdSystem::paper_default("tir");
        let s = spec("tir");
        let e = sys.query_energy_j(&s);
        let t = sys.query(&s).total_secs;
        assert!((e - 250.0 * t).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let sys = GpuSsdSystem::paper_default("mir");
        let _ = sys.query_batched(&spec("mir"), 0);
    }

    #[test]
    fn percentage_parts_sum_to_hundred() {
        let sys = GpuSsdSystem::paper_default("estp");
        let (a, b, c) = sys.query(&spec("estp")).percentages();
        assert!((a + b + c - 100.0).abs() < 1e-9);
    }
}
