//! Per-application calibration constants.
//!
//! The paper's baseline numbers are measurements of a real TensorFlow +
//! CUDA + NVMe software stack. A first-principles model cannot recover the
//! filesystem, driver and framework overheads that sit between the 3.2 GB/s
//! device ceiling and the throughput an application actually observes, so
//! we expose them as one multiplier per application — the *I/O software
//! overhead* — fixed once against the published Table 4 / Figure 8 numbers
//! and then held constant across every other experiment (latency sweeps,
//! channel/SSD scaling, energy, query cache).
//!
//! The overheads correlate with feature size in the expected direction:
//! TextQA's 0.8 KB records pay the most per-byte software cost, ReId's
//! 44 KB records the least among the small-record apps.

use serde::{Deserialize, Serialize};

/// Calibration constants for one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Host I/O software-overhead multiplier (≥ 1): effective sequential
    /// read bandwidth = device bandwidth / overhead.
    pub io_overhead: f64,
}

impl Calibration {
    /// Ideal stack: device-speed reads.
    pub fn ideal() -> Self {
        Calibration { io_overhead: 1.0 }
    }

    /// The calibrated constants for one of the five Table 1 applications.
    ///
    /// Unknown names get the ideal calibration (useful for synthetic
    /// workloads).
    pub fn for_app(name: &str) -> Self {
        let io_overhead = match name {
            "reid" => 1.55,
            "mir" => 1.02,
            "estp" => 1.62,
            "tir" => 1.32,
            "textqa" => 2.19,
            _ => 1.0,
        };
        Calibration { io_overhead }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_overheads_at_least_one() {
        for app in ["reid", "mir", "estp", "tir", "textqa", "unknown"] {
            assert!(Calibration::for_app(app).io_overhead >= 1.0, "{app}");
        }
    }

    #[test]
    fn unknown_app_is_ideal() {
        assert_eq!(Calibration::for_app("xyz"), Calibration::ideal());
        assert_eq!(Calibration::default(), Calibration::ideal());
    }

    #[test]
    fn smallest_records_pay_most_overhead() {
        let textqa = Calibration::for_app("textqa").io_overhead;
        let mir = Calibration::for_app("mir").io_overhead;
        assert!(textqa > mir);
    }
}
