//! Baseline systems for the DeepStore reproduction.
//!
//! The paper compares DeepStore against the state-of-the-art *GPU+SSD*
//! system (§3, §6.1): feature databases on an NVMe SSD, batched similarity
//! comparison on a high-end NVIDIA GPU (Titan Xp / Pascal and Titan V /
//! Volta), with batches prefetched to host memory while the GPU computes.
//! A second baseline runs the similarity network on the SSD's *wimpy*
//! embedded cores (8-core ARM A57, §6.2), standing in for conventional
//! in-storage computing.
//!
//! * [`gpu`] — GPU compute-throughput model.
//! * [`system`] — the full GPU+SSD pipeline: SSD read / cudaMemcpy / GPU
//!   compute phases, pipelined totals, batch-size sweeps (Figure 2) and
//!   multi-SSD aggregation (Figure 10b).
//! * [`wimpy`] — the embedded-core baseline.
//! * [`calibration`] — per-application calibration constants that absorb
//!   the host software-stack overheads the paper measured but never
//!   published (see DESIGN.md §3).

pub mod calibration;
pub mod gpu;
pub mod system;
pub mod wimpy;

pub use calibration::Calibration;
pub use gpu::GpuSpec;
pub use system::{GpuSsdSystem, PhaseBreakdown};
pub use wimpy::WimpyCores;

use serde::{Deserialize, Serialize};

/// The parameters of one full-database similarity scan, shared by every
/// baseline and DeepStore itself: how big the features are, how much work
/// one comparison costs, and how many features must be scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanSpec {
    /// Bytes per feature vector.
    pub feature_bytes: usize,
    /// FLOPs per similarity comparison (Table 1).
    pub flops_per_cmp: u64,
    /// Multiply-accumulates per comparison.
    pub macs_per_cmp: u64,
    /// Feature vectors in the database.
    pub num_features: u64,
}

impl ScanSpec {
    /// Builds a scan spec from a similarity model and a database payload
    /// size in bytes (the paper's standard databases hold 25 GB of feature
    /// vectors, §6.1).
    pub fn from_model(model: &deepstore_nn::Model, db_bytes: u64) -> Self {
        let feature_bytes = model.feature_bytes();
        ScanSpec {
            feature_bytes,
            flops_per_cmp: model.total_flops(),
            macs_per_cmp: model.total_macs(),
            num_features: db_bytes / feature_bytes as u64,
        }
    }

    /// Total bytes scanned.
    pub fn total_bytes(&self) -> u64 {
        self.num_features * self.feature_bytes as u64
    }

    /// Total FLOPs for a full scan.
    pub fn total_flops(&self) -> u64 {
        self.num_features * self.flops_per_cmp
    }

    /// Total MACs for a full scan.
    pub fn total_macs(&self) -> u64 {
        self.num_features * self.macs_per_cmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    #[test]
    fn scan_spec_from_model() {
        let m = zoo::tir();
        let s = ScanSpec::from_model(&m, 25 * (1 << 30));
        assert_eq!(s.feature_bytes, 2048);
        assert_eq!(s.num_features, 25 * (1u64 << 30) / 2048);
        assert_eq!(s.total_bytes(), 25 * (1u64 << 30));
        assert_eq!(s.flops_per_cmp, m.total_flops());
        assert_eq!(s.total_flops(), s.num_features * m.total_flops());
        assert_eq!(s.total_macs(), s.num_features * m.total_macs());
    }
}
