//! CLI subcommands.

use crate::args::{ArgError, Flags};
use deepstore_baseline::GpuSsdSystem;
use deepstore_core::accel::scan;
use deepstore_core::config::{AcceleratorLevel, DeepStoreConfig};
use deepstore_core::proto::{Device, HostClient};
use deepstore_core::runtime::Runtime;
use deepstore_core::serve::{serve, QuotaConfig, ServeConfig, TcpClient, TcpTransport};
use deepstore_core::{
    ClusterQueryRequest, DeepStore, DeepStoreCluster, QueryRequest, ScanWorkload,
};
use deepstore_flash::SimDuration;
use deepstore_nn::{zoo, ModelGraph};
use deepstore_workloads::loadgen::{
    plan, run_open_loop, ArrivalProcess, LoadPlanConfig, LoadTarget,
};
use deepstore_workloads::replay::QueryTrace;
use deepstore_workloads::{QueryStream, TraceDistribution, APP_NAMES};
use std::error::Error;
use std::time::Duration;

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage: deepstore-cli <command> [flags]

commands:
  zoo                                     Table 1 model summary
  scan-time  --app <name> [--db-gib N]    timing model at paper scale
  create     --image <path> [--app <name>] [--features N] [--seed S]
             [--parallelism P]            build a persistent drive image:
                                          write the app's database, load its
                                          model, flush and close cleanly
  open       --image <path> [--app <name>] [--k K] [--probe-seed S]
             [--level ssd|channel|chip] [--db N] [--model N]
                                          reopen a drive image in a fresh
                                          process and run a probe query
  query      --app <name> [--features N] [--k K] [--level ssd|channel|chip]
             [--parallelism P] [--batch-file <file>] [--trace <out.json>]
             [--min-coverage F] [--dead-channel C] [--exact]
             [--image <path> [--db N] [--model N]]
                                          functional query on a small drive
  stats      [--app <name>] [--features N] [--k K] [--parallelism P]
             [--addr H:P | --addr-file <file>]
                                          device telemetry after a mixed
                                          workload (single/parallel/batch),
                                          or a live server's device + serve
                                          stats with --addr/--addr-file
  metrics    (--addr H:P | --addr-file <file>)
                                          scrape a running server's
                                          Prometheus exposition page
  dump       (--addr H:P | --addr-file <file>) [--out <file>]
                                          pull the server's flight-recorder
                                          ring as JSON
  trace      [--queries N] [--qps F] [--seed S] --out <file>
                                          generate a Poisson query trace
  replay     --trace <file> [--features N] [--parallelism P]
             [--batch-window-us W]        replay a trace through the runtime
  serve      [--app <name>] [--features N] [--port P] [--addr-file <file>]
             [--duration-ms MS] [--queue-depth D] [--quota-qps F]
             [--quota-burst F] [--batch-window-us W] [--parallelism P]
             [--seed S] [--force-exact] [--image <path>]
             [--slo-p99-us US] [--dump-dir <dir>] [--recorder-capacity N]
                                          serve a store over loopback TCP
  loadgen    (--addr H:P | --addr-file <file>) [--app <name>] [--qps F]
             [--queries N] [--arrivals poisson|fixed] [--connections C]
             [--alpha F] [--dup-rate F] [--k K] [--db N] [--model N]
             [--level ssd|channel|chip] [--seed S]
                                          open-loop load against a server
  cluster    [--drives N] [--replicas R] [--app <name>] [--features N]
             [--k K] [--level ssd|channel|chip] [--seed S]
             [--parallelism P] [--kill-drive D] [--rebalance] [--exact]
                                          scatter-gather a database across
                                          N simulated drives with R-way
                                          replication; optionally kill a
                                          drive, fail over, and rebalance

`--parallelism` sets the scan worker-thread count (0 = one per host
core). It changes host wall-clock time only; results and simulated
latencies are identical at every setting.

`create` builds a single-file drive image at `--image` (the file must
not already exist), populates it with `--features` vectors from the
app's model, registers the model, flushes everything and closes the
image cleanly. `open` reopens that image — in a different process,
typically — reports whether the previous close was clean, and serves a
probe query against the persisted database and model (ids default to 1,
the ids `create` assigns). `query --image`/`serve --image` run those
commands against a persisted image instead of building an in-memory
drive; on a bounded `serve --image` run the image is closed cleanly at
shutdown.
`query --batch-file` reads whitespace-separated probe seeds and submits
them as one batch: the device scores every probe in a single flash pass.
`query --trace` writes the pipeline timeline as Chrome trace-event JSON
(open in chrome://tracing or Perfetto); timestamps are simulated ns, so
the file is byte-identical across runs.
`query --exact` disables the int8 pruning cascade and scores every
feature through the exact f32 path (results are bit-identical either
way; the flag exists for perf comparisons). `serve --force-exact` does
the same server-side for every served query.
`query --dead-channel` injects a whole-channel outage before querying;
features on the dead channel are skipped and results come back degraded
with their coverage fraction. `query --min-coverage` (0..=1) rejects the
batch with an insufficient-coverage error instead of returning partial
top-K when the scan cannot reach the requested fraction.
`stats` drives the same mixed workload over the wire protocol and prints
the device's telemetry snapshot (`getStats`, opcode 0x09), including the
fault path: read retries, recovered reads, remapped/lost pages, retired
blocks and degraded queries. With `--addr`/`--addr-file` it instead
queries a *running* server and also prints the serve layer: admission
counters, stage latency percentiles, and the per-tenant breakdown.
`metrics` scrapes the server's Prometheus text exposition page (serve
counters, stage histograms, per-tenant series) over the wire protocol
(`getMetrics`, opcode 0x0B). `dump` pulls the flight recorder — a ring
of the most recent request summaries with per-stage timings — as JSON
(`getDump`, opcode 0x0C); the server also dumps automatically on error
responses and on p99 SLO breach when `serve --slo-p99-us` is set
(`--dump-dir` writes those dumps to disk, `--recorder-capacity` sizes
the ring).
`replay --batch-window-us` lets the runtime coalesce queries arriving
within the window into shared passes (0 or omitted = serial).
`serve` builds a drive from the app's model, binds a TCP listener
(`--port 0` picks a free port; `--addr-file` writes the bound address)
and serves concurrent clients, coalescing co-pending queries into
shared flash passes. `--duration-ms 0` serves until killed. Admission
control: `--queue-depth` bounds the pending queue (full = typed
Overloaded rejection), `--quota-qps`/`--quota-burst` arm per-tenant
token buckets keyed by the hello client id.
`loadgen` offers an open-loop arrival schedule (latency is measured
from each query's *scheduled* arrival, so queueing under overload
counts) and prints p50/p99/p999 plus rejection counts. `--db`/`--model`
default to 1: the ids `serve` assigns to its first database and model.
`cluster` partitions the app's database across `--drives` simulated
devices with `--replicas`-way replication and answers a probe query by
scatter-gather: one live replica per partition, per-drive top-K merged
deterministically (results are bit-identical to a single-device scan).
`--kill-drive` takes a whole device down before the second query —
with R >= 2 the affected partitions fail over to surviving replicas at
full coverage; with R == 1 the answer degrades honestly and reports
its coverage. `--rebalance` then re-replicates under-replicated
partitions onto healthy drives and reports moved bytes and the
restored replication factor.
";

type CmdResult = Result<(), Box<dyn Error>>;

/// Dispatches a command line.
///
/// # Errors
///
/// Returns a description of any parse or execution failure.
pub fn run(argv: &[String]) -> CmdResult {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| ArgError("no command given".into()))?;
    match cmd.as_str() {
        "zoo" => cmd_zoo(rest),
        "scan-time" => cmd_scan_time(rest),
        "create" => cmd_create(rest),
        "open" => cmd_open(rest),
        "query" => cmd_query(rest),
        "stats" => cmd_stats(rest),
        "metrics" => cmd_metrics(rest),
        "dump" => cmd_dump(rest),
        "trace" => cmd_trace(rest),
        "replay" => cmd_replay(rest),
        "serve" => cmd_serve(rest),
        "loadgen" => cmd_loadgen(rest),
        "cluster" => cmd_cluster(rest),
        other => Err(ArgError(format!("unknown command `{other}`")).into()),
    }
}

fn parse_level(name: &str) -> Result<AcceleratorLevel, ArgError> {
    match name {
        "ssd" => Ok(AcceleratorLevel::Ssd),
        "channel" => Ok(AcceleratorLevel::Channel),
        "chip" => Ok(AcceleratorLevel::Chip),
        other => Err(ArgError(format!(
            "unknown level `{other}` (expected ssd|channel|chip)"
        ))),
    }
}

fn cmd_zoo(args: &[String]) -> CmdResult {
    Flags::parse(args)?.expect_only(&[])?;
    println!(
        "{:<8} {:>10} {:>6} {:>4} {:>4} {:>9} {:>10}",
        "app", "feature_b", "conv", "fc", "ew", "mflops", "weights_mb"
    );
    for m in zoo::all() {
        println!(
            "{:<8} {:>10} {:>6} {:>4} {:>4} {:>9.3} {:>10.3}",
            m.name(),
            m.feature_bytes(),
            m.conv_layer_count(),
            m.fc_layer_count(),
            m.element_wise_layer_count(),
            m.total_flops() as f64 / 1e6,
            m.weight_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
    Ok(())
}

fn cmd_scan_time(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&["app", "db-gib"])?;
    let app_name = flags.required("app")?;
    if !APP_NAMES.contains(&app_name) {
        return Err(ArgError(format!("unknown app `{app_name}`")).into());
    }
    let db_gib: u64 = flags.num_or("db-gib", 25)?;
    let db_bytes = db_gib * (1 << 30);

    let cfg = DeepStoreConfig::paper_default();
    let model = zoo::by_name(app_name).expect("validated above");
    let workload = ScanWorkload::from_model(&model, db_bytes, &cfg);
    let spec = deepstore_baseline::ScanSpec::from_model(&model, db_bytes);
    let gpu = GpuSsdSystem::paper_default(app_name).query(&spec);

    println!(
        "{app_name}: scanning {} features ({db_gib} GiB)",
        spec.num_features
    );
    println!("  gpu+ssd baseline: {:8.3} s", gpu.total_secs);
    for level in AcceleratorLevel::ALL {
        match scan(level, &workload, &cfg) {
            Some(t) => println!(
                "  {:7}-level   : {:8.3} s  ({:5.2}x; compute {}, flash {})",
                level.to_string(),
                t.elapsed.as_secs_f64(),
                gpu.total_secs / t.elapsed.as_secs_f64(),
                t.compute,
                t.flash,
            ),
            None => println!("  {:7}-level   : unsupported", level.to_string()),
        }
    }
    Ok(())
}

fn cmd_create(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&["image", "app", "features", "seed", "parallelism"])?;
    let image = flags.required("image")?;
    let app_name = flags.str_or("app", "textqa");
    let features: u64 = flags.num_or("features", 128)?;
    let seed: u64 = flags.num_or("seed", 42)?;
    let parallelism: usize = flags.num_or("parallelism", 1)?;

    let model = zoo::by_name(app_name)
        .ok_or_else(|| ArgError(format!("unknown app `{app_name}`")))?
        .seeded_metric(seed);
    let mut store = DeepStore::create(
        std::path::Path::new(image),
        DeepStoreConfig::small().with_parallelism(parallelism),
    )?;
    let fs: Vec<_> = (0..features).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&fs)?;
    let mid = store.load_model(&ModelGraph::from_model(&model))?;
    store.flush()?;
    let counts = store.flash_op_counts();
    println!(
        "created image {image}: db {} ({features} `{app_name}` features), model {}",
        db.0, mid.0
    );
    println!(
        "  flash ops  : {} reads, {} programs, {} erases",
        counts.reads, counts.programs, counts.erases
    );
    store.close()?;
    println!("  closed cleanly; reopen with `open --image {image}`");
    Ok(())
}

fn cmd_open(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&["image", "app", "k", "probe-seed", "level", "db", "model"])?;
    let image = flags.required("image")?;
    let app_name = flags.str_or("app", "textqa");
    let k: usize = flags.num_or("k", 5)?;
    let probe_seed: u64 = flags.num_or("probe-seed", 42 ^ 0xBEEF)?;
    let level = parse_level(flags.str_or("level", "channel"))?;
    let db: u64 = flags.num_or("db", 1)?;
    let model_id: u64 = flags.num_or("model", 1)?;

    let model = zoo::by_name(app_name)
        .ok_or_else(|| ArgError(format!("unknown app `{app_name}`")))?
        .seeded_metric(42);
    let mut store = DeepStore::open(std::path::Path::new(image))?;
    let counts = store.flash_op_counts();
    println!(
        "opened image {image} ({} backend, previous close {})",
        store.backend(),
        if store.opened_dirty() {
            "interrupted — recovered last commit"
        } else {
            "clean"
        }
    );
    println!(
        "  flash ops  : {} reads, {} programs, {} erases (resumed)",
        counts.reads, counts.programs, counts.erases
    );
    let req = QueryRequest::new(
        model.random_feature(probe_seed),
        deepstore_core::ModelId(model_id),
        deepstore_core::DbId(db),
    )
    .k(k)
    .level(level);
    let qid = store.query(req)?;
    let r = store.results(qid)?;
    println!(
        "probe {probe_seed}: top-{k} at the {level} level (simulated {}):",
        r.elapsed
    );
    for (rank, hit) in r.top_k.iter().enumerate() {
        println!(
            "  #{rank}: feature {:>5}  score {:>9.4}  ObjectID 0x{:x}",
            hit.feature_index, hit.score, hit.object_id.0
        );
    }
    store.close()?;
    Ok(())
}

fn cmd_query(args: &[String]) -> CmdResult {
    let flags = Flags::parse_with_switches(args, &["exact"])?;
    flags.expect_only(&[
        "app",
        "features",
        "k",
        "level",
        "seed",
        "parallelism",
        "batch-file",
        "trace",
        "min-coverage",
        "dead-channel",
        "exact",
        "image",
        "db",
        "model",
    ])?;
    let exact = flags.switch("exact");
    let app_name = flags.required("app")?;
    let features: u64 = flags.num_or("features", 128)?;
    let k: usize = flags.num_or("k", 5)?;
    let level = parse_level(flags.str_or("level", "channel"))?;
    let seed: u64 = flags.num_or("seed", 42)?;
    let parallelism: usize = flags.num_or("parallelism", 1)?;
    let min_coverage: Option<f64> = match flags.opt("min-coverage") {
        Some(v) => {
            let f: f64 = v
                .parse()
                .map_err(|_| ArgError(format!("flag --min-coverage: cannot parse `{v}`")))?;
            if !(0.0..=1.0).contains(&f) {
                return Err(
                    ArgError(format!("flag --min-coverage: `{v}` is not in [0, 1]")).into(),
                );
            }
            Some(f)
        }
        None => None,
    };

    let model = zoo::by_name(app_name)
        .ok_or_else(|| ArgError(format!("unknown app `{app_name}`")))?
        .seeded_metric(seed);
    // Either reopen a persisted image (db/model ids default to the ones
    // `create` assigns) or build a throwaway in-memory drive.
    let (mut store, db, mid) = match flags.opt("image") {
        Some(image) => {
            let store = DeepStore::open(std::path::Path::new(image))?;
            let db = deepstore_core::DbId(flags.num_or("db", 1)?);
            let mid = deepstore_core::ModelId(flags.num_or("model", 1)?);
            (store, db, mid)
        }
        None => {
            let mut store =
                DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(parallelism));
            let fs: Vec<_> = (0..features).map(|i| model.random_feature(i)).collect();
            let db = store.write_db(&fs)?;
            let mid = store.load_model(&ModelGraph::from_model(&model))?;
            (store, db, mid)
        }
    };
    if flags.opt("trace").is_some() {
        store.enable_tracing();
    }
    if let Some(channel) = flags.opt("dead-channel") {
        let channel: usize = channel
            .parse()
            .map_err(|_| ArgError(format!("flag --dead-channel: cannot parse `{channel}`")))?;
        let channels = store.config().ssd.geometry.channels;
        if channel >= channels {
            return Err(ArgError(format!(
                "flag --dead-channel: channel {channel} out of range (drive has {channels})"
            ))
            .into());
        }
        store.inject_faults(deepstore_flash::fault::FaultPlan::none().dead_channel(channel));
        println!("(injected outage: channel {channel} is dead)");
    }

    // Probe seeds: one ad-hoc probe, or a whole batch from --batch-file.
    let probe_seeds: Vec<u64> = match flags.opt("batch-file") {
        Some(path) => std::fs::read_to_string(path)?
            .split_whitespace()
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| ArgError(format!("bad probe seed `{s}` in batch file")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![seed ^ 0xBEEF],
    };
    if probe_seeds.is_empty() {
        return Err(ArgError("batch file contains no probe seeds".into()).into());
    }

    let requests: Vec<QueryRequest> = probe_seeds
        .iter()
        .map(|&s| {
            let mut req = QueryRequest::new(model.random_feature(s), mid, db)
                .k(k)
                .level(level);
            if let Some(f) = min_coverage {
                req = req.min_coverage(f);
            }
            if exact {
                req = req.exact();
            }
            req
        })
        .collect();
    let source = match flags.opt("image") {
        Some(image) => format!("image {image}"),
        None => format!("{features} features"),
    };
    let ids = store.query_batch(&requests)?;
    for (qid, probe_seed) in ids.iter().zip(&probe_seeds) {
        let r = store.results(*qid)?;
        println!(
            "probe {probe_seed}: top-{k} of {source} at the {level} level (simulated {}):",
            r.elapsed
        );
        if r.degraded {
            println!(
                "  (degraded: scan covered {:.1}% of the database)",
                r.coverage * 100.0
            );
        }
        for (rank, hit) in r.top_k.iter().enumerate() {
            println!(
                "  #{rank}: feature {:>5}  score {:>9.4}  ObjectID 0x{:x}",
                hit.feature_index, hit.score, hit.object_id.0
            );
        }
    }
    if probe_seeds.len() > 1 {
        println!(
            "({} probes scored in one flash pass per shard)",
            probe_seeds.len()
        );
    }
    let skipped = store.unreadable_skipped();
    if skipped > 0 {
        println!("  ({skipped} features skipped: uncorrectable reads)");
    }
    if let Some(path) = flags.opt("trace") {
        let json = store.trace_json().expect("tracing was enabled");
        std::fs::write(path, &json)?;
        println!("wrote pipeline trace to {path} (chrome://tracing)");
    }
    Ok(())
}

fn format_ns(ns: u64) -> String {
    SimDuration::from_nanos(ns).to_string()
}

/// Resolves a server address from `--addr` / `--addr-file`.
fn resolve_addr(flags: &Flags) -> Result<String, Box<dyn Error>> {
    match (flags.opt("addr"), flags.opt("addr-file")) {
        (Some(a), _) => Ok(a.to_string()),
        (None, Some(path)) => Ok(std::fs::read_to_string(path)?.trim().to_string()),
        (None, None) => Err(ArgError("need --addr or --addr-file".into()).into()),
    }
}

fn print_server_stats(s: &deepstore_core::serve::ServerStats) {
    println!("serve layer:");
    println!(
        "  admission  : {} connections, {} frames, {} queries admitted",
        s.connections, s.frames, s.queries_admitted
    );
    println!(
        "  rejected   : {} overloaded, {} over quota, {} malformed frames",
        s.rejected_overloaded, s.rejected_quota, s.malformed_frames
    );
    println!(
        "  coalescing : {} queries shared {} engine passes",
        s.coalesced_queries, s.engine_batches
    );
    if !s.per_tenant.is_empty() {
        println!(
            "  {:<14} {:>9} {:>11} {:>7} {:>7} {:>9}",
            "tenant", "accepted", "overloaded", "quota", "errors", "degraded"
        );
        for t in &s.per_tenant {
            println!(
                "  {:<14} {:>9} {:>11} {:>7} {:>7} {:>9}",
                t.client, t.accepted, t.rejected_overloaded, t.rejected_quota, t.errors, t.degraded
            );
        }
    }
}

fn cmd_stats(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&["app", "features", "k", "parallelism", "addr", "addr-file"])?;
    let app_name = flags.str_or("app", "textqa");
    let features: u64 = flags.num_or("features", 64)?;
    let k: usize = flags.num_or("k", 3)?;
    let parallelism: usize = flags.num_or("parallelism", 1)?;

    // Against a running server: fetch its device + serve-layer stats
    // instead of driving the local synthetic workload.
    if flags.opt("addr").is_some() || flags.opt("addr-file").is_some() {
        let addr = resolve_addr(&flags)?;
        let mut host = HostClient::over(TcpClient::connect(&addr)?);
        host.hello("cli-stats")?;
        let (s, server) = host.stats_full()?;
        println!("device stats from {addr}:");
        print_device_stats(&s);
        match server {
            Some(server) => print_server_stats(&server),
            None => println!("(server returned no serve-layer stats)"),
        }
        return Ok(());
    }

    let model = zoo::by_name(app_name)
        .ok_or_else(|| ArgError(format!("unknown app `{app_name}`")))?
        .seeded_metric(11);
    let mut device = Device::new(DeepStoreConfig::small().with_parallelism(parallelism));
    let mut host = HostClient::new(&mut device);
    let fs: Vec<_> = (0..features).map(|i| model.random_feature(i)).collect();
    let db = host.write_db(&fs)?;
    let mid = host.load_model(&ModelGraph::from_model(&model))?;

    // A mixed workload: one single query, one repeat (query-cache hit
    // at the device's default QC), and one 4-probe batch sharing a
    // flash pass — all over the wire.
    let probe = model.random_feature(1000);
    let qid = host.query(&probe, k, mid, db, AcceleratorLevel::Channel, false)?;
    host.get_results(qid)?;
    let qid = host.query(&probe, k, mid, db, AcceleratorLevel::Channel, false)?;
    host.get_results(qid)?;
    let reqs: Vec<QueryRequest> = (0..4)
        .map(|i| QueryRequest::new(model.random_feature(2000 + i), mid, db).k(k))
        .collect();
    for id in host.query_batch(&reqs)? {
        host.get_results(id)?;
    }

    let s = host.stats()?;
    println!("device stats for `{app_name}` ({features} features, parallelism {parallelism}):");
    print_device_stats(&s);
    if s.queries == 0 {
        println!("  (pipeline counters are zero: built without the `obs` feature)");
    }
    Ok(())
}

fn print_device_stats(s: &deepstore_core::DeviceStats) {
    println!(
        "  queries    : {} in {} batches ({} cache hits, {} misses, {} scan groups)",
        s.queries, s.batches, s.cache_hits, s.cache_misses, s.scan_groups
    );
    println!("  stage totals (simulated):");
    println!("    qc lookup: {}", format_ns(s.stages.qc_lookup_ns));
    println!("    flash    : {}", format_ns(s.stages.flash_ns));
    println!("    compute  : {}", format_ns(s.stages.compute_ns));
    println!("    weights  : {}", format_ns(s.stages.weights_ns));
    println!("    scan     : {}", format_ns(s.stages.scan_ns));
    println!("    total    : {}", format_ns(s.stages.total_ns));
    println!(
        "  flash      : {} page reads, {} programs, {} erases",
        s.flash.page_reads, s.flash.programs, s.flash.erases
    );
    println!(
        "  flash bus  : {} waited across {} transfers",
        format_ns(s.flash.bus_wait_ns),
        s.flash.bus_transfers
    );
    println!(
        "  reliability: {} ecc failures, {} gc runs ({} blocks), {} features skipped",
        s.flash.ecc_failures, s.flash.gc_runs, s.flash.gc_blocks_reclaimed, s.unreadable_skipped
    );
    println!(
        "  cascade    : {} feature decisions pruned, {} rescored",
        s.pruned_features, s.rescored_features
    );
    println!(
        "  fault path : {} read retries ({} stalled), {} reads recovered",
        s.flash.read_retries,
        format_ns(s.flash.read_retry_ns),
        s.flash.reads_recovered
    );
    println!(
        "  recovery   : {} pages remapped, {} blocks retired, {} pages lost, {} degraded queries",
        s.flash.remapped_pages, s.flash.retired_blocks, s.flash.lost_pages, s.degraded_queries
    );
    println!(
        "  registry   : {} counters, {} histograms",
        s.metrics.counters.len(),
        s.metrics.histograms.len()
    );
}

fn cmd_metrics(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&["addr", "addr-file"])?;
    let addr = resolve_addr(&flags)?;
    let mut host = HostClient::over(TcpClient::connect(&addr)?);
    host.hello("cli-metrics")?;
    print!("{}", host.metrics()?);
    Ok(())
}

fn cmd_dump(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&["addr", "addr-file", "out"])?;
    let addr = resolve_addr(&flags)?;
    let mut host = HostClient::over(TcpClient::connect(&addr)?);
    host.hello("cli-dump")?;
    let json = host.dump()?;
    match flags.opt("out") {
        Some(path) => {
            std::fs::write(path, &json)?;
            println!("wrote flight-recorder dump to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&["queries", "qps", "seed", "out"])?;
    let queries: usize = flags.num_or("queries", 100)?;
    let qps: f64 = flags.num_or("qps", 10.0)?;
    let seed: u64 = flags.num_or("seed", 1)?;
    let out = flags.required("out")?;

    let mut stream = QueryStream::new(
        zoo::textqa().feature_len(),
        10_000,
        2_000,
        TraceDistribution::Zipfian { alpha: 0.7 },
        seed,
    );
    let trace = QueryTrace::generate(&mut stream, queries, qps, seed);
    std::fs::write(out, trace.to_bytes())?;
    println!("wrote {queries} queries over {} to {out}", trace.duration());
    Ok(())
}

fn cmd_replay(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&[
        "trace",
        "features",
        "k",
        "level",
        "parallelism",
        "batch-window-us",
    ])?;
    let path = flags.required("trace")?;
    let features: u64 = flags.num_or("features", 128)?;
    let k: usize = flags.num_or("k", 5)?;
    let level = parse_level(flags.str_or("level", "channel"))?;
    let parallelism: usize = flags.num_or("parallelism", 1)?;
    let batch_window_us: u64 = flags.num_or("batch-window-us", 0)?;

    let trace = QueryTrace::from_bytes(&std::fs::read(path)?).map_err(ArgError)?;
    let dim = trace
        .entries
        .first()
        .ok_or_else(|| ArgError("trace is empty".into()))?
        .qfv
        .len();
    let model = zoo::all()
        .into_iter()
        .find(|m| m.feature_len() == dim)
        .ok_or_else(|| ArgError(format!("no zoo model with feature length {dim}")))?
        .seeded(7);

    let mut store = DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(parallelism));
    let fs: Vec<_> = (0..features).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&fs)?;
    let mid = store.load_model(&ModelGraph::from_model(&model))?;
    let mut rt = Runtime::new(store);
    if batch_window_us > 0 {
        rt.set_batch_window(Some(SimDuration::from_micros(batch_window_us)));
    }
    for e in &trace.entries {
        rt.submit_at(
            e.arrival,
            QueryRequest::new(e.qfv.clone(), mid, db).k(k).level(level),
        );
    }
    rt.run_to_completion()?;
    let s = rt.stats()?;
    println!(
        "replayed {} queries ({} offered qps) against model `{}`:",
        s.completed,
        trace.offered_qps,
        model.name()
    );
    if let Some(w) = rt.batch_window() {
        let batched = rt.records().iter().filter(|r| r.batch_size > 1).count();
        println!(
            "  batching   : {w} window, {batched}/{} queries coalesced",
            s.completed
        );
    }
    println!("  cache hits : {}/{}", s.cache_hits, s.completed);
    println!("  throughput : {:.2} qps (simulated)", s.throughput_qps);
    println!(
        "  latency    : mean {}  p50 {}  p95 {}  p99 {}",
        s.mean_latency, s.p50_latency, s.p95_latency, s.p99_latency
    );
    let skipped = rt.store().unreadable_skipped();
    if skipped > 0 {
        println!("  skipped    : {skipped} unreadable features");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CmdResult {
    let flags = Flags::parse_with_switches(args, &["force-exact"])?;
    flags.expect_only(&[
        "app",
        "features",
        "port",
        "addr-file",
        "duration-ms",
        "queue-depth",
        "quota-qps",
        "quota-burst",
        "batch-window-us",
        "parallelism",
        "seed",
        "force-exact",
        "image",
        "slo-p99-us",
        "dump-dir",
        "recorder-capacity",
    ])?;
    let app_name = flags.str_or("app", "textqa");
    let features: u64 = flags.num_or("features", 64)?;
    let port: u16 = flags.num_or("port", 0)?;
    let duration_ms: u64 = flags.num_or("duration-ms", 0)?;
    let queue_depth: usize = flags.num_or("queue-depth", 64)?;
    let quota_qps: f64 = flags.num_or("quota-qps", 0.0)?;
    let quota_burst: f64 = flags.num_or("quota-burst", 0.0)?;
    let batch_window_us: u64 = flags.num_or("batch-window-us", 0)?;
    let parallelism: usize = flags.num_or("parallelism", 1)?;
    let seed: u64 = flags.num_or("seed", 42)?;
    let slo_p99_us: u64 = flags.num_or("slo-p99-us", 0)?;
    let recorder_capacity: usize = flags.num_or(
        "recorder-capacity",
        ServeConfig::default().recorder_capacity,
    )?;

    let model = zoo::by_name(app_name)
        .ok_or_else(|| ArgError(format!("unknown app `{app_name}`")))?
        .seeded_metric(seed);
    // Serve either a persisted image (db/model 1 are the ones `create`
    // assigns) or a freshly-built in-memory drive.
    let (store, db, mid) = match flags.opt("image") {
        Some(image) => (
            DeepStore::open(std::path::Path::new(image))?,
            deepstore_core::DbId(1),
            deepstore_core::ModelId(1),
        ),
        None => {
            let mut store =
                DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(parallelism));
            let fs: Vec<_> = (0..features).map(|i| model.random_feature(i)).collect();
            let db = store.write_db(&fs)?;
            let mid = store.load_model(&ModelGraph::from_model(&model))?;
            (store, db, mid)
        }
    };

    let cfg = ServeConfig {
        queue_depth,
        batch_window: (batch_window_us > 0).then(|| Duration::from_micros(batch_window_us)),
        quota: (quota_qps > 0.0).then(|| QuotaConfig {
            burst: if quota_burst > 0.0 {
                quota_burst
            } else {
                quota_qps.max(1.0)
            },
            refill_per_sec: quota_qps,
        }),
        force_exact: flags.switch("force-exact"),
        slo_p99_us: (slo_p99_us > 0).then_some(slo_p99_us),
        recorder_capacity,
        dump_dir: flags.opt("dump-dir").map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let source = match flags.opt("image") {
        Some(image) => format!("image {image}"),
        None => format!("`{app_name}` ({features} features)"),
    };
    let transport = TcpTransport::bind(&format!("127.0.0.1:{port}"))
        .map_err(|e| ArgError(format!("cannot bind port {port}: {e}")))?;
    let handle = serve(transport, store, cfg);
    println!(
        "serving {source} (db {}, model {}) on {}",
        db.0,
        mid.0,
        handle.endpoint()
    );
    if let Some(path) = flags.opt("addr-file") {
        std::fs::write(path, handle.endpoint())?;
    }
    if duration_ms == 0 {
        println!("(serving until killed; pass --duration-ms to bound)");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_millis(duration_ms));
    let (store, stats) = handle.shutdown();
    if store.is_persistent() {
        store.close()?;
        println!("(image closed cleanly)");
    }
    print_server_stats(&stats);
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    flags.expect_only(&[
        "addr",
        "addr-file",
        "app",
        "qps",
        "queries",
        "arrivals",
        "connections",
        "alpha",
        "dup-rate",
        "k",
        "db",
        "model",
        "level",
        "seed",
    ])?;
    let addr = resolve_addr(&flags)?;
    let app_name = flags.str_or("app", "textqa");
    let qps: f64 = flags.num_or("qps", 100.0)?;
    let queries: usize = flags.num_or("queries", 200)?;
    let arrivals = match flags.str_or("arrivals", "poisson") {
        "poisson" => ArrivalProcess::Poisson,
        "fixed" => ArrivalProcess::Fixed,
        other => {
            return Err(ArgError(format!(
                "unknown arrival process `{other}` (expected poisson|fixed)"
            ))
            .into())
        }
    };
    let connections: usize = flags.num_or("connections", 4)?;
    let alpha: f64 = flags.num_or("alpha", 0.7)?;
    let dup_rate: f64 = flags.num_or("dup-rate", 0.2)?;
    let k: usize = flags.num_or("k", 5)?;
    let db: u64 = flags.num_or("db", 1)?;
    let model_id: u64 = flags.num_or("model", 1)?;
    let level = parse_level(flags.str_or("level", "ssd"))?;
    let seed: u64 = flags.num_or("seed", 42)?;

    let model =
        zoo::by_name(app_name).ok_or_else(|| ArgError(format!("unknown app `{app_name}`")))?;
    let offered = plan(&LoadPlanConfig {
        queries,
        qps,
        arrivals,
        dim: model.feature_len(),
        pool_size: 32,
        clusters: 8,
        distribution: TraceDistribution::Zipfian { alpha },
        duplicate_rate: dup_rate,
        seed,
    });
    let report = run_open_loop(
        || TcpClient::connect(&addr),
        connections,
        &offered,
        LoadTarget {
            model: deepstore_core::ModelId(model_id),
            db: deepstore_core::DbId(db),
            k,
            level,
        },
    )
    .map_err(|e| ArgError(format!("load generation against {addr} failed: {e}")))?;
    println!(
        "offered {} `{app_name}` queries at {:.0} q/s over {connections} connections to {addr}:",
        report.offered, report.offered_qps
    );
    println!(
        "  completed  : {} ({:.0} q/s achieved over {:.2} s)",
        report.completed, report.achieved_qps, report.duration_secs
    );
    println!(
        "  rejected   : {} overloaded, {} over quota, {} errors",
        report.rejected_overloaded, report.rejected_quota, report.errors
    );
    println!(
        "  latency    : mean {:.3} ms  p50 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms  max {:.3} ms",
        report.mean_ms, report.p50_ms, report.p99_ms, report.p999_ms, report.max_ms
    );
    Ok(())
}

fn print_cluster_query(
    cluster: &mut DeepStoreCluster,
    req: ClusterQueryRequest,
    label: &str,
) -> CmdResult {
    let r = cluster.query(req)?;
    let failovers: u32 = r.partitions.iter().map(|p| p.failovers).sum();
    println!(
        "{label}: coverage {:.4}{}, {failovers} failovers, simulated {}",
        r.coverage,
        if r.degraded { " (degraded)" } else { "" },
        r.elapsed
    );
    for (rank, hit) in r.top_k.iter().enumerate() {
        println!(
            "  #{rank}: feature {:>5} (drive {})  score {:>9.4}  ObjectID 0x{:x}",
            hit.global_index, hit.drive, hit.hit.score, hit.hit.object_id.0
        );
    }
    Ok(())
}

fn cmd_cluster(args: &[String]) -> CmdResult {
    let flags = Flags::parse_with_switches(args, &["rebalance", "exact"])?;
    flags.expect_only(&[
        "drives",
        "replicas",
        "app",
        "features",
        "k",
        "level",
        "seed",
        "parallelism",
        "kill-drive",
        "rebalance",
        "exact",
    ])?;
    let drives: usize = flags.num_or("drives", 4)?;
    let replicas: usize = flags.num_or("replicas", 2)?;
    if drives == 0 {
        return Err(ArgError("--drives must be at least 1".into()).into());
    }
    if replicas == 0 || replicas > drives {
        return Err(ArgError(format!(
            "--replicas must be in 1..={drives} (one copy per distinct drive)"
        ))
        .into());
    }
    let app_name = flags.str_or("app", "textqa");
    let features: u64 = flags.num_or("features", 96)?;
    let k: usize = flags.num_or("k", 5)?;
    let level = parse_level(flags.str_or("level", "channel"))?;
    let seed: u64 = flags.num_or("seed", 42)?;
    let parallelism: usize = flags.num_or("parallelism", 1)?;
    let kill: Option<usize> = match flags.opt("kill-drive") {
        None => None,
        Some(v) => {
            let d: usize = v
                .parse()
                .map_err(|_| ArgError(format!("flag --kill-drive: cannot parse `{v}`")))?;
            if d >= drives {
                return Err(ArgError(format!(
                    "--kill-drive {d} is out of range for {drives} drives"
                ))
                .into());
            }
            Some(d)
        }
    };

    let model = zoo::by_name(app_name)
        .ok_or_else(|| ArgError(format!("unknown app `{app_name}`")))?
        .seeded_metric(seed);
    let mut cluster = DeepStoreCluster::with_replication(
        drives,
        replicas,
        DeepStoreConfig::small().with_parallelism(parallelism),
    );
    let fs: Vec<_> = (0..features).map(|i| model.random_feature(i)).collect();
    let db = cluster.write_db(&fs)?;
    let mid = cluster.load_model(&ModelGraph::from_model(&model))?;
    println!(
        "cluster: {features} `{app_name}` features over {drives} drives \
         ({} partitions, {replicas}x replication)",
        cluster.partitions(db)?
    );

    let probe = model.random_feature(seed ^ 0xBEEF);
    let req = ClusterQueryRequest::new(probe.clone(), mid, db)
        .k(k)
        .level(level)
        .exact(flags.switch("exact"));
    print_cluster_query(&mut cluster, req.clone(), "baseline")?;

    if let Some(d) = kill {
        cluster.kill_drive(d);
        println!("killed drive {d} (whole-device outage)");
        print_cluster_query(&mut cluster, req.clone(), "after outage")?;
    }

    if flags.switch("rebalance") {
        let report = cluster.rebalance()?;
        println!(
            "rebalance: {} partitions, {} under-replicated, {} re-replicated, \
             {} dead replicas dropped",
            report.partitions,
            report.under_replicated,
            report.re_replicated,
            report.dropped_replicas
        );
        println!(
            "  moved      : {} bytes drive-to-drive; {} pages remapped, \
             {} lost, {} blocks retired",
            report.moved_bytes, report.pages_remapped, report.pages_lost, report.blocks_retired
        );
        println!(
            "  replication: min {} max {} ({} unrecoverable partitions){}",
            report.min_replication,
            report.max_replication,
            report.unrecoverable,
            if report.fully_replicated(replicas) {
                " — fully replicated"
            } else {
                ""
            }
        );
        print_cluster_query(&mut cluster, req, "after rebalance")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn zoo_and_scan_time_run() {
        run(&argv(&["zoo"])).unwrap();
        run(&argv(&["scan-time", "--app", "mir", "--db-gib", "1"])).unwrap();
    }

    #[test]
    fn query_runs_at_each_supported_level() {
        for level in ["ssd", "channel", "chip"] {
            run(&argv(&[
                "query",
                "--app",
                "textqa",
                "--features",
                "32",
                "--k",
                "3",
                "--level",
                level,
            ]))
            .unwrap();
        }
    }

    #[test]
    fn query_accepts_parallelism_knob() {
        for workers in ["0", "1", "4"] {
            run(&argv(&[
                "query",
                "--app",
                "textqa",
                "--features",
                "32",
                "--k",
                "3",
                "--parallelism",
                workers,
            ]))
            .unwrap();
        }
        assert!(run(&argv(&[
            "query",
            "--app",
            "textqa",
            "--parallelism",
            "lots",
        ]))
        .is_err());
    }

    #[test]
    fn query_batch_file_submits_all_probes() {
        let path = std::env::temp_dir().join("deepstore_cli_test_batch.txt");
        std::fs::write(&path, "100 101\n102\n").unwrap();
        run(&argv(&[
            "query",
            "--app",
            "tir",
            "--features",
            "24",
            "--k",
            "2",
            "--batch-file",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        // Malformed seeds are rejected.
        std::fs::write(&path, "100 nope\n").unwrap();
        assert!(run(&argv(&[
            "query",
            "--app",
            "tir",
            "--features",
            "24",
            "--batch-file",
            path.to_str().unwrap(),
        ]))
        .is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn query_dead_channel_degrades_and_min_coverage_rejects() {
        // A dead channel degrades the answer but the query still runs.
        run(&argv(&[
            "query",
            "--app",
            "textqa",
            "--features",
            "32",
            "--k",
            "3",
            "--dead-channel",
            "0",
        ]))
        .unwrap();
        // Demanding full coverage on a degraded drive fails the batch.
        let err = run(&argv(&[
            "query",
            "--app",
            "textqa",
            "--features",
            "32",
            "--k",
            "3",
            "--dead-channel",
            "0",
            "--min-coverage",
            "0.99",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("insufficient coverage"));
        // A healthy drive satisfies any coverage floor.
        run(&argv(&[
            "query",
            "--app",
            "textqa",
            "--features",
            "32",
            "--min-coverage",
            "1.0",
        ]))
        .unwrap();
        // Bad flag values are rejected.
        assert!(run(&argv(&[
            "query",
            "--app",
            "textqa",
            "--min-coverage",
            "1.5"
        ]))
        .is_err());
        assert!(run(&argv(&[
            "query",
            "--app",
            "textqa",
            "--min-coverage",
            "nope"
        ]))
        .is_err());
        assert!(run(&argv(&["query", "--app", "textqa", "--dead-channel", "64"])).is_err());
    }

    #[test]
    fn stats_command_runs() {
        run(&argv(&["stats", "--features", "32", "--k", "2"])).unwrap();
        run(&argv(&[
            "stats",
            "--app",
            "tir",
            "--features",
            "24",
            "--parallelism",
            "2",
        ]))
        .unwrap();
        assert!(run(&argv(&["stats", "--app", "nope"])).is_err());
    }

    #[test]
    fn query_trace_flag_writes_chrome_json() {
        let path = std::env::temp_dir().join("deepstore_cli_test_query_trace.json");
        let path_s = path.to_str().unwrap();
        run(&argv(&[
            "query",
            "--app",
            "textqa",
            "--features",
            "32",
            "--k",
            "2",
            "--trace",
            path_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let value = serde::parse_value(json.as_bytes()).unwrap();
        let obj = value.as_object().unwrap();
        assert!(obj.iter().any(|(k, _)| k == "traceEvents"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_then_replay_roundtrips() {
        let path = std::env::temp_dir().join("deepstore_cli_test_trace.json");
        let path_s = path.to_str().unwrap();
        run(&argv(&[
            "trace",
            "--queries",
            "12",
            "--qps",
            "50",
            "--out",
            path_s,
        ]))
        .unwrap();
        run(&argv(&["replay", "--trace", path_s, "--features", "32"])).unwrap();
        // With a batching window the replay still completes.
        run(&argv(&[
            "replay",
            "--trace",
            path_s,
            "--features",
            "32",
            "--batch-window-us",
            "500",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn serve_then_loadgen_over_loopback() {
        let addr_file = std::env::temp_dir().join("deepstore_cli_test_serve_addr.txt");
        std::fs::remove_file(&addr_file).ok();
        let addr_s = addr_file.to_str().unwrap().to_string();
        let server_args = argv(&[
            "serve",
            "--app",
            "textqa",
            "--features",
            "32",
            "--port",
            "0",
            "--addr-file",
            &addr_s,
            "--duration-ms",
            "4000",
            "--slo-p99-us",
            "1000000",
        ]);
        let server = std::thread::spawn(move || run(&server_args).map_err(|e| e.to_string()));
        // Wait for the server to publish its bound address.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !addr_file.exists() {
            assert!(
                std::time::Instant::now() < deadline,
                "server never published its address"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        run(&argv(&[
            "loadgen",
            "--addr-file",
            &addr_s,
            "--qps",
            "400",
            "--queries",
            "20",
            "--connections",
            "2",
            "--k",
            "3",
        ]))
        .unwrap();
        // Fixed arrivals against an explicit --addr work too.
        let addr = std::fs::read_to_string(&addr_file).unwrap();
        run(&argv(&[
            "loadgen",
            "--addr",
            addr.trim(),
            "--qps",
            "400",
            "--queries",
            "10",
            "--arrivals",
            "fixed",
        ]))
        .unwrap();
        // Observability against the live server: serve-layer stats,
        // the exposition page, and a flight-recorder dump.
        run(&argv(&["stats", "--addr", addr.trim()])).unwrap();
        run(&argv(&["metrics", "--addr-file", &addr_s])).unwrap();
        let dump_file = std::env::temp_dir().join("deepstore_cli_test_dump.json");
        let dump_s = dump_file.to_str().unwrap().to_string();
        run(&argv(&["dump", "--addr", addr.trim(), "--out", &dump_s])).unwrap();
        let dump = std::fs::read_to_string(&dump_file).unwrap();
        assert!(dump.contains("\"reason\""), "dump missing reason: {dump}");
        std::fs::remove_file(&dump_file).ok();
        server.join().unwrap().unwrap();
        std::fs::remove_file(&addr_file).ok();
    }

    #[test]
    fn cluster_kill_and_rebalance_flow_runs() {
        run(&argv(&[
            "cluster",
            "--drives",
            "3",
            "--replicas",
            "2",
            "--features",
            "48",
            "--k",
            "3",
            "--kill-drive",
            "1",
            "--rebalance",
        ]))
        .unwrap();
        // Exact-path single-drive degenerate cluster still answers.
        run(&argv(&[
            "cluster",
            "--drives",
            "1",
            "--replicas",
            "1",
            "--features",
            "16",
            "--exact",
        ]))
        .unwrap();
    }

    #[test]
    fn cluster_flag_validation() {
        assert!(run(&argv(&["cluster", "--replicas", "9"])).is_err());
        assert!(run(&argv(&["cluster", "--replicas", "0"])).is_err());
        assert!(run(&argv(&["cluster", "--drives", "0"])).is_err());
        assert!(run(&argv(&["cluster", "--kill-drive", "7"])).is_err());
        assert!(run(&argv(&["cluster", "--app", "nope"])).is_err());
        assert!(run(&argv(&["cluster", "--level", "galaxy"])).is_err());
    }

    #[test]
    fn loadgen_flag_validation() {
        assert!(run(&argv(&["loadgen"])).is_err()); // no addr
        assert!(run(&argv(&["metrics"])).is_err()); // no addr
        assert!(run(&argv(&["dump"])).is_err()); // no addr
        assert!(run(&argv(&[
            "loadgen",
            "--addr",
            "127.0.0.1:1",
            "--arrivals",
            "bursty"
        ]))
        .is_err());
        assert!(run(&argv(&["serve", "--app", "nope"])).is_err());
    }

    #[test]
    fn create_open_query_image_roundtrip() {
        let path = std::env::temp_dir().join(format!(
            "deepstore_cli_test_image_{}.img",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let path_s = path.to_str().unwrap().to_string();
        run(&argv(&[
            "create",
            "--image",
            &path_s,
            "--app",
            "textqa",
            "--features",
            "48",
        ]))
        .unwrap();
        // Creating over an existing image is refused.
        assert!(run(&argv(&["create", "--image", &path_s])).is_err());
        // Reopen and probe the persisted database.
        run(&argv(&["open", "--image", &path_s, "--k", "3"])).unwrap();
        // `query --image` serves from the image instead of building a drive.
        run(&argv(&[
            "query", "--image", &path_s, "--app", "textqa", "--k", "2",
        ]))
        .unwrap();
        // Opening a missing image fails cleanly.
        assert!(run(&argv(&["open", "--image", "/nonexistent/img"])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_invocations_error() {
        assert!(run(&argv(&[])).is_err());
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&["scan-time"])).is_err()); // missing --app
        assert!(run(&argv(&["scan-time", "--app", "nope"])).is_err());
        assert!(run(&argv(&["query", "--app", "tir", "--level", "gpu"])).is_err());
        assert!(run(&argv(&["zoo", "--bogus", "1"])).is_err());
    }
}
