//! Minimal `--flag value` argument parsing (no external parser crates).

use std::collections::HashMap;
use std::fmt;

/// A parsing/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs from the argument list.
    ///
    /// # Errors
    ///
    /// Rejects positional tokens and flags missing a value.
    pub fn parse(args: &[String]) -> Result<Flags, ArgError> {
        Self::parse_with_switches(args, &[])
    }

    /// Like [`Flags::parse`], but the listed keys are boolean switches:
    /// they take no value and parse as `"true"` (read them back with
    /// [`Flags::switch`]). Everything else still requires a value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Flags::parse`].
    pub fn parse_with_switches(args: &[String], switches: &[&str]) -> Result<Flags, ArgError> {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("unexpected argument `{tok}`")))?;
            let value = if switches.contains(&key) {
                "true".to_string()
            } else {
                it.next()
                    .ok_or_else(|| ArgError(format!("flag --{key} needs a value")))?
                    .clone()
            };
            if values.insert(key.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{key} given twice")));
            }
        }
        Ok(Flags { values })
    }

    /// Whether a boolean switch (from
    /// [`Flags::parse_with_switches`]) was given.
    pub fn switch(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// A string flag, or its default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map(String::as_str).unwrap_or(default)
    }

    /// The flag's value, if it was given.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Errors when the flag is absent.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// A numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Errors when present but unparsable.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag --{key}: cannot parse `{v}`"))),
        }
    }

    /// Verifies no unknown flags were passed.
    ///
    /// # Errors
    ///
    /// Errors on any flag not in `known`.
    pub fn expect_only(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.values.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&strings(&["--app", "tir", "--k", "5"])).unwrap();
        assert_eq!(f.str_or("app", "x"), "tir");
        assert_eq!(f.num_or("k", 0usize).unwrap(), 5);
        assert_eq!(f.num_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(Flags::parse(&strings(&["oops"])).is_err());
        assert!(Flags::parse(&strings(&["--app"])).is_err());
        assert!(Flags::parse(&strings(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn required_and_unknown_flags() {
        let f = Flags::parse(&strings(&["--app", "tir"])).unwrap();
        assert_eq!(f.required("app").unwrap(), "tir");
        assert!(f.required("k").is_err());
        assert!(f.expect_only(&["app"]).is_ok());
        assert!(f.expect_only(&["other"]).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let f = Flags::parse_with_switches(&strings(&["--exact", "--k", "5"]), &["exact"]).unwrap();
        assert!(f.switch("exact"));
        assert!(!f.switch("other"));
        assert_eq!(f.num_or("k", 0usize).unwrap(), 5);
        // A switch given twice is still a duplicate.
        assert!(Flags::parse_with_switches(&strings(&["--exact", "--exact"]), &["exact"]).is_err());
        // Without the switch list, `--exact` would swallow `--k`.
        assert!(Flags::parse(&strings(&["--exact"])).is_err());
    }

    #[test]
    fn bad_numbers_error() {
        let f = Flags::parse(&strings(&["--k", "five"])).unwrap();
        assert!(f.num_or("k", 0usize).is_err());
    }
}
