//! `deepstore-cli` — command-line front end for the DeepStore simulator.
//!
//! ```text
//! deepstore-cli zoo                              # Table 1 model summary
//! deepstore-cli scan-time --app mir --db-gib 25  # timing model at paper scale
//! deepstore-cli query --app tir --features 256 --k 5 --level channel
//! deepstore-cli trace --queries 200 --qps 5 --out /tmp/trace.json
//! deepstore-cli replay --trace /tmp/trace.json --features 128
//! deepstore-cli serve --app textqa --port 4096 --duration-ms 0
//! deepstore-cli loadgen --addr 127.0.0.1:4096 --qps 500 --queries 1000
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
