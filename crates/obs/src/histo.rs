//! Percentile estimation and Prometheus-format text exposition over
//! [`MetricsSnapshot`] data.
//!
//! The power-of-two-bucket [`Histogram`](crate::Histogram) records
//! cheaply (four atomic RMWs) but only keeps bucket counts, so
//! percentiles are *estimates*: the estimator interpolates linearly
//! inside the bucket that contains the requested rank, then clamps to
//! the exact `[min, max]` the histogram tracks. For SLO checks this
//! errs on the side of the bucket's upper half, never above the true
//! maximum.
//!
//! `render_text` turns a snapshot into the Prometheus text exposition
//! format (`# TYPE` comments, `_bucket{le="..."}` cumulative series,
//! `_sum`/`_count`, plus `_min`/`_max` gauges), deterministically:
//! metrics render in registration order with no timestamps, so equal
//! snapshots yield byte-identical pages.

use crate::metrics::{HistogramSample, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Inclusive value range covered by bucket `i` of a power-of-two
/// histogram: bucket 0 holds exact zeros, bucket `i >= 1` holds
/// `[2^(i-1), 2^i - 1]`.
#[must_use]
pub fn bucket_range(i: u32) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// Estimates the `q`-th percentile (`q` in `[0, 100]`) of a sampled
/// histogram.
///
/// Walks the sparse buckets to the one containing the requested rank
/// and interpolates linearly within it, then clamps to the exact
/// `[min, max]` tracked alongside the buckets. Returns 0 for an empty
/// histogram.
#[must_use]
pub fn percentile(h: &HistogramSample, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 100.0);
    // 1-based rank of the requested observation.
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((q / 100.0 * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut cum = 0u64;
    for &(i, n) in &h.buckets {
        debug_assert!((i as usize) < HISTOGRAM_BUCKETS);
        if cum + n >= rank {
            let (lo, hi) = bucket_range(i);
            // Position of the rank within this bucket, in (0, 1].
            let frac = (rank - cum) as f64 / n as f64;
            let span = (hi - lo) as f64;
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let est = lo + (span * frac) as u64;
            return est.clamp(h.min, h.max);
        }
        cum += n;
    }
    h.max
}

/// Appends `c` if it is valid in a Prometheus metric name, else `_`.
fn sanitize_into(out: &mut String, name: &str) {
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
}

/// A metric name sanitized for the Prometheus exposition format
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); dots and other separators become `_`.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    sanitize_into(&mut out, name);
    out
}

/// Renders one counter in exposition format.
pub fn render_counter(out: &mut String, prefix: &str, name: &str, value: u64) {
    let full = format!("{prefix}{}", sanitize_name(name));
    out.push_str(&format!("# TYPE {full} counter\n{full} {value}\n"));
}

/// Renders one histogram's series lines (cumulative `_bucket`s, `_sum`,
/// `_count`) without any `# TYPE` headers. `full` is the already
/// prefixed/sanitized metric name. Use this to emit several labeled
/// series (e.g. one per tenant) under a single `# TYPE` header —
/// repeating the header per series would be invalid exposition.
pub fn render_histogram_series(out: &mut String, full: &str, labels: &str, h: &HistogramSample) {
    let label = |extra: &str| -> String {
        match (labels.is_empty(), extra.is_empty()) {
            (true, true) => String::new(),
            (true, false) => format!("{{{extra}}}"),
            (false, true) => format!("{{{labels}}}"),
            (false, false) => format!("{{{labels},{extra}}}"),
        }
    };
    let mut cum = 0u64;
    for &(i, n) in &h.buckets {
        cum += n;
        let (_, hi) = bucket_range(i);
        out.push_str(&format!(
            "{full}_bucket{} {cum}\n",
            label(&format!("le=\"{hi}\""))
        ));
    }
    out.push_str(&format!(
        "{full}_bucket{} {}\n",
        label("le=\"+Inf\""),
        h.count
    ));
    out.push_str(&format!("{full}_sum{} {}\n", label(""), h.sum));
    out.push_str(&format!("{full}_count{} {}\n", label(""), h.count));
}

/// Renders one histogram in exposition format, with optional extra
/// labels (e.g. `tenant="lg-0"`) applied to every series.
pub fn render_histogram(
    out: &mut String,
    prefix: &str,
    name: &str,
    labels: &str,
    h: &HistogramSample,
) {
    let full = format!("{prefix}{}", sanitize_name(name));
    let label = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("# TYPE {full} histogram\n"));
    render_histogram_series(out, &full, labels, h);
    out.push_str(&format!(
        "# TYPE {full}_min gauge\n{full}_min{label} {}\n",
        h.min
    ));
    out.push_str(&format!(
        "# TYPE {full}_max gauge\n{full}_max{label} {}\n",
        h.max
    ));
}

/// Renders a whole snapshot as a Prometheus text exposition page.
///
/// `prefix` is prepended to every metric name (conventionally
/// `"deepstore_"`). Counters render before histograms, each in
/// registration order, so the page is deterministic for equal
/// snapshots.
#[must_use]
pub fn render_text(snap: &MetricsSnapshot, prefix: &str) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        render_counter(&mut out, prefix, &c.name, c.value);
    }
    for h in &snap.histograms {
        render_histogram(&mut out, prefix, &h.name, "", h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsRegistry};

    fn sample_of(values: &[u64]) -> HistogramSample {
        let mut reg = MetricsRegistry::new();
        let id = reg.histogram("t");
        for &v in values {
            reg.record(id, v);
        }
        reg.snapshot().histograms[0].clone()
    }

    #[test]
    fn empty_percentile_is_zero() {
        assert_eq!(percentile(&sample_of(&[]), 99.0), 0);
    }

    #[test]
    fn percentiles_are_bracketed_by_min_and_max() {
        let vals: Vec<u64> = (0..500).map(|i| i * 97 % 10_000).collect();
        let s = sample_of(&vals);
        for q in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let p = percentile(&s, q);
            assert!(
                p >= s.min && p <= s.max,
                "p{q} = {p} outside [{}, {}]",
                s.min,
                s.max
            );
        }
        assert_eq!(percentile(&s, 100.0), s.max);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let s = sample_of(&[777]);
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&s, q), 777);
        }
    }

    #[test]
    fn percentile_is_within_one_bucket_of_truth() {
        let mut vals: Vec<u64> = (1..=1000).map(|i| i * 13).collect();
        vals.sort_unstable();
        let s = sample_of(&vals);
        let true_p99 = vals[(0.99f64 * 1000.0).ceil() as usize - 1];
        let est = percentile(&s, 99.0);
        let b = Histogram::bucket_of(true_p99) as u32;
        let (lo, hi) = bucket_range(b);
        assert!(
            est >= lo && est <= hi,
            "p99 estimate {est} outside bucket [{lo}, {hi}]"
        );
    }

    #[test]
    fn render_text_is_valid_and_deterministic() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("serve.accepted");
        let h = reg.histogram("serve.e2e_ns");
        reg.add(c, 3);
        reg.record(h, 100);
        reg.record(h, 900);
        let page = render_text(&reg.snapshot(), "deepstore_");
        assert_eq!(page, render_text(&reg.snapshot(), "deepstore_"));
        assert!(page.contains("# TYPE deepstore_serve_accepted counter"));
        assert!(page.contains("deepstore_serve_accepted 3"));
        assert!(page.contains("# TYPE deepstore_serve_e2e_ns histogram"));
        assert!(page.contains("deepstore_serve_e2e_ns_bucket{le=\"+Inf\"} 2"));
        assert!(page.contains("deepstore_serve_e2e_ns_sum 1000"));
        assert!(page.contains("deepstore_serve_e2e_ns_count 2"));
        assert!(page.contains("deepstore_serve_e2e_ns_min 100"));
        assert!(page.contains("deepstore_serve_e2e_ns_max 900"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                !name.is_empty() && value.parse::<f64>().is_ok(),
                "bad line {line}"
            );
        }
    }

    #[test]
    fn labeled_histogram_series_carry_the_label() {
        let s = sample_of(&[5, 9]);
        let mut out = String::new();
        render_histogram(
            &mut out,
            "deepstore_",
            "serve.queue_ns",
            "tenant=\"lg-0\"",
            &s,
        );
        assert!(out.contains("deepstore_serve_queue_ns_bucket{tenant=\"lg-0\",le=\"+Inf\"} 2"));
        assert!(out.contains("deepstore_serve_queue_ns_count{tenant=\"lg-0\"} 2"));
        assert!(out.contains("deepstore_serve_queue_ns_min{tenant=\"lg-0\"} 5"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("api.query_ns"), "api_query_ns");
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }
}
