//! Lock-free counters, histograms, and the registry that snapshots them.
//!
//! Determinism is the design driver: every write is one atomic
//! `fetch_add` / `fetch_max`, which are commutative and associative, so
//! the final value of every cell is independent of thread interleaving.
//! Combined with DeepStore's physically-determined shard plan this
//! makes a post-workload [`MetricsSnapshot`] identical for any
//! `parallelism` setting — a property the telemetry test suite asserts.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed power-of-two-bucket histogram.
///
/// The bucket layout is static (no resizing, no locking): recording is
/// one `fetch_add` on the bucket plus three more for count/sum/max.
/// Power-of-two buckets cover the full `u64` range, which is plenty of
/// resolution for latency-in-nanoseconds and bytes-moved style metrics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index for `value`.
    #[inline]
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        64 - value.leading_zeros() as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded observation, tracked exactly (power-of-two
    /// buckets alone would only bound it). 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest recorded observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time [`HistogramSample`] of this histogram under
    /// `name` (the registry snapshots through this; standalone
    /// histograms — e.g. the serve layer's per-tenant latencies — use
    /// it directly for percentile estimation and exposition).
    #[must_use]
    pub fn sample(&self, name: &str) -> HistogramSample {
        HistogramSample {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.load(Ordering::Relaxed) != 0)
                .map(|(i, b)| (i as u32, b.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// Handle to a registered counter. Cheap to copy; only valid with the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A named collection of counters and histograms.
///
/// Registration (`&mut self`) happens once at construction; recording
/// (`&self`) is lock-free thereafter, so the registry can be shared
/// across scan worker threads behind a plain reference.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, Counter)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter under `name` and returns its handle.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push((name, Counter::new()));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a histogram under `name` and returns its handle.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        self.histograms.push((name, Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `delta` to a registered counter.
    #[inline]
    pub fn add(&self, id: CounterId, delta: u64) {
        self.counters[id.0].1.add(delta);
    }

    /// Adds one to a registered counter.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Records one observation in a registered histogram.
    #[inline]
    pub fn record(&self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.record(value);
    }

    /// The current value of a registered counter.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1.get()
    }

    /// A deterministic point-in-time copy of every metric, in
    /// registration order. Zero-valued counters and empty histogram
    /// buckets are included/elided consistently, so equal workloads
    /// yield equal snapshots.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, c)| CounterSample {
                    name: (*name).to_string(),
                    value: c.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| h.sample(name))
                .collect(),
        }
    }
}

/// One counter's value in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram's state in a snapshot. `buckets` is sparse: only
/// non-empty `(bucket_index, count)` pairs, in ascending index order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation, tracked exactly (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty `(bucket_index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSample {
    /// Merges another sample of the *same logical metric* into this
    /// one: counts and sums add, the sparse buckets union with
    /// per-bucket addition, and min/max tighten. An empty side leaves
    /// min untouched (its reported 0 is "no observations", not an
    /// observation of zero).
    pub fn merge(&mut self, other: &HistogramSample) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
    }
}

/// A deterministic copy of a [`MetricsRegistry`] at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, in registration order.
    pub counters: Vec<CounterSample>,
    /// All histograms, in registration order.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// An empty snapshot (used when telemetry is compiled out).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Looks up a counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram sample by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds `other` into this snapshot: same-name counters add, same-name
    /// histograms merge bucket-wise (count/sum add, min/max tighten),
    /// and names only present in `other` are appended in their original
    /// order. This is the cluster rollup: N per-drive snapshots merge
    /// into one device-fleet view, and because every operation is
    /// commutative over equal name sets, merging drives in any order
    /// yields the same totals.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for oc in &other.counters {
            match self.counters.iter_mut().find(|c| c.name == oc.name) {
                Some(c) => c.value += oc.value,
                None => self.counters.push(oc.clone()),
            }
        }
        for oh in &other.histograms {
            match self.histograms.iter_mut().find(|h| h.name == oh.name) {
                Some(h) => h.merge(oh),
                None => self.histograms.push(oh.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in [0, 1, 3, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn min_is_exact_not_bucket_bounded() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0, "empty histogram reports min 0");
        // 100 and 75 land in the same power-of-two bucket [64, 128);
        // only exact tracking can distinguish them.
        h.record(100);
        h.record(75);
        assert_eq!(h.min(), 75);
        assert_eq!(h.max(), 100);
        h.record(3);
        assert_eq!(h.min(), 3);
    }

    #[test]
    fn snapshot_is_interleaving_independent() {
        // The same multiset of operations applied in two different
        // orders (and thread splits) yields the same snapshot.
        let build = |rev: bool| {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("ops");
            let h = reg.histogram("latency");
            let mut vals: Vec<u64> = (0..100).map(|i| i * 37 % 1000).collect();
            if rev {
                vals.reverse();
            }
            std::thread::scope(|s| {
                let (a, b) = vals.split_at(if rev { 13 } else { 61 });
                let reg = &reg;
                s.spawn(move || {
                    for &v in a {
                        reg.add(c, v);
                        reg.record(h, v);
                    }
                });
                for &v in b {
                    reg.add(c, v);
                    reg.record(h, v);
                }
            });
            reg.snapshot()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn snapshot_merge_is_order_independent() {
        let build = |c_val: u64, h_vals: &[u64]| {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("ops");
            let h = reg.histogram("latency");
            reg.add(c, c_val);
            for &v in h_vals {
                reg.record(h, v);
            }
            reg.snapshot()
        };
        let a = build(3, &[100, 75]);
        let b = build(9, &[3]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("ops"), Some(12));
        let h = ab.histogram("latency").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 178);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 100);
        // Merging the same multiset through one registry gives the
        // identical sample.
        let direct = build(12, &[100, 75, 3]);
        assert_eq!(ab.histogram("latency"), direct.histogram("latency"));
    }

    #[test]
    fn merging_an_empty_histogram_keeps_min_honest() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("ns");
        reg.record(h, 7);
        let mut snap = reg.snapshot();
        let empty = MetricsRegistry::new();
        let mut with_name = MetricsRegistry::new();
        with_name.histogram("ns");
        snap.merge(&empty.snapshot());
        snap.merge(&with_name.snapshot());
        let s = snap.histogram("ns").unwrap();
        assert_eq!((s.count, s.min, s.max), (1, 7, 7));
        // And the other direction: empty absorbs the observation's min.
        let mut base = with_name.snapshot();
        base.merge(&snap);
        let s = base.histogram("ns").unwrap();
        assert_eq!((s.count, s.min, s.max), (1, 7, 7));
    }

    #[test]
    fn merge_appends_unknown_names() {
        let mut a_reg = MetricsRegistry::new();
        let ca = a_reg.counter("a");
        a_reg.add(ca, 1);
        let mut b_reg = MetricsRegistry::new();
        let cb = b_reg.counter("b");
        b_reg.add(cb, 2);
        let hb = b_reg.histogram("hb");
        b_reg.record(hb, 5);
        let mut merged = a_reg.snapshot();
        merged.merge(&b_reg.snapshot());
        assert_eq!(merged.counter("a"), Some(1));
        assert_eq!(merged.counter("b"), Some(2));
        assert_eq!(merged.histogram("hb").unwrap().count, 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("reads");
        let h = reg.histogram("ns");
        reg.add(c, 42);
        reg.record(h, 9);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
