//! Telemetry substrate for the DeepStore workspace.
//!
//! Four pieces, all built for *deterministic* observability of a
//! simulated device:
//!
//! * [`metrics`] — a lock-free metrics registry: atomic counters and
//!   fixed power-of-two-bucket histograms. Every mutation is a single
//!   commutative atomic RMW, so a [`MetricsSnapshot`] taken after a
//!   workload is bit-identical regardless of how many host worker
//!   threads interleaved while producing it.
//! * [`trace`] — a span-based trace recorder emitting Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto). Timestamps are
//!   *simulated* nanoseconds from the device timing model, never host
//!   wall-clock, so two runs of the same query produce byte-identical
//!   trace files.
//! * [`histo`] — percentile estimation over the power-of-two bucket
//!   histograms plus a Prometheus text-exposition renderer for
//!   snapshots.
//! * [`recorder`] — a fixed-size lock-free flight-recorder ring of
//!   recent request summaries, dumped to deterministic JSON on error,
//!   SLO breach, or explicit request.
//!
//! The crate is dependency-light (serde shims only) and is always
//! compiled; consumers gate the *recording call sites* behind their own
//! `obs` cargo feature so the types stay available in both
//! configurations.

pub mod histo;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use histo::{
    percentile, render_histogram, render_histogram_series, render_text, sanitize_name,
};
pub use metrics::{
    Counter, CounterId, CounterSample, Histogram, HistogramId, HistogramSample, MetricsRegistry,
    MetricsSnapshot,
};
pub use recorder::{
    FlightDump, FlightRecorder, RequestOutcome, RequestRecord, RequestSummary,
    DEFAULT_RECORDER_CAPACITY,
};
pub use trace::{TraceEvent, TraceRecorder};
