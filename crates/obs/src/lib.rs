//! Telemetry substrate for the DeepStore workspace.
//!
//! Two pieces, both built for *deterministic* observability of a
//! simulated device:
//!
//! * [`metrics`] — a lock-free metrics registry: atomic counters and
//!   fixed power-of-two-bucket histograms. Every mutation is a single
//!   commutative atomic RMW, so a [`MetricsSnapshot`] taken after a
//!   workload is bit-identical regardless of how many host worker
//!   threads interleaved while producing it.
//! * [`trace`] — a span-based trace recorder emitting Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto). Timestamps are
//!   *simulated* nanoseconds from the device timing model, never host
//!   wall-clock, so two runs of the same query produce byte-identical
//!   trace files.
//!
//! The crate is dependency-light (serde shims only) and is always
//! compiled; consumers gate the *recording call sites* behind their own
//! `obs` cargo feature so the types stay available in both
//! configurations.

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, CounterId, CounterSample, Histogram, HistogramId, HistogramSample, MetricsRegistry,
    MetricsSnapshot,
};
pub use trace::{TraceEvent, TraceRecorder};
