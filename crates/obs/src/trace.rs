//! Span-based trace recording, emitted as Chrome trace-event JSON.
//!
//! Every timestamp fed to the recorder is *simulated* time (nanoseconds
//! from the device timing model), so the emitted file is byte-identical
//! across runs of the same workload — there is no host clock anywhere
//! in the pipeline. The output loads directly in `chrome://tracing` or
//! Perfetto: complete (`"ph":"X"`) events for stages with duration,
//! instant (`"ph":"i"`) events for point markers, with the `tid` lane
//! used to separate pipeline stages and per-channel flash activity.

use serde::write_escaped_str;

/// One argument attached to a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ArgValue {
    U64(u64),
    Str(String),
}

/// A single trace event (Chrome trace-event format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    name: String,
    cat: &'static str,
    /// `'X'` complete event (has duration) or `'i'` instant event.
    ph: char,
    ts_ns: u64,
    dur_ns: u64,
    tid: u32,
    args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Attaches an integer argument; returns `self` for chaining.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.args.push((key, ArgValue::U64(value)));
        self
    }

    /// Attaches a string argument; returns `self` for chaining.
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) -> &mut Self {
        self.args.push((key, ArgValue::Str(value.into())));
        self
    }

    /// Event name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Start timestamp in simulated nanoseconds.
    #[must_use]
    pub fn ts_ns(&self) -> u64 {
        self.ts_ns
    }

    /// Duration in simulated nanoseconds (0 for instants).
    #[must_use]
    pub fn dur_ns(&self) -> u64 {
        self.dur_ns
    }

    /// Writes this event as one JSON object. Chrome expects `ts`/`dur`
    /// in microseconds; sub-microsecond precision is kept as a fixed
    /// three-digit decimal fraction so formatting stays deterministic.
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_escaped_str(&self.name, out);
        out.push_str(",\"cat\":");
        write_escaped_str(self.cat, out);
        out.push_str(&format!(
            ",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
            self.ph,
            self.ts_ns / 1000,
            self.ts_ns % 1000,
            self.tid
        ));
        if self.ph == 'X' {
            out.push_str(&format!(
                ",\"dur\":{}.{:03}",
                self.dur_ns / 1000,
                self.dur_ns % 1000
            ));
        }
        if self.ph == 'i' {
            // Thread-scoped instants render as small arrows in the lane.
            out.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped_str(key, out);
                out.push(':');
                match value {
                    ArgValue::U64(v) => out.push_str(&v.to_string()),
                    ArgValue::Str(s) => write_escaped_str(s, out),
                }
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// Collects trace events and renders them as a Chrome trace file.
///
/// The recorder is single-writer by design: spans are assembled from
/// the deterministic timing model *after* a scan completes, not raced
/// from worker threads, which keeps event order (and therefore the
/// output bytes) reproducible.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a complete span (`ph:"X"`) and returns it for argument
    /// attachment.
    pub fn span(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        tid: u32,
    ) -> &mut TraceEvent {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'X',
            ts_ns,
            dur_ns,
            tid,
            args: Vec::new(),
        });
        self.events.last_mut().expect("just pushed")
    }

    /// Records an instant marker (`ph:"i"`).
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        tid: u32,
    ) -> &mut TraceEvent {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'i',
            ts_ns,
            dur_ns: 0,
            tid,
            args: Vec::new(),
        });
        self.events.last_mut().expect("just pushed")
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in recording order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the whole trace as a Chrome trace-event JSON document:
    /// `{"traceEvents":[...],"displayTimeUnit":"ns"}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.write_json(&mut out);
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_parseable_chrome_trace() {
        let mut rec = TraceRecorder::new();
        rec.span("scan", "engine", 1_500, 53_000, 0)
            .arg_u64("pages", 12)
            .arg_str("level", "ssd");
        rec.instant("merge", "engine", 60_000, 0);
        let json = rec.to_json();
        let value = serde::parse_value(json.as_bytes()).expect("valid JSON");
        let top = value.as_object().expect("object");
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        match events {
            serde::Value::Arr(items) => assert_eq!(items.len(), 2),
            other => panic!("traceEvents should be an array, got {}", other.kind()),
        }
    }

    #[test]
    fn output_is_reproducible() {
        let build = || {
            let mut rec = TraceRecorder::new();
            rec.span("decode", "api", 0, 250, 0);
            rec.span("flash", "flash", 250, 53_000, 3).arg_u64("ch", 3);
            rec.to_json()
        };
        assert_eq!(build(), build());
    }
}
