//! Always-on flight recorder: a fixed-size lock-free ring of recent
//! request summaries.
//!
//! The serving layer records one [`RequestSummary`] per finished (or
//! rejected) request. The ring keeps the last `capacity` of them with
//! no locks on the write path: a writer claims a unique global sequence
//! number with one `fetch_add`, then publishes into slot
//! `seq % capacity` under a per-slot seqlock (odd = write in progress).
//! Two writers only touch the same slot after `capacity` intervening
//! requests, so the common case is uncontended; a reader that races a
//! wrap simply retries or skips the superseded slot.
//!
//! Tenant names are interned once (at hello time, off the hot path)
//! so the per-request record is a handful of atomic stores.
//!
//! `dump` serializes the surviving summaries — ordered by admission
//! sequence — to JSON. All timestamps come from the caller's clock
//! (the serving layer's `ServeClock`), so under a simulated clock two
//! identical runs produce byte-identical dumps, which the test suite
//! asserts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Default ring capacity used by the serving layer.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// How a recorded request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Completed normally.
    Ok,
    /// Completed with degraded coverage.
    Degraded,
    /// The engine returned an error response.
    Error,
    /// Rejected at admission: queue full.
    Overloaded,
    /// Rejected at admission: tenant over quota.
    QuotaExceeded,
}

impl RequestOutcome {
    fn as_u64(self) -> u64 {
        match self {
            RequestOutcome::Ok => 0,
            RequestOutcome::Degraded => 1,
            RequestOutcome::Error => 2,
            RequestOutcome::Overloaded => 3,
            RequestOutcome::QuotaExceeded => 4,
        }
    }

    fn from_u64(v: u64) -> Self {
        match v {
            1 => RequestOutcome::Degraded,
            2 => RequestOutcome::Error,
            3 => RequestOutcome::Overloaded,
            4 => RequestOutcome::QuotaExceeded,
            _ => RequestOutcome::Ok,
        }
    }
}

/// One request's life, summarized for the ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSummary {
    /// Global admission sequence number (0-based, monotonic).
    pub seq: u64,
    /// The request id carried in (or assigned to) the wire frame.
    pub request_id: u64,
    /// Hello client id of the issuing connection.
    pub tenant: String,
    /// Queries in the frame (1 for `query`, N for `queryBatch`).
    pub queries: u64,
    /// Time spent waiting in the admission queue, ns.
    pub queue_ns: u64,
    /// Time spent in the engine (service time), ns.
    pub service_ns: u64,
    /// End-to-end latency from scheduled arrival, ns.
    pub e2e_ns: u64,
    /// Worst scan coverage across the frame's queries, in 1/1000.
    pub coverage_milli: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
}

/// The JSON document `dump` produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was taken: `"error"`, `"slo_breach"`, or
    /// `"explicit"`.
    pub reason: String,
    /// Total requests ever recorded (entries hold the newest of these).
    pub total: u64,
    /// Ring capacity.
    pub capacity: u64,
    /// Surviving summaries, oldest first.
    pub entries: Vec<RequestSummary>,
}

/// Sentinel for a slot that has never been written.
const EMPTY: u64 = u64::MAX;

/// One ring slot: a seqlock plus the summary's fields as atomics.
#[derive(Debug)]
struct Slot {
    /// Seqlock: odd while a write is in progress.
    lock: AtomicU64,
    seq: AtomicU64,
    request_id: AtomicU64,
    tenant_idx: AtomicU64,
    queries: AtomicU64,
    queue_ns: AtomicU64,
    service_ns: AtomicU64,
    e2e_ns: AtomicU64,
    /// `coverage_milli << 8 | outcome`.
    packed: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            lock: AtomicU64::new(0),
            seq: AtomicU64::new(EMPTY),
            request_id: AtomicU64::new(0),
            tenant_idx: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            queue_ns: AtomicU64::new(0),
            service_ns: AtomicU64::new(0),
            e2e_ns: AtomicU64::new(0),
            packed: AtomicU64::new(0),
        }
    }
}

/// What the serving layer hands to [`FlightRecorder::record`]: a
/// summary with the tenant pre-interned.
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The request id carried in (or assigned to) the wire frame.
    pub request_id: u64,
    /// Interned tenant index from [`FlightRecorder::tenant_idx`].
    pub tenant_idx: u64,
    /// Queries in the frame.
    pub queries: u64,
    /// Queue wait, ns.
    pub queue_ns: u64,
    /// Engine service time, ns.
    pub service_ns: u64,
    /// End-to-end latency from scheduled arrival, ns.
    pub e2e_ns: u64,
    /// Worst coverage across the frame, in 1/1000.
    pub coverage_milli: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
}

/// Fixed-size lock-free ring of recent [`RequestSummary`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    tenants: Mutex<Vec<String>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests
    /// (`capacity >= 1`).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            tenants: Mutex::new(Vec::new()),
        }
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total requests ever recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Interns a tenant name, returning its stable index. Called once
    /// per connection (at hello), not per request.
    pub fn tenant_idx(&self, name: &str) -> u64 {
        let mut tenants = self.tenants.lock().expect("tenant interner poisoned");
        if let Some(i) = tenants.iter().position(|t| t == name) {
            return i as u64;
        }
        tenants.push(name.to_string());
        (tenants.len() - 1) as u64
    }

    /// Records one request summary (lock-free).
    pub fn record(&self, r: &RequestRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.lock.fetch_add(1, Ordering::AcqRel); // now odd: write in progress
        slot.seq.store(seq, Ordering::Relaxed);
        slot.request_id.store(r.request_id, Ordering::Relaxed);
        slot.tenant_idx.store(r.tenant_idx, Ordering::Relaxed);
        slot.queries.store(r.queries, Ordering::Relaxed);
        slot.queue_ns.store(r.queue_ns, Ordering::Relaxed);
        slot.service_ns.store(r.service_ns, Ordering::Relaxed);
        slot.e2e_ns.store(r.e2e_ns, Ordering::Relaxed);
        slot.packed.store(
            r.coverage_milli << 8 | r.outcome.as_u64(),
            Ordering::Relaxed,
        );
        slot.lock.fetch_add(1, Ordering::Release); // even again: published
    }

    /// The surviving summaries, oldest first. Slots mid-write (or
    /// superseded while being read) are skipped rather than torn.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RequestSummary> {
        let tenants = self
            .tenants
            .lock()
            .expect("tenant interner poisoned")
            .clone();
        let total = self.total();
        let oldest = total.saturating_sub(self.slots.len() as u64);
        let mut entries = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // Seqlock read: retry while a write is in flight, give up
            // on a slot that keeps changing (it is being overwritten
            // with newer data we will not wait for).
            for _ in 0..8 {
                let before = slot.lock.load(Ordering::Acquire);
                if before % 2 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let seq = slot.seq.load(Ordering::Relaxed);
                let summary = RequestSummary {
                    seq,
                    request_id: slot.request_id.load(Ordering::Relaxed),
                    tenant: tenants
                        .get(slot.tenant_idx.load(Ordering::Relaxed) as usize)
                        .cloned()
                        .unwrap_or_default(),
                    queries: slot.queries.load(Ordering::Relaxed),
                    queue_ns: slot.queue_ns.load(Ordering::Relaxed),
                    service_ns: slot.service_ns.load(Ordering::Relaxed),
                    e2e_ns: slot.e2e_ns.load(Ordering::Relaxed),
                    coverage_milli: slot.packed.load(Ordering::Relaxed) >> 8,
                    outcome: RequestOutcome::from_u64(slot.packed.load(Ordering::Relaxed) & 0xff),
                };
                if slot.lock.load(Ordering::Acquire) != before {
                    continue;
                }
                if seq != EMPTY && seq >= oldest && seq < total {
                    entries.push(summary);
                }
                break;
            }
        }
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// Serializes the ring to a deterministic JSON document.
    #[must_use]
    pub fn dump(&self, reason: &str) -> String {
        let entries = self.snapshot();
        serde_json::to_string(&FlightDump {
            reason: reason.to_string(),
            total: self.total(),
            capacity: self.slots.len() as u64,
            entries,
        })
        .expect("flight dump serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(request_id: u64, tenant_idx: u64) -> RequestRecord {
        RequestRecord {
            request_id,
            tenant_idx,
            queries: 1,
            queue_ns: 10 * request_id,
            service_ns: 100,
            e2e_ns: 100 + 10 * request_id,
            coverage_milli: 1000,
            outcome: RequestOutcome::Ok,
        }
    }

    #[test]
    fn ring_keeps_the_newest_entries_on_wraparound() {
        let r = FlightRecorder::new(4);
        let t = r.tenant_idx("cli");
        for i in 0..10 {
            r.record(&rec(i, t));
        }
        assert_eq!(r.total(), 10);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(snap.iter().all(|e| e.tenant == "cli"));
        assert_eq!(snap[0].request_id, 6);
    }

    #[test]
    fn dump_is_deterministic_json() {
        let build = || {
            let r = FlightRecorder::new(8);
            let t = r.tenant_idx("lg-0");
            for i in 0..5 {
                r.record(&rec(i, t));
            }
            r.dump("explicit")
        };
        let a = build();
        assert_eq!(a, build());
        let back: FlightDump = serde_json::from_str(&a).unwrap();
        assert_eq!(back.reason, "explicit");
        assert_eq!(back.total, 5);
        assert_eq!(back.capacity, 8);
        assert_eq!(back.entries.len(), 5);
        assert_eq!(back.entries[4].request_id, 4);
    }

    #[test]
    fn outcomes_round_trip_through_packing() {
        for o in [
            RequestOutcome::Ok,
            RequestOutcome::Degraded,
            RequestOutcome::Error,
            RequestOutcome::Overloaded,
            RequestOutcome::QuotaExceeded,
        ] {
            assert_eq!(RequestOutcome::from_u64(o.as_u64()), o);
        }
        let r = FlightRecorder::new(2);
        let t = r.tenant_idx("x");
        let mut q = rec(1, t);
        q.outcome = RequestOutcome::QuotaExceeded;
        q.coverage_milli = 875;
        r.record(&q);
        let snap = r.snapshot();
        assert_eq!(snap[0].outcome, RequestOutcome::QuotaExceeded);
        assert_eq!(snap[0].coverage_milli, 875);
    }

    #[test]
    fn concurrent_writers_never_tear_a_read() {
        let r = FlightRecorder::new(16);
        let t = r.tenant_idx("w");
        std::thread::scope(|s| {
            for w in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..500 {
                        r.record(&rec(w * 1000 + i, t));
                    }
                });
            }
            for _ in 0..50 {
                // Every visible entry is internally consistent.
                for e in r.snapshot() {
                    assert_eq!(e.e2e_ns, 100 + 10 * e.request_id);
                }
            }
        });
        assert_eq!(r.total(), 2000);
        assert_eq!(r.snapshot().len(), 16);
    }

    #[test]
    fn tenant_interning_is_stable() {
        let r = FlightRecorder::new(2);
        assert_eq!(r.tenant_idx("a"), 0);
        assert_eq!(r.tenant_idx("b"), 1);
        assert_eq!(r.tenant_idx("a"), 0);
    }
}
