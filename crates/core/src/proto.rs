//! The host↔device command protocol.
//!
//! The Table 2 APIs "internally use new NVMe commands to interact with the
//! query engine" (§4.7.2). This module defines that command set as framed,
//! serialized messages: a fixed header (magic, version, opcode, payload
//! length) followed by a JSON payload — the vendor-specific-command shape
//! an NVMe driver would carry in practice. [`Device`] is the in-storage
//! endpoint that parses command frames and dispatches to the
//! [`DeepStore`] engine; [`HostClient`] is the host-side convenience
//! wrapper that speaks bytes to a device.
//!
//! # Example
//!
//! ```
//! use deepstore_core::proto::{Device, HostClient};
//! use deepstore_core::{AcceleratorLevel, DeepStoreConfig};
//! use deepstore_nn::{zoo, ModelGraph};
//!
//! let mut device = Device::new(DeepStoreConfig::small());
//! let mut host = HostClient::new(&mut device);
//! let model = zoo::textqa().seeded(1);
//! let db = host.write_db(&(0..16).map(|i| model.random_feature(i)).collect::<Vec<_>>()).unwrap();
//! let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
//! let qid = host.query(&model.random_feature(99), 3, mid, db, AcceleratorLevel::Channel, false).unwrap();
//! let results = host.get_results(qid).unwrap();
//! assert_eq!(results.top_k.len(), 3);
//! ```

use crate::api::{DeepStore, ModelId, QueryId, QueryRequest, QueryResult};
use crate::config::{AcceleratorLevel, DeepStoreConfig};
use crate::engine::DbId;
use crate::error::DeepStoreError;
use crate::qcache::QueryCacheConfig;
use crate::telemetry::DeviceStats;
use deepstore_nn::{ModelGraph, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// Protocol magic ("DSTR").
pub const MAGIC: [u8; 4] = *b"DSTR";
/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;
/// Application-level protocol version negotiated by the `hello`
/// handshake ([`Command::Hello`]/[`Response::HelloAck`]). Independent of
/// the frame-header [`VERSION`]: the header byte gates frame *parsing*,
/// this gates command *semantics*. A peer announcing a different value
/// is rejected with [`WireError::VersionMismatch`].
pub const PROTOCOL_VERSION: u32 = 1;
/// Frame header length: magic(4) + version(1) + opcode(1) + len(4).
pub const HEADER_LEN: usize = 10;
/// Largest payload a peer may declare. A stream reader that trusted the
/// length prefix verbatim could be made to allocate 4 GiB by a single
/// corrupt header; anything above this cap is rejected as
/// [`ProtoError::FrameTooLarge`] before allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Errors produced by the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The frame was shorter than its header or declared length.
    Truncated,
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// The payload failed to deserialize.
    BadPayload(String),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The peer disconnected: at a frame boundary after a request was
    /// sent, or mid-frame at any time.
    ConnectionClosed,
    /// A transport-level I/O failure.
    Io(String),
    /// The device rejected the command (structured; see [`WireError`]).
    Device(WireError),
}

impl ProtoError {
    /// The structured device-side error, when this is a device
    /// rejection. Lets callers that think in engine terms (load
    /// generators, retry loops) recover a [`DeepStoreError`] from a
    /// wire-level failure.
    pub fn device_error(&self) -> Option<DeepStoreError> {
        match self {
            ProtoError::Device(w) => Some(w.clone().into()),
            _ => None,
        }
    }

    /// Whether this is an admission-control rejection (overload or
    /// quota) — transient by design, safe to retry after backoff.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            ProtoError::Device(WireError::Overloaded { .. })
                | ProtoError::Device(WireError::QuotaExceeded { .. })
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadMagic => write!(f, "bad magic"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            ProtoError::BadPayload(e) => write!(f, "bad payload: {e}"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            ProtoError::ConnectionClosed => write!(f, "connection closed"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A device-side error as carried in a [`Response::Error`] frame: the
/// serializable mirror of [`DeepStoreError`], plus the serving-layer
/// rejections. Structured variants round-trip losslessly; flash/FTL
/// failures travel as prose ([`WireError::Device`]) because their
/// payload types are not wire types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// Mirror of [`DeepStoreError::UnknownModel`].
    UnknownModel(u64),
    /// Mirror of [`DeepStoreError::UnknownQuery`].
    UnknownQuery(u64),
    /// Mirror of [`DeepStoreError::LevelUnsupported`].
    LevelUnsupported {
        /// Name of the model that has no mapping at this level.
        model: String,
        /// The accelerator level that was requested.
        level: AcceleratorLevel,
    },
    /// Mirror of [`DeepStoreError::InsufficientCoverage`].
    InsufficientCoverage {
        /// The coverage fraction the request demanded.
        required: f64,
        /// The coverage fraction the scan actually achieved.
        achieved: f64,
    },
    /// The server's bounded pending queue was full (admission control).
    Overloaded {
        /// Capacity of the pending queue that was full.
        queue_depth: u64,
    },
    /// The per-tenant token bucket was empty (admission control).
    QuotaExceeded {
        /// The client id whose quota ran out.
        client: String,
    },
    /// Mirror of [`crate::DeepStoreError::VersionMismatch`]: the peer
    /// (or a persisted image behind the device) speaks a different
    /// format/protocol version than this build.
    VersionMismatch {
        /// The version this side understands.
        expected: u32,
        /// The version the peer announced (or the image carried).
        found: u32,
    },
    /// Any other device-side failure, carried as prose (flash/FTL
    /// errors, model-graph parse failures).
    Device(String),
    /// The request frame itself was malformed (framing or payload).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownModel(id) => write!(f, "unknown model id {id}"),
            WireError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            WireError::LevelUnsupported { model, level } => {
                write!(f, "model `{model}` has no {level}-level mapping")
            }
            WireError::InsufficientCoverage { required, achieved } => {
                write!(
                    f,
                    "insufficient coverage: scan reached {achieved:.4} of the \
                     database, request requires {required:.4}"
                )
            }
            WireError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "server overloaded: pending queue (depth {queue_depth}) is full"
                )
            }
            WireError::QuotaExceeded { client } => {
                write!(f, "quota exceeded for client `{client}`")
            }
            WireError::VersionMismatch { expected, found } => {
                write!(f, "version mismatch: expected {expected}, found {found}")
            }
            WireError::Device(e) => f.write_str(e),
            WireError::Malformed(e) => write!(f, "malformed request: {e}"),
        }
    }
}

impl From<&DeepStoreError> for WireError {
    fn from(e: &DeepStoreError) -> Self {
        match e {
            DeepStoreError::UnknownModel(id) => WireError::UnknownModel(id.0),
            DeepStoreError::UnknownQuery(id) => WireError::UnknownQuery(id.0),
            DeepStoreError::LevelUnsupported { model, level } => WireError::LevelUnsupported {
                model: model.clone(),
                level: *level,
            },
            DeepStoreError::InsufficientCoverage { required, achieved } => {
                WireError::InsufficientCoverage {
                    required: *required,
                    achieved: *achieved,
                }
            }
            DeepStoreError::Overloaded { queue_depth } => WireError::Overloaded {
                queue_depth: *queue_depth,
            },
            DeepStoreError::QuotaExceeded { client } => WireError::QuotaExceeded {
                client: client.clone(),
            },
            DeepStoreError::VersionMismatch { expected, found } => WireError::VersionMismatch {
                expected: *expected,
                found: *found,
            },
            DeepStoreError::Flash(e) => WireError::Device(e.to_string()),
            DeepStoreError::Remote(e) => WireError::Device(e.clone()),
        }
    }
}

impl From<WireError> for DeepStoreError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::UnknownModel(id) => DeepStoreError::UnknownModel(ModelId(id)),
            WireError::UnknownQuery(id) => DeepStoreError::UnknownQuery(QueryId(id)),
            WireError::LevelUnsupported { model, level } => {
                DeepStoreError::LevelUnsupported { model, level }
            }
            WireError::InsufficientCoverage { required, achieved } => {
                DeepStoreError::InsufficientCoverage { required, achieved }
            }
            WireError::Overloaded { queue_depth } => DeepStoreError::Overloaded { queue_depth },
            WireError::QuotaExceeded { client } => DeepStoreError::QuotaExceeded { client },
            WireError::VersionMismatch { expected, found } => {
                DeepStoreError::VersionMismatch { expected, found }
            }
            WireError::Device(e) | WireError::Malformed(e) => DeepStoreError::Remote(e),
        }
    }
}

/// Host→device commands (the Table 2 call set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// `writeDB`: create a database from feature vectors.
    WriteDb {
        /// The features to persist.
        features: Vec<Tensor>,
    },
    /// `appendDB`: extend an existing database.
    AppendDb {
        /// Target database.
        db: DbId,
        /// Features to append.
        features: Vec<Tensor>,
    },
    /// `readDB`: read a feature range back.
    ReadDb {
        /// Source database.
        db: DbId,
        /// First feature index.
        start: u64,
        /// Feature count.
        num: u64,
    },
    /// `loadModel`: register a serialized model graph.
    LoadModel {
        /// The ONNX-like graph bytes (see
        /// [`ModelGraph::to_bytes`]).
        graph: Vec<u8>,
    },
    /// `setQC`: configure the query cache.
    SetQc {
        /// New cache configuration.
        config: QueryCacheConfig,
    },
    /// `query`: submit a query feature vector.
    Query {
        /// Query feature vector.
        qfv: Tensor,
        /// Results to retrieve.
        k: usize,
        /// Registered model.
        model: ModelId,
        /// Target database.
        db: DbId,
        /// Accelerator level to use (`accel_level`).
        level: AcceleratorLevel,
        /// Bypass the pruning cascade (score every feature exactly).
        /// The cascade is bit-identical to the exact path, so this only
        /// trades compute for nothing — it exists as a measurement and
        /// escape-hatch knob.
        exact: bool,
        /// End-to-end trace id. 0 means "unassigned": the serving front
        /// end assigns a fresh id at admission and echoes it in
        /// [`Response::QuerySubmitted`]; a non-zero id supplied by the
        /// client is kept, so a caller can stamp its own correlation id.
        request_id: u64,
        /// Nanoseconds between this request's *scheduled* arrival (open
        /// loop) and the moment it was actually sent. The server folds
        /// this into the end-to-end latency histogram so coordinated
        /// omission does not flatter the tail. 0 for closed-loop callers.
        sched_lag_ns: u64,
    },
    /// `getResults`: fetch a completed query's results.
    GetResults {
        /// The query handle.
        query: QueryId,
    },
    /// `query` (batched): submit several queries in one command; the
    /// device coalesces same-`(db, model, level)` requests into shared
    /// flash passes.
    QueryBatch {
        /// The batched requests, answered in order.
        requests: Vec<QueryRequest>,
        /// End-to-end trace id for the whole batch (see
        /// [`Command::Query::request_id`]); echoed in
        /// [`Response::BatchSubmitted`].
        request_id: u64,
        /// Scheduled-arrival lag for the batch (see
        /// [`Command::Query::sched_lag_ns`]).
        sched_lag_ns: u64,
    },
    /// `getStats`: fetch the device's telemetry snapshot (pipeline
    /// counters, per-stage latency totals, flash event counts).
    Stats,
    /// `hello`: the serving handshake. Identifies the tenant for
    /// per-client quota accounting and announces the client's
    /// [`PROTOCOL_VERSION`]; a mismatched version is rejected with
    /// [`WireError::VersionMismatch`]. Connections that skip the
    /// handshake are billed to a per-connection anonymous id.
    Hello {
        /// The client/tenant id to bill subsequent queries to.
        client: String,
        /// The application protocol version the client speaks.
        version: u32,
    },
    /// `metrics`: fetch the server's metrics in Prometheus text
    /// exposition format. Against a bare device this renders the engine
    /// registries; a serving front end appends its serve-layer page
    /// (per-stage and per-tenant latency histograms, admission
    /// counters).
    Metrics,
    /// `dump`: the SIGUSR1-style explicit flight-recorder dump — the
    /// serving front end answers with its ring of recent request
    /// summaries as deterministic JSON. A bare device (no serving
    /// layer, no recorder) answers with an empty dump.
    Dump,
}

impl Command {
    fn opcode(&self) -> u8 {
        match self {
            Command::WriteDb { .. } => 0x01,
            Command::AppendDb { .. } => 0x02,
            Command::ReadDb { .. } => 0x03,
            Command::LoadModel { .. } => 0x04,
            Command::SetQc { .. } => 0x05,
            Command::Query { .. } => 0x06,
            Command::GetResults { .. } => 0x07,
            Command::QueryBatch { .. } => 0x08,
            Command::Stats => 0x09,
            Command::Hello { .. } => 0x0A,
            Command::Metrics => 0x0B,
            Command::Dump => 0x0C,
        }
    }

    /// How many queries this command admits (the admission-control
    /// cost; non-query commands are free).
    pub fn query_cost(&self) -> u64 {
        match self {
            Command::Query { .. } => 1,
            Command::QueryBatch { requests, .. } => requests.len() as u64,
            _ => 0,
        }
    }

    /// The request id carried by a query command (`None` for non-query
    /// commands, which are not traced).
    #[must_use]
    pub fn request_id(&self) -> Option<u64> {
        match self {
            Command::Query { request_id, .. } | Command::QueryBatch { request_id, .. } => {
                Some(*request_id)
            }
            _ => None,
        }
    }

    /// Stamps a request id onto a query command (no-op for non-query
    /// commands). The serving front end uses this at admission to
    /// assign ids to commands that arrived with `request_id == 0`.
    pub fn set_request_id(&mut self, id: u64) {
        match self {
            Command::Query { request_id, .. } | Command::QueryBatch { request_id, .. } => {
                *request_id = id;
            }
            _ => {}
        }
    }

    /// The scheduled-arrival lag carried by a query command (0 for
    /// non-query commands and closed-loop callers).
    #[must_use]
    pub fn sched_lag_ns(&self) -> u64 {
        match self {
            Command::Query { sched_lag_ns, .. } | Command::QueryBatch { sched_lag_ns, .. } => {
                *sched_lag_ns
            }
            _ => 0,
        }
    }
}

/// Device→host responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `writeDB` succeeded.
    DbCreated(DbId),
    /// `appendDB` succeeded.
    Appended,
    /// `readDB` payload.
    Features(Vec<Tensor>),
    /// `loadModel` succeeded.
    ModelLoaded(ModelId),
    /// `setQC` succeeded.
    QcConfigured,
    /// `query` accepted; poll with `getResults`.
    QuerySubmitted {
        /// The query handle.
        id: QueryId,
        /// The request id the query ran under (client-supplied, or
        /// assigned at admission). 0 from a bare device with an
        /// untagged command.
        request_id: u64,
    },
    /// `query` batch accepted; one handle per request, in order.
    BatchSubmitted {
        /// One handle per request, in request order.
        ids: Vec<QueryId>,
        /// The request id the batch ran under (see
        /// [`Response::QuerySubmitted::request_id`]).
        request_id: u64,
    },
    /// `getResults` payload.
    Results(Box<QueryResult>),
    /// `getStats` payload: the engine snapshot, plus the serving
    /// layer's stats when the command was answered by a running server
    /// (`None` from a bare device).
    Stats {
        /// Device/engine telemetry.
        device: Box<DeviceStats>,
        /// Serve-layer counters and per-tenant breakdowns; `None` when
        /// no serving front end handled the command.
        server: Option<crate::serve::ServerStats>,
    },
    /// `metrics` payload: a Prometheus text exposition page.
    Metrics {
        /// The rendered exposition page.
        text: String,
    },
    /// `dump` payload: a flight-recorder dump as deterministic JSON
    /// (see [`deepstore_obs::FlightDump`]).
    Dump {
        /// The serialized dump.
        json: String,
    },
    /// `hello` accepted; echoes the registered client id and the
    /// server's [`PROTOCOL_VERSION`].
    HelloAck {
        /// The client id quota accounting will bill.
        client: String,
        /// The application protocol version the server speaks.
        version: u32,
    },
    /// Rejected by admission control: the pending queue was full. The
    /// request was not enqueued; retry after backing off.
    Overloaded {
        /// Capacity of the pending queue that was full.
        queue_depth: u64,
    },
    /// Rejected by admission control: the client's token bucket was
    /// empty.
    QuotaExceeded {
        /// The client id whose quota ran out.
        client: String,
    },
    /// The command failed on the device.
    Error(WireError),
}

fn frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(opcode);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn unframe(bytes: &[u8]) -> Result<(u8, &[u8]), ProtoError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(ProtoError::BadVersion(bytes[4]));
    }
    let opcode = bytes[5];
    let len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge {
            len: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or(ProtoError::Truncated)?;
    Ok((opcode, payload))
}

fn io_err(e: std::io::Error) -> ProtoError {
    ProtoError::Io(e.to_string())
}

fn read_exact_frame(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::ConnectionClosed
        } else {
            io_err(e)
        }
    })
}

/// Completes a frame whose first header byte has already been read
/// (transports poll for the first byte with a short timeout, then
/// commit to the whole frame).
pub(crate) fn read_frame_after(first: u8, r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    read_exact_frame(r, &mut header[1..])?;
    if header[..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    if header[4] != VERSION {
        return Err(ProtoError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge {
            len: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let mut out = vec![0u8; HEADER_LEN + len];
    out[..HEADER_LEN].copy_from_slice(&header);
    read_exact_frame(r, &mut out[HEADER_LEN..])?;
    Ok(out)
}

/// Reads one whole frame from a byte stream, validating the header and
/// the [`MAX_FRAME_LEN`] cap before allocating the payload.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary; a
/// disconnect mid-frame is [`ProtoError::ConnectionClosed`].
///
/// # Errors
///
/// Any framing violation ([`ProtoError::BadMagic`],
/// [`ProtoError::BadVersion`], [`ProtoError::FrameTooLarge`]), a
/// mid-frame EOF, or a transport failure ([`ProtoError::Io`]).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(e)),
        }
    }
    read_frame_after(first[0], r).map(Some)
}

/// Writes one frame to a byte stream and flushes it.
///
/// # Errors
///
/// Returns [`ProtoError::Io`] on any transport failure.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), ProtoError> {
    w.write_all(frame).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Serializes a command into a wire frame.
pub fn encode_command(cmd: &Command) -> Vec<u8> {
    let payload = serde_json::to_vec(cmd).expect("commands always serialize");
    frame(cmd.opcode(), &payload)
}

/// Parses a command frame.
///
/// # Errors
///
/// Returns a [`ProtoError`] describing any framing or payload problem.
pub fn decode_command(bytes: &[u8]) -> Result<Command, ProtoError> {
    let (opcode, payload) = unframe(bytes)?;
    if !(0x01..=0x0C).contains(&opcode) {
        return Err(ProtoError::UnknownOpcode(opcode));
    }
    let cmd: Command =
        serde_json::from_slice(payload).map_err(|e| ProtoError::BadPayload(e.to_string()))?;
    if cmd.opcode() != opcode {
        return Err(ProtoError::BadPayload(format!(
            "opcode {opcode:#x} does not match payload variant"
        )));
    }
    Ok(cmd)
}

/// Serializes a response into a wire frame (opcode 0x80).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let payload = serde_json::to_vec(resp).expect("responses always serialize");
    frame(0x80, &payload)
}

/// Parses a response frame.
///
/// # Errors
///
/// Returns a [`ProtoError`] describing any framing or payload problem.
pub fn decode_response(bytes: &[u8]) -> Result<Response, ProtoError> {
    let (opcode, payload) = unframe(bytes)?;
    if opcode != 0x80 {
        return Err(ProtoError::UnknownOpcode(opcode));
    }
    serde_json::from_slice(payload).map_err(|e| ProtoError::BadPayload(e.to_string()))
}

/// Opcode of a standalone cluster rebalance-report frame. Cluster
/// tooling ships [`crate::cluster::RebalanceReport`]s (moved bytes, replication factor,
/// unrecoverable partitions) between processes with the same framing as
/// the command set, but the frame is not a [`Command`]: a cluster sits
/// *in front of* its member devices, so the report never transits a
/// single device's command stream.
pub const REBALANCE_REPORT_OPCODE: u8 = 0x0D;

/// Serializes a cluster rebalance report into a wire frame
/// ([`REBALANCE_REPORT_OPCODE`]).
pub fn encode_rebalance_report(report: &crate::cluster::RebalanceReport) -> Vec<u8> {
    let payload = serde_json::to_vec(report).expect("reports always serialize");
    frame(REBALANCE_REPORT_OPCODE, &payload)
}

/// Parses a rebalance-report frame.
///
/// # Errors
///
/// Returns a [`ProtoError`] describing any framing or payload problem;
/// command and response opcodes arriving here are
/// [`ProtoError::UnknownOpcode`].
pub fn decode_rebalance_report(
    bytes: &[u8],
) -> Result<crate::cluster::RebalanceReport, ProtoError> {
    let (opcode, payload) = unframe(bytes)?;
    if opcode != REBALANCE_REPORT_OPCODE {
        return Err(ProtoError::UnknownOpcode(opcode));
    }
    serde_json::from_slice(payload).map_err(|e| ProtoError::BadPayload(e.to_string()))
}

/// The device-side endpoint: a [`DeepStore`] behind the wire protocol.
#[derive(Debug)]
pub struct Device {
    store: DeepStore,
    frames_handled: u64,
}

impl Device {
    /// Creates a device.
    pub fn new(cfg: DeepStoreConfig) -> Self {
        Device::with_store(DeepStore::in_memory(cfg))
    }

    /// Wraps an already-populated store (the serving front end builds
    /// the store first, then puts the protocol in front of it).
    pub fn with_store(store: DeepStore) -> Self {
        Device {
            store,
            frames_handled: 0,
        }
    }

    /// Read access to the underlying store (the serve layer peeks
    /// query results for flight-recorder outcome classification).
    pub fn store(&self) -> &DeepStore {
        &self.store
    }

    /// Direct access to the underlying store (diagnostics/tests).
    pub fn store_mut(&mut self) -> &mut DeepStore {
        &mut self.store
    }

    /// Unwraps the device back into its store (post-shutdown
    /// inspection).
    pub fn into_store(self) -> DeepStore {
        self.store
    }

    /// Command frames processed so far.
    pub fn frames_handled(&self) -> u64 {
        self.frames_handled
    }

    /// Handles one command frame, returning a response frame. Malformed
    /// frames and engine failures become [`Response::Error`] frames rather
    /// than device panics.
    pub fn handle(&mut self, frame_bytes: &[u8]) -> Vec<u8> {
        self.frames_handled += 1;
        let resp = match decode_command(frame_bytes) {
            Ok(cmd) => self.dispatch(cmd),
            Err(e) => Response::Error(WireError::Malformed(e.to_string())),
        };
        encode_response(&resp)
    }

    pub(crate) fn dispatch(&mut self, cmd: Command) -> Response {
        let result = match cmd {
            Command::WriteDb { features } => {
                self.store.write_db(&features).map(Response::DbCreated)
            }
            Command::AppendDb { db, features } => self
                .store
                .append_db(db, &features)
                .map(|()| Response::Appended),
            Command::ReadDb { db, start, num } => {
                self.store.read_db(db, start, num).map(Response::Features)
            }
            Command::LoadModel { graph } => match ModelGraph::from_bytes(&graph) {
                Ok(g) => self.store.load_model(&g).map(Response::ModelLoaded),
                Err(e) => return Response::Error(WireError::Device(e.to_string())),
            },
            Command::SetQc { config } => {
                self.store.set_qc(config);
                Ok(Response::QcConfigured)
            }
            Command::Query {
                qfv,
                k,
                model,
                db,
                level,
                exact,
                request_id,
                ..
            } => {
                let mut req = QueryRequest::new(qfv, model, db).k(k).level(level);
                if exact {
                    req = req.exact();
                }
                self.store
                    .query_batch_tagged(std::slice::from_ref(&req), &[request_id])
                    .map(|ids| Response::QuerySubmitted {
                        id: ids[0],
                        request_id,
                    })
            }
            Command::QueryBatch {
                requests,
                request_id,
                ..
            } => {
                let rids = vec![request_id; requests.len()];
                self.store
                    .query_batch_tagged(&requests, &rids)
                    .map(|ids| Response::BatchSubmitted { ids, request_id })
            }
            Command::GetResults { query } => self
                .store
                .results(query)
                .map(|r| Response::Results(Box::new(r))),
            Command::Stats => Ok(Response::Stats {
                device: Box::new(self.store.stats()),
                server: None,
            }),
            Command::Metrics => Ok(Response::Metrics {
                text: deepstore_obs::render_text(&self.store.stats().metrics, "deepstore_"),
            }),
            // A bare device has no serving layer and therefore no
            // flight recorder: answer with an empty dump rather than an
            // error so tooling can issue `dump` without knowing which
            // endpoint it reached.
            Command::Dump => Ok(Response::Dump {
                json: serde_json::to_string(&deepstore_obs::FlightDump {
                    reason: "device".to_string(),
                    total: 0,
                    capacity: 0,
                    entries: Vec::new(),
                })
                .expect("dumps always serialize"),
            }),
            // A bare device accepts any tenant; the serving front end
            // intercepts `hello` for quota accounting before dispatch.
            // Version skew is rejected here and there alike.
            Command::Hello { client, version } => {
                if version == PROTOCOL_VERSION {
                    Ok(Response::HelloAck {
                        client,
                        version: PROTOCOL_VERSION,
                    })
                } else {
                    return Response::Error(WireError::VersionMismatch {
                        expected: PROTOCOL_VERSION,
                        found: version,
                    });
                }
            }
        };
        result.unwrap_or_else(|e| Response::Error(WireError::from(&e)))
    }
}

/// How a [`HostClient`] moves frames: directly into a borrowed
/// [`Device`], or across a real transport (the serving front end's
/// channel and TCP clients in [`mod@crate::serve`] implement this too).
pub trait CommandChannel {
    /// Sends one command frame and returns the matching response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] if the transport fails before a
    /// response frame arrives.
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, ProtoError>;
}

/// The in-process channel: commands dispatch synchronously on a
/// borrowed [`Device`] (the pre-serving, single-caller shape).
#[derive(Debug)]
pub struct DirectChannel<'a> {
    device: &'a mut Device,
}

impl CommandChannel for DirectChannel<'_> {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, ProtoError> {
        Ok(self.device.handle(frame))
    }
}

/// Host-side wrapper: the Table 2 API expressed over the wire protocol,
/// generic over how frames reach the device ([`CommandChannel`]).
#[derive(Debug)]
pub struct HostClient<C: CommandChannel> {
    chan: C,
}

impl<'a> HostClient<DirectChannel<'a>> {
    /// Attaches directly to an in-process device.
    pub fn new(device: &'a mut Device) -> Self {
        HostClient {
            chan: DirectChannel { device },
        }
    }

    /// The borrowed device (diagnostics/tests).
    pub fn device_mut(&mut self) -> &mut Device {
        self.chan.device
    }
}

impl<C: CommandChannel> HostClient<C> {
    /// Wraps an arbitrary command channel (a served connection).
    pub fn over(chan: C) -> Self {
        HostClient { chan }
    }

    /// The underlying channel.
    pub fn channel_mut(&mut self) -> &mut C {
        &mut self.chan
    }

    fn round_trip(&mut self, cmd: &Command) -> Result<Response, ProtoError> {
        let resp_bytes = self.chan.exchange(&encode_command(cmd))?;
        // Every rejection shape becomes a typed error here, so callers
        // (load generators included) can survive rejection frames and
        // recover the structured `DeepStoreError` via `device_error()`.
        match decode_response(&resp_bytes)? {
            Response::Error(e) => Err(ProtoError::Device(e)),
            Response::Overloaded { queue_depth } => {
                Err(ProtoError::Device(WireError::Overloaded { queue_depth }))
            }
            Response::QuotaExceeded { client } => {
                Err(ProtoError::Device(WireError::QuotaExceeded { client }))
            }
            other => Ok(other),
        }
    }

    /// The serving handshake: registers `client` as the tenant id for
    /// quota accounting on this connection and negotiates
    /// [`PROTOCOL_VERSION`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] if the server rejects the
    /// handshake — [`WireError::VersionMismatch`] when the two sides
    /// speak different protocol versions.
    pub fn hello(&mut self, client: &str) -> Result<(), ProtoError> {
        match self.round_trip(&Command::Hello {
            client: client.to_string(),
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloAck { version, .. } if version == PROTOCOL_VERSION => Ok(()),
            Response::HelloAck { version, .. } => {
                Err(ProtoError::Device(WireError::VersionMismatch {
                    expected: PROTOCOL_VERSION,
                    found: version,
                }))
            }
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `writeDB` over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] if the engine rejects the write.
    pub fn write_db(&mut self, features: &[Tensor]) -> Result<DbId, ProtoError> {
        match self.round_trip(&Command::WriteDb {
            features: features.to_vec(),
        })? {
            Response::DbCreated(db) => Ok(db),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `appendDB` over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] if the engine rejects the append.
    pub fn append_db(&mut self, db: DbId, features: &[Tensor]) -> Result<(), ProtoError> {
        match self.round_trip(&Command::AppendDb {
            db,
            features: features.to_vec(),
        })? {
            Response::Appended => Ok(()),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `readDB` over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] for bad ids/ranges.
    pub fn read_db(&mut self, db: DbId, start: u64, num: u64) -> Result<Vec<Tensor>, ProtoError> {
        match self.round_trip(&Command::ReadDb { db, start, num })? {
            Response::Features(f) => Ok(f),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `loadModel` over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] for unweighted or malformed graphs.
    pub fn load_model(&mut self, graph: &ModelGraph) -> Result<ModelId, ProtoError> {
        let bytes = graph
            .to_bytes()
            .map_err(|e| ProtoError::BadPayload(e.to_string()))?;
        match self.round_trip(&Command::LoadModel { graph: bytes })? {
            Response::ModelLoaded(m) => Ok(m),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `setQC` over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] on rejection.
    pub fn set_qc(&mut self, config: QueryCacheConfig) -> Result<(), ProtoError> {
        match self.round_trip(&Command::SetQc { config })? {
            Response::QcConfigured => Ok(()),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `query` over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] for bad handles or unsupported
    /// levels.
    pub fn query(
        &mut self,
        qfv: &Tensor,
        k: usize,
        model: ModelId,
        db: DbId,
        level: AcceleratorLevel,
        exact: bool,
    ) -> Result<QueryId, ProtoError> {
        self.query_traced(qfv, k, model, db, level, exact, 0, 0)
            .map(|(id, _)| id)
    }

    /// `query` over the wire, carrying an explicit request id and
    /// scheduled-arrival lag. Passing `request_id == 0` asks the server
    /// to assign one at admission; either way the id the query ran
    /// under comes back alongside the handle.
    ///
    /// # Errors
    ///
    /// See [`HostClient::query`].
    #[allow(clippy::too_many_arguments)]
    pub fn query_traced(
        &mut self,
        qfv: &Tensor,
        k: usize,
        model: ModelId,
        db: DbId,
        level: AcceleratorLevel,
        exact: bool,
        request_id: u64,
        sched_lag_ns: u64,
    ) -> Result<(QueryId, u64), ProtoError> {
        match self.round_trip(&Command::Query {
            qfv: qfv.clone(),
            k,
            model,
            db,
            level,
            exact,
            request_id,
            sched_lag_ns,
        })? {
            Response::QuerySubmitted { id, request_id } => Ok((id, request_id)),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// Batched `query` over the wire: one command, one flash pass per
    /// coalesced `(db, model, level)` group on the device.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] for bad handles or unsupported
    /// levels (the whole batch is rejected before any scan runs).
    pub fn query_batch(&mut self, requests: &[QueryRequest]) -> Result<Vec<QueryId>, ProtoError> {
        self.query_batch_traced(requests, 0, 0).map(|(ids, _)| ids)
    }

    /// Batched `query` with an explicit request id and
    /// scheduled-arrival lag (see [`HostClient::query_traced`]).
    ///
    /// # Errors
    ///
    /// See [`HostClient::query_batch`].
    pub fn query_batch_traced(
        &mut self,
        requests: &[QueryRequest],
        request_id: u64,
        sched_lag_ns: u64,
    ) -> Result<(Vec<QueryId>, u64), ProtoError> {
        match self.round_trip(&Command::QueryBatch {
            requests: requests.to_vec(),
            request_id,
            sched_lag_ns,
        })? {
            Response::BatchSubmitted { ids, request_id } => Ok((ids, request_id)),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `getResults` over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] for unknown query handles.
    pub fn get_results(&mut self, query: QueryId) -> Result<QueryResult, ProtoError> {
        match self.round_trip(&Command::GetResults { query })? {
            Response::Results(r) => Ok(*r),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `getStats` over the wire: the device's telemetry snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] if the device rejects the command.
    pub fn stats(&mut self) -> Result<DeviceStats, ProtoError> {
        self.stats_full().map(|(device, _)| device)
    }

    /// `getStats` over the wire, keeping the serve-layer half of the
    /// response: the device snapshot plus [`crate::serve::ServerStats`]
    /// when a serving front end answered (a bare device returns `None`).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] if the device rejects the command.
    pub fn stats_full(
        &mut self,
    ) -> Result<(DeviceStats, Option<crate::serve::ServerStats>), ProtoError> {
        match self.round_trip(&Command::Stats)? {
            Response::Stats { device, server } => Ok((*device, server)),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `metrics` over the wire: the Prometheus text exposition page.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] if the device rejects the command.
    pub fn metrics(&mut self) -> Result<String, ProtoError> {
        match self.round_trip(&Command::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }

    /// `dump` over the wire: the flight recorder's recent-request ring
    /// as deterministic JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Device`] if the device rejects the command.
    pub fn dump(&mut self) -> Result<String, ProtoError> {
        match self.round_trip(&Command::Dump)? {
            Response::Dump { json } => Ok(json),
            other => Err(ProtoError::BadPayload(format!("unexpected {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    #[test]
    fn command_frames_roundtrip() {
        let model = zoo::textqa().seeded(1);
        let cmds = vec![
            Command::WriteDb {
                features: vec![model.random_feature(0)],
            },
            Command::ReadDb {
                db: DbId(1),
                start: 0,
                num: 4,
            },
            Command::SetQc {
                config: QueryCacheConfig::paper_default(),
            },
            Command::GetResults { query: QueryId(7) },
            Command::Stats,
            Command::Metrics,
            Command::Dump,
        ];
        for cmd in cmds {
            let bytes = encode_command(&cmd);
            assert_eq!(decode_command(&bytes).unwrap(), cmd);
        }
    }

    #[test]
    fn request_id_and_lag_roundtrip_on_query_frames() {
        let model = zoo::textqa().seeded(1);
        let mut cmd = Command::Query {
            qfv: model.random_feature(0),
            k: 3,
            model: ModelId(1),
            db: DbId(1),
            level: AcceleratorLevel::Channel,
            exact: false,
            request_id: 77,
            sched_lag_ns: 1234,
        };
        assert_eq!(decode_command(&encode_command(&cmd)).unwrap(), cmd);
        assert_eq!(cmd.request_id(), Some(77));
        assert_eq!(cmd.sched_lag_ns(), 1234);
        cmd.set_request_id(99);
        assert_eq!(cmd.request_id(), Some(99));

        let batch = Command::QueryBatch {
            requests: vec![QueryRequest::new(model.random_feature(1), ModelId(1), DbId(1)).k(2)],
            request_id: 501,
            sched_lag_ns: 9,
        };
        assert_eq!(decode_command(&encode_command(&batch)).unwrap(), batch);
        assert_eq!(batch.request_id(), Some(501));
        // Non-query commands carry no request id and ignore stamping.
        let mut stats = Command::Stats;
        assert_eq!(stats.request_id(), None);
        stats.set_request_id(5);
        assert_eq!(stats.request_id(), None);
        assert_eq!(stats.sched_lag_ns(), 0);
    }

    #[test]
    fn metrics_and_dump_frames_roundtrip_and_answer() {
        // New opcodes sit where the old decoder's range check ended.
        assert_eq!(encode_command(&Command::Metrics)[5], 0x0B);
        assert_eq!(encode_command(&Command::Dump)[5], 0x0C);

        // Response shapes round-trip, including the widened Stats.
        let frames = vec![
            Response::Metrics {
                text: "# TYPE deepstore_api_queries counter\ndeepstore_api_queries 1\n".into(),
            },
            Response::Dump {
                json: "{\"reason\":\"explicit\"}".into(),
            },
            Response::QuerySubmitted {
                id: QueryId(4),
                request_id: 99,
            },
            Response::BatchSubmitted {
                ids: vec![QueryId(4), QueryId(5)],
                request_id: 100,
            },
        ];
        for resp in frames {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }

        // A bare device answers both: metrics as a valid exposition
        // page over the engine registries, dump as an empty recorder.
        let mut device = Device::new(DeepStoreConfig::small());
        let mut host = HostClient::new(&mut device);
        let page = host.metrics().unwrap();
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                !name.is_empty() && value.parse::<f64>().is_ok(),
                "bad line {line}"
            );
        }
        let dump: deepstore_obs::FlightDump = serde_json::from_str(&host.dump().unwrap()).unwrap();
        assert_eq!(dump.reason, "device");
        assert!(dump.entries.is_empty());
    }

    #[test]
    fn exact_flag_roundtrips_on_both_query_commands() {
        let model = zoo::textqa().seeded(1);
        // The bit survives encode/decode in both states, on the single
        // query command and inside a batched request.
        for exact in [false, true] {
            let cmd = Command::Query {
                qfv: model.random_feature(0),
                k: 3,
                model: ModelId(1),
                db: DbId(1),
                level: AcceleratorLevel::Channel,
                exact,
                request_id: 0,
                sched_lag_ns: 0,
            };
            let decoded = decode_command(&encode_command(&cmd)).unwrap();
            assert_eq!(decoded, cmd);

            let mut req = QueryRequest::new(model.random_feature(1), ModelId(1), DbId(1)).k(2);
            if exact {
                req = req.exact();
            }
            assert_eq!(req.exact, exact);
            let cmd = Command::QueryBatch {
                requests: vec![req],
                request_id: 0,
                sched_lag_ns: 0,
            };
            assert_eq!(decode_command(&encode_command(&cmd)).unwrap(), cmd);
        }
    }

    #[test]
    fn rebalance_report_frames_roundtrip_and_reject_other_opcodes() {
        let report = crate::cluster::RebalanceReport {
            partitions: 6,
            under_replicated: 2,
            re_replicated: 2,
            dropped_replicas: 3,
            moved_bytes: 48_000,
            pages_remapped: 4,
            pages_lost: 1,
            blocks_retired: 2,
            unrecoverable: 0,
            min_replication: 2,
            max_replication: 2,
        };
        let bytes = encode_rebalance_report(&report);
        assert_eq!(bytes[5], REBALANCE_REPORT_OPCODE);
        assert_eq!(decode_rebalance_report(&bytes).unwrap(), report);
        assert!(report.fully_replicated(2));

        // A command frame is not a report frame, and vice versa.
        let cmd = encode_command(&Command::Stats);
        assert!(matches!(
            decode_rebalance_report(&cmd),
            Err(ProtoError::UnknownOpcode(0x09))
        ));
        assert!(matches!(
            decode_command(&bytes),
            Err(ProtoError::UnknownOpcode(REBALANCE_REPORT_OPCODE))
        ));
        assert!(matches!(
            decode_response(&bytes),
            Err(ProtoError::UnknownOpcode(REBALANCE_REPORT_OPCODE))
        ));
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let cmd = Command::GetResults { query: QueryId(1) };
        let good = encode_command(&cmd);
        // Truncated.
        assert_eq!(decode_command(&good[..5]), Err(ProtoError::Truncated));
        assert_eq!(
            decode_command(&good[..good.len() - 1]),
            Err(ProtoError::Truncated)
        );
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_command(&bad), Err(ProtoError::BadMagic));
        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(decode_command(&bad), Err(ProtoError::BadVersion(99)));
        // Unknown opcode.
        let mut bad = good.clone();
        bad[5] = 0x7F;
        assert!(matches!(
            decode_command(&bad),
            Err(ProtoError::UnknownOpcode(0x7F))
        ));
        // Garbage payload.
        let mut bad = good;
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert!(matches!(
            decode_command(&bad),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn opcode_must_match_variant() {
        let cmd = Command::GetResults { query: QueryId(1) };
        let mut bytes = encode_command(&cmd);
        bytes[5] = 0x01; // claims WriteDb
        assert!(matches!(
            decode_command(&bytes),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn device_full_session_over_the_wire() {
        let mut device = Device::new(DeepStoreConfig::small());
        let mut host = HostClient::new(&mut device);
        let model = zoo::tir().seeded_metric(5);
        let features: Vec<Tensor> = (0..32).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        host.append_db(db, &[model.random_feature(500)]).unwrap();
        let back = host.read_db(db, 32, 1).unwrap();
        assert_eq!(back[0], model.random_feature(500));
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        let q = model.random_feature(0); // exact duplicate of feature 0
        let qid = host
            .query(&q, 1, mid, db, AcceleratorLevel::Channel, false)
            .unwrap();
        let r = host.get_results(qid).unwrap();
        assert_eq!(r.top_k[0].feature_index, 0);
        assert!(device.frames_handled() >= 6);
    }

    #[test]
    fn batched_queries_roundtrip_over_the_wire() {
        let mut device = Device::new(DeepStoreConfig::small());
        device.store_mut().disable_qc();
        let mut host = HostClient::new(&mut device);
        let model = zoo::textqa().seeded_metric(5);
        let features: Vec<Tensor> = (0..24).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        // Probes 3 and 11 are exact duplicates of features 3 and 11.
        let reqs: Vec<QueryRequest> = [3u64, 11]
            .iter()
            .map(|&s| QueryRequest::new(model.random_feature(s), mid, db).k(2))
            .collect();
        let ids = host.query_batch(&reqs).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(host.get_results(ids[0]).unwrap().top_k[0].feature_index, 3);
        assert_eq!(host.get_results(ids[1]).unwrap().top_k[0].feature_index, 11);
    }

    #[test]
    fn stats_roundtrip_over_the_wire() {
        let mut device = Device::new(DeepStoreConfig::small());
        let mut host = HostClient::new(&mut device);
        let model = zoo::textqa().seeded_metric(5);
        let features: Vec<Tensor> = (0..24).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        let qid = host
            .query(
                &model.random_feature(3),
                2,
                mid,
                db,
                AcceleratorLevel::Channel,
                false,
            )
            .unwrap();
        let _ = host.get_results(qid).unwrap();
        // A bare device has no serving layer: the widened frame carries
        // `server: None`.
        let (stats, server) = host.stats_full().unwrap();
        assert!(server.is_none());
        // Flash op counts come from the functional sim and survive the
        // `obs` feature being disabled; the pipeline counters only
        // populate with it enabled.
        assert!(stats.flash.page_reads > 0);
        if cfg!(feature = "obs") {
            assert_eq!(stats.queries, 1);
            assert!(stats.stages.total_ns > 0);
        }
    }

    #[test]
    fn min_coverage_and_degraded_results_roundtrip_over_the_wire() {
        use deepstore_flash::fault::FaultPlan;
        let mut device = Device::new(DeepStoreConfig::small());
        device.store_mut().disable_qc();
        let mut host = HostClient::new(&mut device);
        let model = zoo::tir().seeded_metric(5);
        // 256 tir features fill two blocks, so the database spans two
        // channels and a single dead channel loses only half of it.
        let features: Vec<Tensor> = (0..256).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();

        // `min_coverage` survives command encode/decode exactly.
        let req = QueryRequest::new(model.random_feature(900), mid, db)
            .k(2)
            .min_coverage(0.75);
        let cmd = Command::QueryBatch {
            requests: vec![req],
            request_id: 0,
            sched_lag_ns: 0,
        };
        assert_eq!(decode_command(&encode_command(&cmd)).unwrap(), cmd);

        // Kill one channel: part of the database becomes unreadable and
        // results come back degraded, with coverage on the wire.
        host.device_mut()
            .store_mut()
            .inject_faults(FaultPlan::none().dead_channel(0));
        let reqs = vec![QueryRequest::new(model.random_feature(901), mid, db).k(2)];
        let ids = host.query_batch(&reqs).unwrap();
        let r = host.get_results(ids[0]).unwrap();
        assert!(r.degraded, "a dead channel must degrade the answer");
        assert!(r.coverage > 0.0 && r.coverage < 1.0);
        assert!(!r.top_k.is_empty());

        // The response frame round-trips the new fields bit-exactly.
        let resp = Response::Results(Box::new(r));
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn insufficient_coverage_surfaces_as_device_error() {
        use deepstore_flash::fault::FaultPlan;
        let mut device = Device::new(DeepStoreConfig::small());
        device.store_mut().disable_qc();
        let mut host = HostClient::new(&mut device);
        let model = zoo::textqa().seeded_metric(5);
        let features: Vec<Tensor> = (0..24).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        host.device_mut()
            .store_mut()
            .inject_faults(FaultPlan::none().dead_channel(0));
        let reqs = vec![QueryRequest::new(model.random_feature(902), mid, db)
            .k(2)
            .min_coverage(1.0)];
        let err = host.query_batch(&reqs).unwrap_err();
        match &err {
            ProtoError::Device(WireError::InsufficientCoverage { required, achieved }) => {
                assert_eq!(*required, 1.0);
                assert!(*achieved < 1.0);
            }
            other => panic!("expected a typed coverage error, got {other:?}"),
        }
        // The wire error converts back into the engine's error type.
        assert!(matches!(
            err.device_error(),
            Some(DeepStoreError::InsufficientCoverage { required, .. }) if required == 1.0
        ));
        // The rejected batch published nothing.
        let err = host.get_results(QueryId(0)).unwrap_err();
        assert!(matches!(err, ProtoError::Device(_)));
    }

    #[test]
    fn device_errors_are_frames_not_panics() {
        let mut device = Device::new(DeepStoreConfig::small());
        // Unknown database.
        let resp = device.handle(&encode_command(&Command::ReadDb {
            db: DbId(99),
            start: 0,
            num: 1,
        }));
        assert!(matches!(
            decode_response(&resp).unwrap(),
            Response::Error(_)
        ));
        // Garbage bytes.
        let resp = device.handle(b"not a frame");
        assert!(matches!(
            decode_response(&resp).unwrap(),
            Response::Error(_)
        ));
    }

    #[test]
    fn host_client_surfaces_device_errors() {
        let mut device = Device::new(DeepStoreConfig::small());
        let mut host = HostClient::new(&mut device);
        let err = host.read_db(DbId(42), 0, 1).unwrap_err();
        assert!(matches!(err, ProtoError::Device(_)));
        assert!(matches!(
            err.device_error(),
            Some(DeepStoreError::Remote(_))
        ));
        assert!(!err.is_rejection());
        // Unweighted model rejected through the wire too.
        let err = host
            .load_model(&ModelGraph::from_model(&zoo::tir()))
            .unwrap_err();
        assert!(matches!(err, ProtoError::Device(_)));
        // Structured errors come back as their engine variants, not prose.
        let err = host.get_results(QueryId(77)).unwrap_err();
        assert_eq!(
            err.device_error(),
            Some(DeepStoreError::UnknownQuery(QueryId(77)))
        );
    }

    #[test]
    fn hello_handshake_roundtrips() {
        let mut device = Device::new(DeepStoreConfig::small());
        let mut host = HostClient::new(&mut device);
        host.hello("tenant-a").unwrap();
        let cmd = Command::Hello {
            client: "tenant-a".into(),
            version: PROTOCOL_VERSION,
        };
        let bytes = encode_command(&cmd);
        assert_eq!(bytes[5], 0x0A);
        assert_eq!(decode_command(&bytes).unwrap(), cmd);
    }

    #[test]
    fn hello_version_skew_is_rejected_typed() {
        // A device rejects a mismatched hello with the structured error.
        let mut device = Device::new(DeepStoreConfig::small());
        let resp = device.dispatch(Command::Hello {
            client: "t".into(),
            version: PROTOCOL_VERSION + 1,
        });
        assert_eq!(
            resp,
            Response::Error(WireError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found: PROTOCOL_VERSION + 1,
            })
        );

        // A client rejects an ack that announces a different version.
        struct Canned(Vec<u8>);
        impl CommandChannel for Canned {
            fn exchange(&mut self, _frame: &[u8]) -> Result<Vec<u8>, ProtoError> {
                Ok(self.0.clone())
            }
        }
        let stale_ack = encode_response(&Response::HelloAck {
            client: "t".into(),
            version: PROTOCOL_VERSION + 9,
        });
        let mut host = HostClient::over(Canned(stale_ack));
        let err = host.hello("t").unwrap_err();
        assert_eq!(
            err.device_error(),
            Some(DeepStoreError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found: PROTOCOL_VERSION + 9,
            })
        );
    }

    #[test]
    fn rejection_frames_roundtrip_and_surface_typed() {
        let frames = vec![
            Response::HelloAck {
                client: "t".into(),
                version: PROTOCOL_VERSION,
            },
            Response::Overloaded { queue_depth: 4 },
            Response::QuotaExceeded { client: "t".into() },
            Response::Error(WireError::InsufficientCoverage {
                required: 0.9,
                achieved: 0.25,
            }),
            Response::Error(WireError::Malformed("bad magic".into())),
        ];
        for resp in frames {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
        // A rejection frame surfaces as a typed, retryable error with a
        // structured engine-side equivalent.
        struct Canned(Vec<u8>);
        impl CommandChannel for Canned {
            fn exchange(&mut self, _frame: &[u8]) -> Result<Vec<u8>, ProtoError> {
                Ok(self.0.clone())
            }
        }
        let overloaded = encode_response(&Response::Overloaded { queue_depth: 8 });
        let mut host = HostClient::over(Canned(overloaded));
        let err = host.stats().unwrap_err();
        assert!(err.is_rejection());
        assert_eq!(
            err.device_error(),
            Some(DeepStoreError::Overloaded { queue_depth: 8 })
        );
    }

    #[test]
    fn wire_errors_mirror_engine_errors() {
        let cases = vec![
            DeepStoreError::UnknownModel(ModelId(4)),
            DeepStoreError::UnknownQuery(QueryId(9)),
            DeepStoreError::LevelUnsupported {
                model: "reid".into(),
                level: AcceleratorLevel::Chip,
            },
            DeepStoreError::InsufficientCoverage {
                required: 0.75,
                achieved: 0.5,
            },
            DeepStoreError::Overloaded { queue_depth: 2 },
            DeepStoreError::QuotaExceeded { client: "t".into() },
            DeepStoreError::VersionMismatch {
                expected: 1,
                found: 4,
            },
        ];
        for e in cases {
            let wire = WireError::from(&e);
            assert_eq!(DeepStoreError::from(wire), e, "lossless mirror");
        }
        // Flash errors degrade to prose but keep their message.
        let flash = DeepStoreError::Flash(deepstore_flash::FlashError::UnknownDb(3));
        let wire = WireError::from(&flash);
        assert!(matches!(&wire, WireError::Device(msg) if msg.contains('3')));
    }

    #[test]
    fn stream_framing_reads_and_caps() {
        use std::io::Cursor;
        let frame = encode_command(&Command::Stats);
        // Two frames back to back, then clean EOF.
        let mut stream = Cursor::new([frame.clone(), frame.clone()].concat());
        assert_eq!(proto_read(&mut stream), Some(frame.clone()));
        assert_eq!(proto_read(&mut stream), Some(frame.clone()));
        assert_eq!(read_frame(&mut stream).unwrap(), None);
        // Mid-frame EOF at every split point is a typed disconnect.
        for cut in 1..frame.len() {
            let mut partial = Cursor::new(frame[..cut].to_vec());
            assert_eq!(
                read_frame(&mut partial).unwrap_err(),
                ProtoError::ConnectionClosed,
                "cut at {cut}"
            );
        }
        // An oversized length prefix is rejected before allocation.
        let mut huge = frame.clone();
        huge[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut stream = Cursor::new(huge);
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtoError::FrameTooLarge { .. })
        ));
        // write_frame + read_frame round-trip through a buffer.
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), Some(frame));
    }

    fn proto_read(stream: &mut impl std::io::Read) -> Option<Vec<u8>> {
        read_frame(stream).unwrap()
    }
}
