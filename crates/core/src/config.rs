//! DeepStore configuration: accelerator placements and budgets.
//!
//! Table 3 of the paper fixes the accelerator configuration at each
//! parallelism level, chosen by the design-space exploration of §4.5 under
//! the SSD's resource constraints: a 55 W power envelope (75 W PCIe slot
//! minus ~20 W for the existing SSD hardware), 20 GB/s of controller DRAM
//! bandwidth, and 800 MB/s per flash channel.
//!
//! | Property        | SSD-level   | Channel-level | Chip-level  |
//! |-----------------|-------------|---------------|-------------|
//! | Dataflow        | Systolic OS | Systolic OS   | Systolic WS |
//! | PEs             | 32×64       | 16×64         | 4×32        |
//! | Precision       | fp32        | fp32          | fp32        |
//! | Frequency       | 800 MHz     | 800 MHz       | 400 MHz     |
//! | Scratchpad      | 8 MB shared | 512 KB        | 512 KB      |
//! | Area (mm², 32nm)| 31.7        | 7.4           | 2.5         |

use deepstore_flash::layout::Placement;
use deepstore_flash::SsdConfig;
use deepstore_systolic::{ArrayConfig, Dataflow};
use serde::{Deserialize, Serialize};

/// Which level of SSD parallelism hosts the accelerators (§4.2, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorLevel {
    /// One accelerator beside the SSD controller (❶).
    Ssd,
    /// One accelerator per flash channel (❷) — the paper's most
    /// energy-efficient choice.
    Channel,
    /// One accelerator per flash chip (❸).
    Chip,
}

impl AcceleratorLevel {
    /// All three levels, in Figure 3 order.
    pub const ALL: [AcceleratorLevel; 3] = [
        AcceleratorLevel::Ssd,
        AcceleratorLevel::Channel,
        AcceleratorLevel::Chip,
    ];

    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            AcceleratorLevel::Ssd => "ssd",
            AcceleratorLevel::Channel => "channel",
            AcceleratorLevel::Chip => "chip",
        }
    }
}

impl std::fmt::Display for AcceleratorLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full per-level accelerator description (Table 3 plus power/area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// The level this configuration is for.
    pub level: AcceleratorLevel,
    /// PE array and scratchpad.
    pub array: ArrayConfig,
    /// Per-accelerator power budget, watts (§4.5: 55 W total; 1.71 W per
    /// channel accelerator at 32 channels; 0.43 W per chip accelerator at
    /// 128 chips).
    pub power_budget_w: f64,
    /// Static (leakage + clock-tree) power per accelerator instance,
    /// watts; charged for the full scan duration in the energy model.
    pub static_power_w: f64,
    /// Die area at 32 nm, mm² (Table 3).
    pub area_mm2: f64,
}

impl AcceleratorConfig {
    /// Table 3, SSD-level: 32×64 OS at 800 MHz with the shared 8 MB
    /// scratchpad.
    pub fn ssd_level() -> Self {
        AcceleratorConfig {
            level: AcceleratorLevel::Ssd,
            array: ArrayConfig::new(32, 64, 800e6, Dataflow::OutputStationary, 8 * 1024 * 1024),
            power_budget_w: 55.0,
            static_power_w: 25.0,
            area_mm2: 31.7,
        }
    }

    /// Table 3, channel-level: 16×64 OS at 800 MHz with a 512 KB local
    /// scratchpad (plus the SSD-level 8 MB scratchpad as a shared L2).
    pub fn channel_level() -> Self {
        AcceleratorConfig {
            level: AcceleratorLevel::Channel,
            array: ArrayConfig::new(16, 64, 800e6, Dataflow::OutputStationary, 512 * 1024),
            power_budget_w: 55.0 / 32.0,
            static_power_w: 0.5,
            area_mm2: 7.4,
        }
    }

    /// Table 3, chip-level: 4×32 WS at 400 MHz with a 512 KB scratchpad.
    pub fn chip_level() -> Self {
        AcceleratorConfig {
            level: AcceleratorLevel::Chip,
            array: ArrayConfig::new(4, 32, 400e6, Dataflow::WeightStationary, 512 * 1024),
            power_budget_w: 55.0 / 128.0,
            static_power_w: 0.12,
            area_mm2: 2.5,
        }
    }

    /// The Table 3 configuration for a level.
    pub fn for_level(level: AcceleratorLevel) -> Self {
        match level {
            AcceleratorLevel::Ssd => Self::ssd_level(),
            AcceleratorLevel::Channel => Self::channel_level(),
            AcceleratorLevel::Chip => Self::chip_level(),
        }
    }

    /// Number of accelerator instances for this level on a drive.
    pub fn instances(&self, ssd: &SsdConfig) -> usize {
        match self.level {
            AcceleratorLevel::Ssd => 1,
            AcceleratorLevel::Channel => ssd.geometry.channels,
            AcceleratorLevel::Chip => ssd.geometry.total_chips(),
        }
    }
}

/// Top-level DeepStore configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeepStoreConfig {
    /// The underlying drive.
    pub ssd: SsdConfig,
    /// How features are packed into pages (§4.4; see
    /// [`Placement`] for the trade-off).
    pub placement: Placement,
    /// Query-cache capacity in entries (0 disables the cache).
    pub qc_capacity: usize,
    /// Per-feature controller overhead in accelerator cycles: DFV dequeue
    /// from the FLASH_DFV queue, address generation, score write-back and
    /// the top-K insert (§4.3-4.4).
    pub controller_overhead_cycles: u64,
    /// Power consumed by the stock SSD hardware (controller, DRAM, flash
    /// interface) during a query, watts (§4.5: ~20 W at peak; the share
    /// attributable to query processing).
    pub controller_power_w: f64,
    /// Worker threads for the functional query scan (§4.7.1's map step):
    /// per-channel shards are scored on up to this many workers, each with
    /// its own top-K sorter, and the per-shard results are merged with a
    /// deterministic total order — so results are bit-identical at any
    /// setting. `0` means one worker per available host core. This knob
    /// accelerates host wall-clock time only; the *simulated* query
    /// latency comes from the accelerator timing model and is unaffected.
    pub parallelism: usize,
}

impl DeepStoreConfig {
    /// The paper's evaluated configuration.
    pub fn paper_default() -> Self {
        DeepStoreConfig {
            ssd: SsdConfig::paper_default(),
            placement: Placement::Packed,
            qc_capacity: 1000,
            controller_overhead_cycles: 150,
            controller_power_w: 5.0,
            parallelism: 1,
        }
    }

    /// A scaled-down configuration for functional tests and examples.
    pub fn small() -> Self {
        DeepStoreConfig {
            ssd: SsdConfig::small(),
            placement: Placement::Packed,
            qc_capacity: 16,
            controller_overhead_cycles: 150,
            controller_power_w: 5.0,
            parallelism: 1,
        }
    }

    /// Returns the configuration with the scan-parallelism knob set
    /// (`0` = one worker per available host core).
    #[must_use]
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }
}

impl Default for DeepStoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_pe_counts() {
        assert_eq!(AcceleratorConfig::ssd_level().array.pes(), 2048);
        assert_eq!(AcceleratorConfig::channel_level().array.pes(), 1024);
        assert_eq!(AcceleratorConfig::chip_level().array.pes(), 128);
    }

    #[test]
    fn table3_frequencies_and_dataflows() {
        assert_eq!(AcceleratorConfig::ssd_level().array.freq_hz, 800e6);
        assert_eq!(AcceleratorConfig::chip_level().array.freq_hz, 400e6);
        assert_eq!(
            AcceleratorConfig::ssd_level().array.dataflow,
            Dataflow::OutputStationary
        );
        assert_eq!(
            AcceleratorConfig::chip_level().array.dataflow,
            Dataflow::WeightStationary
        );
    }

    #[test]
    fn instance_counts_follow_geometry() {
        let ssd = SsdConfig::paper_default();
        assert_eq!(AcceleratorConfig::ssd_level().instances(&ssd), 1);
        assert_eq!(AcceleratorConfig::channel_level().instances(&ssd), 32);
        assert_eq!(AcceleratorConfig::chip_level().instances(&ssd), 128);
    }

    #[test]
    fn power_budgets_divide_55w() {
        let ch = AcceleratorConfig::channel_level();
        assert!((ch.power_budget_w - 1.71875).abs() < 1e-6);
        let chip = AcceleratorConfig::chip_level();
        assert!((chip.power_budget_w - 0.4296875).abs() < 1e-6);
    }

    #[test]
    fn for_level_roundtrips() {
        for level in AcceleratorLevel::ALL {
            assert_eq!(AcceleratorConfig::for_level(level).level, level);
        }
    }

    #[test]
    fn level_names() {
        assert_eq!(AcceleratorLevel::Ssd.to_string(), "ssd");
        assert_eq!(AcceleratorLevel::Channel.to_string(), "channel");
        assert_eq!(AcceleratorLevel::Chip.to_string(), "chip");
    }
}
