//! Concurrent serving front end: many clients, one engine.
//!
//! Everything below [`proto`](crate::proto) is single-threaded by
//! design — the embedded cores run one command at a time. This module
//! adds the host-side piece the paper assumes but never shows: a server
//! that multiplexes many independent client connections onto one
//! [`DeepStore`] engine. Three ideas carry the design:
//!
//! * **Transport trait.** Connections arrive through a [`Transport`]
//!   that yields [`Connection`]s. Two implementations ship: an
//!   in-process channel pair ([`channel_transport`]) used by the
//!   deterministic equivalence tests, and a real TCP listener
//!   ([`TcpTransport`]) used by `deepstore serve` and the serving
//!   benchmark. The server code is identical over both.
//!
//! * **The server owns the batch window.** Query commands from
//!   different clients that are co-pending in the job queue are merged
//!   into one [`DeepStore::query_batch`] call, which shares a single
//!   flash pass per `(db, model, level)` group. Because `query_batch`
//!   guarantees per-request results identical to sequential issuance
//!   regardless of grouping, merging arbitrary clients' requests
//!   preserves bit-identical answers — the property
//!   `tests/serve_equivalence.rs` checks against armed fault plans.
//!
//! * **Admission control before the queue.** A bounded pending queue
//!   rejects with a typed `Overloaded` frame when full (backpressure,
//!   never a hang), and optional per-tenant token buckets — keyed by
//!   the client id from the `hello` handshake — reject with
//!   `QuotaExceeded`. Buckets refill on a [`ServeClock`] that tests
//!   can drive manually, making refill deterministic on simulated
//!   time.

use crate::api::{DeepStore, QueryId, QueryRequest};
use crate::proto::{
    decode_command, encode_response, read_frame, read_frame_after, write_frame, Command, Device,
    ProtoError, Response, WireError, PROTOCOL_VERSION,
};
use deepstore_obs::{
    percentile, render_histogram, Counter, FlightRecorder, Histogram, RequestOutcome,
    RequestRecord, DEFAULT_RECORDER_CAPACITY,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Transport abstraction
// ---------------------------------------------------------------------------

/// One accepted client connection, as seen by the server.
///
/// Implementations move whole protocol frames; framing errors surface
/// as typed [`ProtoError`]s so the connection loop can answer with a
/// `Malformed` frame instead of wedging.
pub trait Connection: Send + 'static {
    /// Wait up to `timeout` for the next frame. `Ok(None)` means no
    /// frame arrived yet (poll again); `Err(ProtoError::ConnectionClosed)`
    /// means the peer went away at a frame boundary.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ProtoError>;
    /// Send one complete frame to the peer.
    fn send(&mut self, frame: &[u8]) -> Result<(), ProtoError>;
    /// A human-readable peer label, used as the client id until the
    /// peer introduces itself with `hello`.
    fn peer(&self) -> String;
}

/// A listener that yields [`Connection`]s.
pub trait Transport: Send + 'static {
    /// The connection type this transport accepts.
    type Conn: Connection;
    /// Wait up to `timeout` for the next incoming connection.
    /// `Ok(None)` means none arrived yet.
    fn accept_timeout(&mut self, timeout: Duration) -> Result<Option<Self::Conn>, ProtoError>;
    /// Where this transport listens (e.g. `127.0.0.1:4096` or
    /// `channel`).
    fn endpoint(&self) -> String;
}

// ---------------------------------------------------------------------------
// In-process channel transport
// ---------------------------------------------------------------------------

/// Server side of the in-process transport: a stream of freshly
/// connected [`ChannelServerConn`]s.
pub struct ChannelTransport {
    rx: Receiver<ChannelServerConn>,
}

/// Client-side connector for the in-process transport. Cloneable;
/// each [`connect`](ChannelConnector::connect) yields an independent
/// full-duplex connection.
#[derive(Clone)]
pub struct ChannelConnector {
    tx: Sender<ChannelServerConn>,
    next: Arc<AtomicU64>,
}

/// The server half of one in-process connection.
pub struct ChannelServerConn {
    rx: Receiver<Vec<u8>>,
    tx: Sender<Vec<u8>>,
    peer: String,
}

/// The client half of one in-process connection. Implements
/// [`CommandChannel`](crate::proto::CommandChannel), so it plugs
/// straight into [`HostClient::over`](crate::proto::HostClient::over).
pub struct ChannelClient {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Create a paired in-process transport: the [`ChannelTransport`] goes
/// to [`serve`], the [`ChannelConnector`] to clients.
pub fn channel_transport() -> (ChannelTransport, ChannelConnector) {
    let (tx, rx) = mpsc::channel();
    (
        ChannelTransport { rx },
        ChannelConnector {
            tx,
            next: Arc::new(AtomicU64::new(0)),
        },
    )
}

impl ChannelConnector {
    /// Open a new connection to the server. Fails with
    /// [`ProtoError::ConnectionClosed`] if the server is gone.
    pub fn connect(&self) -> Result<ChannelClient, ProtoError> {
        let (c2s_tx, c2s_rx) = mpsc::channel();
        let (s2c_tx, s2c_rx) = mpsc::channel();
        let n = self.next.fetch_add(1, Ordering::SeqCst);
        self.tx
            .send(ChannelServerConn {
                rx: c2s_rx,
                tx: s2c_tx,
                peer: format!("chan-{n}"),
            })
            .map_err(|_| ProtoError::ConnectionClosed)?;
        Ok(ChannelClient {
            tx: c2s_tx,
            rx: s2c_rx,
        })
    }
}

impl ChannelClient {
    /// Send a raw frame without waiting for a reply. Exists so the
    /// protocol fuzz tests can deliver deliberately malformed bytes.
    pub fn send_frame(&self, frame: &[u8]) -> Result<(), ProtoError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| ProtoError::ConnectionClosed)
    }

    /// Receive the next raw response frame.
    pub fn recv_frame(&self) -> Result<Vec<u8>, ProtoError> {
        self.rx.recv().map_err(|_| ProtoError::ConnectionClosed)
    }
}

impl crate::proto::CommandChannel for ChannelClient {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, ProtoError> {
        self.send_frame(frame)?;
        self.recv_frame()
    }
}

impl Connection for ChannelServerConn {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ProtoError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ProtoError::ConnectionClosed),
        }
    }

    fn send(&mut self, frame: &[u8]) -> Result<(), ProtoError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| ProtoError::ConnectionClosed)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl Transport for ChannelTransport {
    type Conn = ChannelServerConn;

    fn accept_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<ChannelServerConn>, ProtoError> {
        match self.rx.recv_timeout(timeout) {
            Ok(conn) => Ok(Some(conn)),
            // Disconnected just means every connector was dropped; keep
            // polling so the server stays up until shutdown.
            Err(_) => Ok(None),
        }
    }

    fn endpoint(&self) -> String {
        "channel".to_string()
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A real TCP listener transport for [`serve`].
pub struct TcpTransport {
    listener: TcpListener,
    endpoint: String,
}

/// The server half of one accepted TCP connection.
pub struct TcpServerConn {
    stream: TcpStream,
    peer: String,
}

/// A blocking TCP client channel. Implements
/// [`CommandChannel`](crate::proto::CommandChannel) for use with
/// [`HostClient::over`](crate::proto::HostClient::over).
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpTransport {
    /// Bind a listener. Use port `0` to let the OS pick; the chosen
    /// address is reported by [`endpoint`](Transport::endpoint).
    pub fn bind(addr: &str) -> Result<Self, ProtoError> {
        let listener = TcpListener::bind(addr).map_err(io_proto)?;
        listener.set_nonblocking(true).map_err(io_proto)?;
        let endpoint = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(TcpTransport { listener, endpoint })
    }
}

fn io_proto(e: std::io::Error) -> ProtoError {
    ProtoError::Io(e.to_string())
}

impl Transport for TcpTransport {
    type Conn = TcpServerConn;

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Option<TcpServerConn>, ProtoError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    // Accepted sockets may inherit the listener's
                    // non-blocking mode; connection I/O is blocking
                    // with explicit read timeouts. Nagle off: the
                    // protocol is small request/reply frames, and
                    // batching them behind delayed ACKs costs tens of
                    // milliseconds of artificial tail latency.
                    stream.set_nonblocking(false).map_err(io_proto)?;
                    stream.set_nodelay(true).map_err(io_proto)?;
                    return Ok(Some(TcpServerConn {
                        stream,
                        peer: peer.to_string(),
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(io_proto(e)),
            }
        }
    }

    fn endpoint(&self) -> String {
        self.endpoint.clone()
    }
}

impl Connection for TcpServerConn {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ProtoError> {
        // Poll for the first byte with a short timeout, then allow the
        // rest of the frame a generous one: a slow sender mid-frame is
        // not the same as an idle connection.
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(io_proto)?;
        let mut first = [0u8; 1];
        match self.stream.read(&mut first) {
            Ok(0) => return Err(ProtoError::ConnectionClosed),
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return Ok(None),
            Err(e) => return Err(io_proto(e)),
        }
        self.stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(io_proto)?;
        read_frame_after(first[0], &mut self.stream).map(Some)
    }

    fn send(&mut self, frame: &[u8]) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, frame)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl TcpClient {
    /// Connect to a serving endpoint (`host:port`).
    pub fn connect(addr: &str) -> Result<Self, ProtoError> {
        let stream = TcpStream::connect(addr).map_err(io_proto)?;
        stream.set_nodelay(true).map_err(io_proto)?;
        Ok(TcpClient { stream })
    }
}

impl crate::proto::CommandChannel for TcpClient {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, ProtoError> {
        write_frame(&mut self.stream, frame)?;
        match read_frame(&mut self.stream)? {
            Some(resp) => Ok(resp),
            None => Err(ProtoError::ConnectionClosed),
        }
    }
}

// ---------------------------------------------------------------------------
// Clock and per-tenant token buckets
// ---------------------------------------------------------------------------

/// The clock quota refill runs on. Production uses wall time; tests
/// use a manually advanced counter so refill is deterministic.
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Wall-clock time measured from the given epoch.
    Wall(Instant),
    /// Simulated time: a shared nanosecond counter the test advances.
    Manual(Arc<AtomicU64>),
}

impl ServeClock {
    /// A wall clock starting now.
    pub fn wall() -> Self {
        ServeClock::Wall(Instant::now())
    }

    /// A manual clock plus the handle that advances it (store
    /// nanoseconds with `SeqCst`).
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let handle = Arc::new(AtomicU64::new(0));
        (ServeClock::Manual(handle.clone()), handle)
    }

    /// Current time in nanoseconds since the clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            ServeClock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            ServeClock::Manual(t) => t.load(Ordering::SeqCst),
        }
    }
}

/// Per-tenant quota: every client id gets a token bucket holding up to
/// `burst` tokens, refilled continuously at `refill_per_sec`. Each
/// query costs one token (a batch of n costs n); non-query commands
/// are free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity: the largest burst a tenant can issue at once.
    pub burst: f64,
    /// Continuous refill rate, tokens per second.
    pub refill_per_sec: f64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_ns: u64,
}

/// The token-bucket table, one bucket per client id. Public so the
/// admission-control unit tests can drive it on simulated time.
#[derive(Debug)]
pub struct TokenBuckets {
    cfg: QuotaConfig,
    buckets: HashMap<String, Bucket>,
}

impl TokenBuckets {
    /// An empty table; buckets are created full on first use.
    pub fn new(cfg: QuotaConfig) -> Self {
        TokenBuckets {
            cfg,
            buckets: HashMap::new(),
        }
    }

    /// Try to charge `cost` tokens to `client` at time `now_ns`.
    /// Refills the bucket for the elapsed time first. Returns whether
    /// the charge succeeded; a failed charge takes nothing.
    pub fn try_take(&mut self, client: &str, cost: u64, now_ns: u64) -> bool {
        let bucket = self
            .buckets
            .entry(client.to_string())
            .or_insert_with(|| Bucket {
                tokens: self.cfg.burst,
                last_ns: now_ns,
            });
        let dt = now_ns.saturating_sub(bucket.last_ns) as f64 / 1e9;
        bucket.tokens = (bucket.tokens + dt * self.cfg.refill_per_sec).min(self.cfg.burst);
        bucket.last_ns = now_ns;
        let cost = cost as f64;
        if bucket.tokens + 1e-9 >= cost {
            bucket.tokens -= cost;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Server configuration and statistics
// ---------------------------------------------------------------------------

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the bounded pending-job queue. A full queue rejects
    /// with `Overloaded` instead of blocking the connection thread.
    pub queue_depth: usize,
    /// How long the engine holds the first job of a batch open to let
    /// co-pending queries join the same flash pass. `None` coalesces
    /// only jobs that are already queued.
    pub batch_window: Option<Duration>,
    /// Per-tenant quotas; `None` admits everyone.
    pub quota: Option<QuotaConfig>,
    /// Poll interval for idle connections and the accept loop; bounds
    /// shutdown latency.
    pub poll: Duration,
    /// Artificial per-engine-pass service delay. Test-only knob that
    /// makes backpressure deterministic by slowing the consumer.
    pub engine_delay: Option<Duration>,
    /// The clock quota refill runs on.
    pub clock: ServeClock,
    /// Force every served query onto the exact scoring path,
    /// overriding the per-request cascade flag: the server rewrites
    /// `exact = true` into each query before dispatch. Results are
    /// bit-identical either way (the cascade's recall is exactly 1.0);
    /// this is the operational escape hatch / measurement knob.
    pub force_exact: bool,
    /// End-to-end p99 SLO in microseconds. When set, every completed
    /// query re-estimates the e2e p99; the first request that pushes it
    /// over the threshold triggers one flight-recorder dump (reason
    /// `slo_breach`), latched until the estimate recovers. `None`
    /// disables the check.
    pub slo_p99_us: Option<u64>,
    /// Flight-recorder ring capacity (recent request summaries).
    pub recorder_capacity: usize,
    /// Directory for automatic flight-recorder dumps (error responses
    /// and SLO breaches). `None` keeps dumps in memory only
    /// ([`ServeObs::auto_dumps`]).
    pub dump_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 64,
            batch_window: None,
            quota: None,
            poll: Duration::from_millis(2),
            engine_delay: None,
            clock: ServeClock::wall(),
            force_exact: false,
            slo_p99_us: None,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            dump_dir: None,
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    frames: AtomicU64,
    queries_admitted: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_quota: AtomicU64,
    malformed_frames: AtomicU64,
    engine_batches: AtomicU64,
    coalesced_queries: AtomicU64,
}

/// A snapshot of the server's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted over the transport.
    pub connections: u64,
    /// Frames received across all connections.
    pub frames: u64,
    /// Individual queries admitted past admission control.
    pub queries_admitted: u64,
    /// Commands rejected because the pending queue was full.
    pub rejected_overloaded: u64,
    /// Commands rejected by per-tenant quota.
    pub rejected_quota: u64,
    /// Frames that failed to decode (answered with `Malformed`).
    pub malformed_frames: u64,
    /// Engine passes executed (each drains one job batch).
    pub engine_batches: u64,
    /// Queries that ran inside a merged multi-client flash pass.
    pub coalesced_queries: u64,
    /// Per-tenant admission breakdowns, sorted by client id (so equal
    /// workloads produce equal snapshots). Empty when the stats came
    /// from a context with no serving observability.
    pub per_tenant: Vec<TenantStats>,
}

/// Percentile summary of the serve layer's global stage histograms,
/// all in nanoseconds (recorded values are simulated-or-wall clock
/// depending on [`ServeConfig::clock`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePercentiles {
    /// Median admission-to-engine-pickup wait.
    pub queue_p50_ns: u64,
    /// p99 queue wait.
    pub queue_p99_ns: u64,
    /// Median engine service time.
    pub service_p50_ns: u64,
    /// p99 service time.
    pub service_p99_ns: u64,
    /// Median end-to-end latency from scheduled arrival.
    pub e2e_p50_ns: u64,
    /// p99 end-to-end latency.
    pub e2e_p99_ns: u64,
    /// Observations in the end-to-end histogram.
    pub samples: u64,
}

/// One tenant's admission-control counters inside [`ServerStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The client id from the `hello` handshake (or the transport peer
    /// label for connections that never said hello).
    pub client: String,
    /// Queries admitted past admission control (a batch of n counts n).
    pub accepted: u64,
    /// Commands rejected because the pending queue was full.
    pub rejected_overloaded: u64,
    /// Commands rejected by this tenant's token bucket.
    pub rejected_quota: u64,
    /// Query commands answered with an error response.
    pub errors: u64,
    /// Queries answered with less than full coverage.
    pub degraded: u64,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::SeqCst),
            frames: self.frames.load(Ordering::SeqCst),
            queries_admitted: self.queries_admitted.load(Ordering::SeqCst),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::SeqCst),
            rejected_quota: self.rejected_quota.load(Ordering::SeqCst),
            malformed_frames: self.malformed_frames.load(Ordering::SeqCst),
            engine_batches: self.engine_batches.load(Ordering::SeqCst),
            coalesced_queries: self.coalesced_queries.load(Ordering::SeqCst),
            per_tenant: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Serve-layer observability
// ---------------------------------------------------------------------------

/// One tenant's serve-layer instrumentation: admission counters plus
/// queue-wait / service / end-to-end latency histograms. All writes are
/// commutative atomics, so snapshots are interleaving-independent.
#[derive(Debug)]
pub struct TenantObs {
    name: String,
    /// Interned index in the flight recorder's tenant table.
    idx: u64,
    accepted: Counter,
    rejected_overloaded: Counter,
    rejected_quota: Counter,
    errors: Counter,
    degraded: Counter,
    queue_ns: Histogram,
    service_ns: Histogram,
    e2e_ns: Histogram,
}

impl TenantObs {
    /// Whether this tenant has ever had a query admitted or rejected.
    /// Connections are interned at hello time (or under their peer
    /// address before it), so purely administrative clients — `cli
    /// metrics` scrapers, stats pollers — would otherwise clutter every
    /// per-tenant listing with all-zero rows.
    fn has_admissions(&self) -> bool {
        self.accepted.get() + self.rejected_overloaded.get() + self.rejected_quota.get() > 0
    }

    fn stats(&self) -> TenantStats {
        TenantStats {
            client: self.name.clone(),
            accepted: self.accepted.get(),
            rejected_overloaded: self.rejected_overloaded.get(),
            rejected_quota: self.rejected_quota.get(),
            errors: self.errors.get(),
            degraded: self.degraded.get(),
        }
    }
}

/// The server's observability state: global and per-tenant latency
/// histograms, the flight recorder, the request-id allocator, and the
/// SLO breach latch.
///
/// Latency recording and recorder writes are compiled out without the
/// `obs` cargo feature and can also be switched off at runtime
/// ([`ServeObs::set_enabled`]; the `bench_serve --obs-check` gate uses
/// the switch to measure their hot-path cost); request-id assignment
/// and the per-tenant admission counters are functional and always on.
#[derive(Debug)]
pub struct ServeObs {
    queue_ns: Histogram,
    service_ns: Histogram,
    e2e_ns: Histogram,
    errors: Counter,
    degraded: Counter,
    tenants: Mutex<BTreeMap<String, Arc<TenantObs>>>,
    recorder: FlightRecorder,
    /// Runtime kill-switch for the recording hot path (histograms,
    /// recorder writes, dump triggers); see [`ServeObs::set_enabled`].
    enabled: AtomicBool,
    next_request_id: AtomicU64,
    slo_p99_ns: Option<u64>,
    slo_breached: AtomicBool,
    /// Recent automatic dumps, newest last: `(reason, json)`.
    dumps: Mutex<Vec<(String, String)>>,
    dump_dir: Option<PathBuf>,
    dump_seq: AtomicU64,
}

/// In-memory automatic dumps kept per server (oldest evicted first).
const MAX_AUTO_DUMPS: usize = 8;

/// Exercises the per-request recording hot path `iters` times against
/// a worst-case configuration (SLO estimator armed, so every request
/// re-estimates the e2e p99): request-id assignment, the six stage
/// histogram records, the flight-recorder write. Latency inputs vary
/// per iteration so branch history and bucket choice stay realistic.
/// Compiled to almost nothing without the `obs` cargo feature.
///
/// `bench_serve --obs-check` times this loop to price the hot path;
/// not a stable API.
#[doc(hidden)]
pub fn obs_hot_path_exercise(iters: u64) {
    let cfg = ServeConfig {
        // Armed but unreachable: the p99 estimator runs every request,
        // the breach dump never fires.
        slo_p99_us: Some(u64::MAX / 2_000),
        ..ServeConfig::default()
    };
    let obs = ServeObs::new(&cfg);
    let tenant = obs.tenant("bench");
    for i in 0..iters {
        let rid = obs.assign_request_id();
        obs.record_done(
            &tenant,
            rid,
            1,
            5_000 + (i % 1_021),
            250_000 + (i % 17_001),
            270_000 + (i % 19_001),
            1_000,
            RequestOutcome::Ok,
        );
    }
}

impl ServeObs {
    fn new(cfg: &ServeConfig) -> Self {
        ServeObs {
            queue_ns: Histogram::new(),
            service_ns: Histogram::new(),
            e2e_ns: Histogram::new(),
            errors: Counter::new(),
            degraded: Counter::new(),
            tenants: Mutex::new(BTreeMap::new()),
            recorder: FlightRecorder::new(cfg.recorder_capacity),
            enabled: AtomicBool::new(true),
            next_request_id: AtomicU64::new(0),
            slo_p99_ns: cfg.slo_p99_us.map(|us| us.saturating_mul(1000)),
            slo_breached: AtomicBool::new(false),
            dumps: Mutex::new(Vec::new()),
            dump_dir: cfg.dump_dir.clone(),
            dump_seq: AtomicU64::new(0),
        }
    }

    /// A fresh, non-zero request id (0 on the wire means "unassigned").
    fn assign_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Runtime kill-switch for the per-request recording hot path:
    /// latency histograms, flight-recorder writes, and the error/SLO
    /// dump triggers. Defaults to on. Request-id assignment, admission
    /// counters, and error/degraded counters are functional surface
    /// and ignore the switch; without the `obs` cargo feature the hot
    /// path is compiled out and the switch is inert. The `bench_serve
    /// --obs-check` gate flips this between paired measurement rounds
    /// to price the hot path with everything else held equal.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recording hot path runs: compiled in *and* not
    /// switched off at runtime.
    #[inline]
    fn hot_path_enabled(&self) -> bool {
        cfg!(feature = "obs") && self.enabled.load(Ordering::Relaxed)
    }

    /// The (interned) observability handle for a tenant. Takes the
    /// tenant-map lock; callers cache the handle per connection, so
    /// this runs at hello time, not per request.
    fn tenant(&self, name: &str) -> Arc<TenantObs> {
        let mut map = self.tenants.lock().expect("tenant map lock poisoned");
        if let Some(t) = map.get(name) {
            return t.clone();
        }
        let t = Arc::new(TenantObs {
            name: name.to_string(),
            idx: self.recorder.tenant_idx(name),
            accepted: Counter::new(),
            rejected_overloaded: Counter::new(),
            rejected_quota: Counter::new(),
            errors: Counter::new(),
            degraded: Counter::new(),
            queue_ns: Histogram::new(),
            service_ns: Histogram::new(),
            e2e_ns: Histogram::new(),
        });
        map.insert(name.to_string(), t.clone());
        t
    }

    /// Records an admission-control rejection of a query command.
    fn record_rejection(
        &self,
        tenant: &TenantObs,
        outcome: RequestOutcome,
        request_id: u64,
        queries: u64,
        sched_lag_ns: u64,
    ) {
        if self.hot_path_enabled() {
            self.recorder.record(&RequestRecord {
                request_id,
                tenant_idx: tenant.idx,
                queries,
                queue_ns: 0,
                service_ns: 0,
                e2e_ns: sched_lag_ns,
                coverage_milli: 0,
                outcome,
            });
        }
    }

    /// Records a completed query pass: latency histograms (global and
    /// per-tenant), error/degraded counters, the flight-recorder entry,
    /// and the error/SLO dump triggers.
    #[allow(clippy::too_many_arguments)]
    fn record_done(
        &self,
        tenant: &TenantObs,
        request_id: u64,
        queries: u64,
        queue_ns: u64,
        service_ns: u64,
        e2e_ns: u64,
        coverage_milli: u64,
        outcome: RequestOutcome,
    ) {
        match outcome {
            RequestOutcome::Error => {
                self.errors.incr();
                tenant.errors.incr();
            }
            RequestOutcome::Degraded => {
                self.degraded.add(queries);
                tenant.degraded.add(queries);
            }
            _ => {}
        }
        if self.hot_path_enabled() {
            self.queue_ns.record(queue_ns);
            self.service_ns.record(service_ns);
            self.e2e_ns.record(e2e_ns);
            tenant.queue_ns.record(queue_ns);
            tenant.service_ns.record(service_ns);
            tenant.e2e_ns.record(e2e_ns);
            self.recorder.record(&RequestRecord {
                request_id,
                tenant_idx: tenant.idx,
                queries,
                queue_ns,
                service_ns,
                e2e_ns,
                coverage_milli,
                outcome,
            });
            if outcome == RequestOutcome::Error {
                self.auto_dump("error");
            }
            self.check_slo();
        }
    }

    /// Re-estimates the end-to-end p99 and latches a one-shot
    /// `slo_breach` dump when it crosses the configured threshold. The
    /// latch re-arms once the estimate recovers, so a sustained breach
    /// dumps once, not per request.
    fn check_slo(&self) {
        let Some(slo_ns) = self.slo_p99_ns else {
            return;
        };
        let p99 = percentile(&self.e2e_ns.sample("serve.e2e_ns"), 99.0);
        if p99 > slo_ns {
            if !self.slo_breached.swap(true, Ordering::Relaxed) {
                self.auto_dump("slo_breach");
            }
        } else {
            self.slo_breached.store(false, Ordering::Relaxed);
        }
    }

    /// Takes a dump and retains it (memory-capped; optionally a file
    /// under [`ServeConfig::dump_dir`]).
    fn auto_dump(&self, reason: &str) {
        let json = self.recorder.dump(reason);
        if let Some(dir) = &self.dump_dir {
            let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(
                dir.join(format!("flightdump-{seq:03}-{reason}.json")),
                &json,
            );
        }
        let mut dumps = self.dumps.lock().expect("dump store lock poisoned");
        if dumps.len() >= MAX_AUTO_DUMPS {
            dumps.remove(0);
        }
        dumps.push((reason.to_string(), json));
    }

    /// The flight recorder's current ring as deterministic JSON
    /// (the explicit, SIGUSR1-style dump).
    #[must_use]
    pub fn explicit_dump(&self) -> String {
        self.recorder.dump("explicit")
    }

    /// Automatic dumps taken so far (error responses and SLO breaches),
    /// oldest first: `(reason, json)` pairs.
    #[must_use]
    pub fn auto_dumps(&self) -> Vec<(String, String)> {
        self.dumps.lock().expect("dump store lock poisoned").clone()
    }

    /// Samples of the global per-stage histograms, in
    /// `(queue-wait, service, end-to-end)` order.
    #[must_use]
    pub fn stage_samples(
        &self,
    ) -> (
        deepstore_obs::HistogramSample,
        deepstore_obs::HistogramSample,
        deepstore_obs::HistogramSample,
    ) {
        (
            self.queue_ns.sample("serve.queue_ns"),
            self.service_ns.sample("serve.service_ns"),
            self.e2e_ns.sample("serve.e2e_ns"),
        )
    }

    /// Percentile summary of the per-stage histograms (the
    /// `bench_serve` per-rate report). Zeros when built without `obs`.
    #[must_use]
    pub fn stage_percentiles(&self) -> StagePercentiles {
        let (queue, service, e2e) = self.stage_samples();
        StagePercentiles {
            queue_p50_ns: percentile(&queue, 50.0),
            queue_p99_ns: percentile(&queue, 99.0),
            service_p50_ns: percentile(&service, 50.0),
            service_p99_ns: percentile(&service, 99.0),
            e2e_p50_ns: percentile(&e2e, 50.0),
            e2e_p99_ns: percentile(&e2e, 99.0),
            samples: e2e.count,
        }
    }

    fn tenant_list(&self) -> Vec<Arc<TenantObs>> {
        self.tenants
            .lock()
            .expect("tenant map lock poisoned")
            .values()
            .filter(|t| t.has_admissions())
            .cloned()
            .collect()
    }

    /// Per-tenant admission stats, sorted by client id.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.tenant_list().iter().map(|t| t.stats()).collect()
    }

    fn server_stats(&self, inner: &StatsInner) -> ServerStats {
        let mut s = inner.snapshot();
        s.per_tenant = self.tenant_stats();
        s
    }

    /// Renders the serve-layer half of the Prometheus exposition page:
    /// admission counters, global per-stage histograms, and per-tenant
    /// labeled series. Deterministic for equal workloads (tenants render
    /// in client-id order).
    fn render_exposition(&self, inner: &StatsInner) -> String {
        let mut out = String::new();
        let p = "deepstore_serve_";
        let counters: [(&str, u64); 10] = [
            ("connections", inner.connections.load(Ordering::SeqCst)),
            ("frames", inner.frames.load(Ordering::SeqCst)),
            (
                "queries_admitted",
                inner.queries_admitted.load(Ordering::SeqCst),
            ),
            (
                "rejected_overloaded",
                inner.rejected_overloaded.load(Ordering::SeqCst),
            ),
            (
                "rejected_quota",
                inner.rejected_quota.load(Ordering::SeqCst),
            ),
            (
                "malformed_frames",
                inner.malformed_frames.load(Ordering::SeqCst),
            ),
            (
                "engine_batches",
                inner.engine_batches.load(Ordering::SeqCst),
            ),
            (
                "coalesced_queries",
                inner.coalesced_queries.load(Ordering::SeqCst),
            ),
            ("errors", self.errors.get()),
            ("degraded_queries", self.degraded.get()),
        ];
        for (name, value) in counters {
            out.push_str(&format!("# TYPE {p}{name} counter\n{p}{name} {value}\n"));
        }
        render_histogram(
            &mut out,
            p,
            "queue_ns",
            "",
            &self.queue_ns.sample("queue_ns"),
        );
        render_histogram(
            &mut out,
            p,
            "service_ns",
            "",
            &self.service_ns.sample("service_ns"),
        );
        render_histogram(&mut out, p, "e2e_ns", "", &self.e2e_ns.sample("e2e_ns"));

        let tenants = self.tenant_list();
        if tenants.is_empty() {
            return out;
        }
        let label = |t: &TenantObs| format!("tenant=\"{}\"", label_escape(&t.name));
        type TenantCounter = fn(&TenantObs) -> u64;
        type TenantHistogram = fn(&TenantObs) -> &Histogram;
        let tenant_counters: [(&str, TenantCounter); 5] = [
            ("tenant_accepted", |t| t.accepted.get()),
            ("tenant_rejected_overloaded", |t| {
                t.rejected_overloaded.get()
            }),
            ("tenant_rejected_quota", |t| t.rejected_quota.get()),
            ("tenant_errors", |t| t.errors.get()),
            ("tenant_degraded", |t| t.degraded.get()),
        ];
        for (name, get) in tenant_counters {
            out.push_str(&format!("# TYPE {p}{name} counter\n"));
            for t in &tenants {
                out.push_str(&format!("{p}{name}{{{}}} {}\n", label(t), get(t)));
            }
        }
        let tenant_hists: [(&str, TenantHistogram); 3] = [
            ("tenant_queue_ns", |t| &t.queue_ns),
            ("tenant_service_ns", |t| &t.service_ns),
            ("tenant_e2e_ns", |t| &t.e2e_ns),
        ];
        for (name, get) in tenant_hists {
            out.push_str(&format!("# TYPE {p}{name} histogram\n"));
            for t in &tenants {
                deepstore_obs::histo::render_histogram_series(
                    &mut out,
                    &format!("{p}{name}"),
                    &label(t),
                    &get(t).sample(name),
                );
            }
        }
        out
    }
}

/// Escapes a string for use inside a Prometheus label value.
fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct Job {
    cmd: Command,
    reply: Sender<Response>,
    /// The end-to-end trace id (assigned at admission when the frame
    /// arrived with 0).
    request_id: u64,
    /// The issuing tenant's observability handle.
    tenant: Arc<TenantObs>,
    /// Admission timestamp on the serve clock ([`ServeClock::now_ns`]).
    admitted_ns: u64,
    /// Scheduled-arrival lag carried in the frame.
    sched_lag_ns: u64,
}

struct Shared {
    jobs: SyncSender<Job>,
    quota: Option<Mutex<TokenBuckets>>,
    clock: ServeClock,
    stats: Arc<StatsInner>,
    obs: Arc<ServeObs>,
    shutdown: Arc<AtomicBool>,
    poll: Duration,
    queue_depth: usize,
}

impl Shared {
    /// Run admission control and enqueue; on rejection, the typed
    /// rejection frame to send instead.
    fn admit(&self, client: &str, job: Job) -> Result<(), Response> {
        let cost = job.cmd.query_cost();
        let tenant = job.tenant.clone();
        if cost > 0 {
            if let Some(quota) = &self.quota {
                let now = self.clock.now_ns();
                let mut buckets = quota.lock().expect("quota lock poisoned");
                if !buckets.try_take(client, cost, now) {
                    self.stats.rejected_quota.fetch_add(1, Ordering::SeqCst);
                    tenant.rejected_quota.incr();
                    self.obs.record_rejection(
                        &tenant,
                        RequestOutcome::QuotaExceeded,
                        job.request_id,
                        cost,
                        job.sched_lag_ns,
                    );
                    return Err(Response::QuotaExceeded {
                        client: client.to_string(),
                    });
                }
            }
        }
        let (request_id, sched_lag_ns) = (job.request_id, job.sched_lag_ns);
        match self.jobs.try_send(job) {
            Ok(()) => {
                self.stats
                    .queries_admitted
                    .fetch_add(cost, Ordering::SeqCst);
                tenant.accepted.add(cost);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.stats
                    .rejected_overloaded
                    .fetch_add(1, Ordering::SeqCst);
                tenant.rejected_overloaded.incr();
                if cost > 0 {
                    self.obs.record_rejection(
                        &tenant,
                        RequestOutcome::Overloaded,
                        request_id,
                        cost,
                        sched_lag_ns,
                    );
                }
                Err(Response::Overloaded {
                    queue_depth: self.queue_depth as u64,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(Response::Error(WireError::Device(
                "server is shutting down".to_string(),
            ))),
        }
    }
}

fn conn_loop<C: Connection>(mut conn: C, shared: Arc<Shared>) {
    let mut client = conn.peer();
    let mut tenant = shared.obs.tenant(&client);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match conn.recv_timeout(shared.poll) {
            Ok(None) => continue,
            Ok(Some(frame)) => frame,
            Err(ProtoError::ConnectionClosed) => return,
            Err(e) => {
                // A framing error mid-stream leaves the byte stream
                // unsynchronized: answer with a typed error, then hang
                // up rather than misparse everything that follows.
                shared.stats.malformed_frames.fetch_add(1, Ordering::SeqCst);
                let resp = Response::Error(WireError::Malformed(e.to_string()));
                let _ = conn.send(&encode_response(&resp));
                return;
            }
        };
        shared.stats.frames.fetch_add(1, Ordering::SeqCst);
        let resp = match decode_command(&frame) {
            Err(e) => {
                shared.stats.malformed_frames.fetch_add(1, Ordering::SeqCst);
                Response::Error(WireError::Malformed(e.to_string()))
            }
            Ok(Command::Hello {
                client: id,
                version,
            }) => {
                if version == PROTOCOL_VERSION {
                    client = id.clone();
                    tenant = shared.obs.tenant(&client);
                    Response::HelloAck {
                        client: id,
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    Response::Error(WireError::VersionMismatch {
                        expected: PROTOCOL_VERSION,
                        found: version,
                    })
                }
            }
            Ok(mut cmd) => {
                // Assign a request id at admission if the client did
                // not stamp one, so every query pass is joinable across
                // the response frame, the engine trace, and the flight
                // recorder.
                if cmd.request_id() == Some(0) {
                    cmd.set_request_id(shared.obs.assign_request_id());
                }
                let request_id = cmd.request_id().unwrap_or(0);
                let sched_lag_ns = cmd.sched_lag_ns();
                let (reply_tx, reply_rx) = mpsc::channel();
                match shared.admit(
                    &client,
                    Job {
                        cmd,
                        reply: reply_tx,
                        request_id,
                        tenant: tenant.clone(),
                        admitted_ns: shared.clock.now_ns(),
                        sched_lag_ns,
                    },
                ) {
                    Err(rejection) => rejection,
                    Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
                        Response::Error(WireError::Device("server dropped the request".to_string()))
                    }),
                }
            }
        };
        if conn.send(&encode_response(&resp)).is_err() {
            return;
        }
    }
}

/// Drain the job queue until every sender is gone, merging co-pending
/// query jobs into shared flash passes. Returns the device so the
/// caller can recover the store after shutdown.
fn engine_loop(
    rx: Receiver<Job>,
    mut device: Device,
    cfg: ServeConfig,
    stats: Arc<StatsInner>,
    obs: Arc<ServeObs>,
) -> Device {
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        while let Ok(job) = rx.try_recv() {
            jobs.push(job);
        }
        if let Some(window) = cfg.batch_window {
            let deadline = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        if let Some(delay) = cfg.engine_delay {
            thread::sleep(delay);
        }
        stats.engine_batches.fetch_add(1, Ordering::SeqCst);
        // Queue wait ends here for every job in the batch; service time
        // starts. One stamp per batch keeps merged jobs comparable.
        let picked_ns = cfg.clock.now_ns();

        let mut replies: Vec<Option<Response>> = (0..jobs.len()).map(|_| None).collect();
        let query_jobs: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.cmd.query_cost() > 0)
            .map(|(i, _)| i)
            .collect();
        if query_jobs.len() >= 2 {
            // Merge every co-pending query into one engine batch; the
            // engine groups by (db, model, level) internally and
            // answers each request exactly as if issued alone. Request
            // ids ride along so the merged trace stays joinable per
            // originating frame.
            let mut all: Vec<QueryRequest> = Vec::new();
            let mut rids: Vec<u64> = Vec::new();
            let mut spans: Vec<(usize, usize, usize, bool)> = Vec::new();
            for &i in &query_jobs {
                match &jobs[i].cmd {
                    Command::Query {
                        qfv,
                        k,
                        model,
                        db,
                        level,
                        exact,
                        ..
                    } => {
                        spans.push((i, all.len(), 1, true));
                        let mut req = QueryRequest::new(qfv.clone(), *model, *db)
                            .k(*k)
                            .level(*level);
                        if *exact || cfg.force_exact {
                            req = req.exact();
                        }
                        all.push(req);
                        rids.push(jobs[i].request_id);
                    }
                    Command::QueryBatch { requests, .. } => {
                        spans.push((i, all.len(), requests.len(), false));
                        all.extend(requests.iter().cloned().map(|r| {
                            if cfg.force_exact {
                                r.exact()
                            } else {
                                r
                            }
                        }));
                        rids.extend(std::iter::repeat_n(jobs[i].request_id, requests.len()));
                    }
                    _ => unreachable!("query_cost > 0 only for query commands"),
                }
            }
            if let Ok(ids) = device.store_mut().query_batch_tagged(&all, &rids) {
                stats
                    .coalesced_queries
                    .fetch_add(all.len() as u64, Ordering::SeqCst);
                for (i, start, len, single) in spans {
                    replies[i] = Some(if single {
                        Response::QuerySubmitted {
                            id: ids[start],
                            request_id: jobs[i].request_id,
                        }
                    } else {
                        Response::BatchSubmitted {
                            ids: ids[start..start + len].to_vec(),
                            request_id: jobs[i].request_id,
                        }
                    });
                }
            }
            // On a merged-batch error fall through: each job is
            // dispatched alone below, so only the offending client
            // sees its (typed) error.
        }
        for (i, job) in jobs.into_iter().enumerate() {
            let Job {
                cmd,
                reply,
                request_id,
                tenant,
                admitted_ns,
                sched_lag_ns,
            } = job;
            let queries = cmd.query_cost();
            let mut resp = match replies[i].take() {
                Some(resp) => resp,
                None => match cmd {
                    // The flight recorder lives at the serve layer, so
                    // answer dump requests here rather than in the
                    // (recorder-less) device dispatch.
                    Command::Dump => Response::Dump {
                        json: obs.explicit_dump(),
                    },
                    cmd => device.dispatch(apply_force_exact(cmd, cfg.force_exact)),
                },
            };
            match &mut resp {
                Response::Stats { server, .. } => *server = Some(obs.server_stats(&stats)),
                Response::Metrics { text } => text.push_str(&obs.render_exposition(&stats)),
                _ => {}
            }
            if queries > 0 {
                let done_ns = cfg.clock.now_ns();
                let (outcome, coverage_milli) = query_outcome(&device, &resp);
                obs.record_done(
                    &tenant,
                    request_id,
                    queries,
                    picked_ns.saturating_sub(admitted_ns),
                    done_ns.saturating_sub(picked_ns),
                    sched_lag_ns.saturating_add(done_ns.saturating_sub(admitted_ns)),
                    coverage_milli,
                    outcome,
                );
            }
            let _ = reply.send(resp);
        }
    }
    device
}

/// Classifies a query job's response for the flight recorder: the
/// outcome plus the worst per-query coverage in milli-units (1000 =
/// full coverage).
fn query_outcome(device: &Device, resp: &Response) -> (RequestOutcome, u64) {
    let ids: &[QueryId] = match resp {
        Response::QuerySubmitted { id, .. } => std::slice::from_ref(id),
        Response::BatchSubmitted { ids, .. } => ids,
        _ => return (RequestOutcome::Error, 0),
    };
    let mut worst = 1000u64;
    let mut degraded = false;
    for id in ids {
        if let Some(r) = device.store().peek_results(*id) {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let milli = (r.coverage * 1000.0).round() as u64;
            worst = worst.min(milli);
            degraded |= r.degraded;
        }
    }
    if degraded {
        (RequestOutcome::Degraded, worst)
    } else {
        (RequestOutcome::Ok, worst)
    }
}

/// Rewrites query commands onto the exact scoring path when the
/// server's [`ServeConfig::force_exact`] knob is set; every other
/// command (and `force = false`) passes through untouched.
fn apply_force_exact(cmd: Command, force: bool) -> Command {
    if !force {
        return cmd;
    }
    match cmd {
        Command::Query {
            qfv,
            k,
            model,
            db,
            level,
            exact: _,
            request_id,
            sched_lag_ns,
        } => Command::Query {
            qfv,
            k,
            model,
            db,
            level,
            exact: true,
            request_id,
            sched_lag_ns,
        },
        Command::QueryBatch {
            requests,
            request_id,
            sched_lag_ns,
        } => Command::QueryBatch {
            requests: requests.into_iter().map(QueryRequest::exact).collect(),
            request_id,
            sched_lag_ns,
        },
        other => other,
    }
}

/// A running server. Dropping the handle shuts the server down;
/// [`shutdown`](ServerHandle::shutdown) does so explicitly and hands
/// back the engine.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    engine: Option<thread::JoinHandle<Device>>,
    stats: Arc<StatsInner>,
    obs: Arc<ServeObs>,
    endpoint: String,
}

impl ServerHandle {
    /// Where the server listens (e.g. `127.0.0.1:43017`).
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// A live snapshot of the server counters, including per-tenant
    /// admission breakdowns.
    pub fn stats(&self) -> ServerStats {
        self.obs.server_stats(&self.stats)
    }

    /// The serve-layer observability sink: stage histograms, per-tenant
    /// counters, and the flight recorder.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// The serve-layer Prometheus exposition page, as served by
    /// [`Command::Metrics`].
    pub fn serve_exposition(&self) -> String {
        self.obs.render_exposition(&self.stats)
    }

    /// Stop accepting, let in-flight jobs drain (every admitted job is
    /// answered before its connection closes), and recover the store.
    pub fn shutdown(mut self) -> (DeepStore, ServerStats) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let device = self
            .engine
            .take()
            .expect("engine thread taken twice")
            .join()
            .expect("engine thread panicked");
        let stats = self.obs.server_stats(&self.stats);
        (device.into_store(), stats)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

/// Start serving `store` over `transport`.
///
/// Each accepted connection gets its own thread running a
/// receive/decode/admit/reply loop; one engine thread owns the
/// [`Device`] and executes admitted jobs, merging co-pending queries
/// into shared flash passes. Shutdown order guarantees draining: the
/// flag stops connection threads at a frame boundary (after their
/// in-flight reply), the accept thread joins them, and only then do
/// the queue's senders drop — so the engine sees and answers every
/// admitted job before exiting.
pub fn serve<T: Transport>(mut transport: T, store: DeepStore, cfg: ServeConfig) -> ServerHandle {
    let stats = Arc::new(StatsInner::default());
    let obs = Arc::new(ServeObs::new(&cfg));
    let shutdown = Arc::new(AtomicBool::new(false));
    let endpoint = transport.endpoint();
    let (jobs_tx, jobs_rx) = mpsc::sync_channel(cfg.queue_depth);

    let engine_stats = stats.clone();
    let engine_obs = obs.clone();
    let engine_cfg = cfg.clone();
    let device = Device::with_store(store);
    let engine =
        thread::spawn(move || engine_loop(jobs_rx, device, engine_cfg, engine_stats, engine_obs));

    let shared = Arc::new(Shared {
        jobs: jobs_tx,
        quota: cfg.quota.map(|q| Mutex::new(TokenBuckets::new(q))),
        clock: cfg.clock.clone(),
        stats: stats.clone(),
        obs: obs.clone(),
        shutdown: shutdown.clone(),
        poll: cfg.poll,
        queue_depth: cfg.queue_depth,
    });
    let accept_shutdown = shutdown.clone();
    let accept = thread::spawn(move || {
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        while !accept_shutdown.load(Ordering::SeqCst) {
            match transport.accept_timeout(shared.poll) {
                Ok(Some(conn)) => {
                    shared.stats.connections.fetch_add(1, Ordering::SeqCst);
                    let conn_shared = shared.clone();
                    conns.push(thread::spawn(move || conn_loop(conn, conn_shared)));
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
        drop(transport);
        drop(shared);
        for conn in conns {
            let _ = conn.join();
        }
    });

    ServerHandle {
        shutdown,
        accept: Some(accept),
        engine: Some(engine),
        stats,
        obs,
        endpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::QueryId;
    use crate::config::{AcceleratorLevel, DeepStoreConfig};
    use crate::proto::HostClient;
    use deepstore_nn::{zoo, ModelGraph, Tensor};

    fn seeded_store(n: usize) -> (DeepStore, Vec<Tensor>) {
        let model = zoo::textqa().seeded(3);
        let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i as u64)).collect();
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        store.write_db(&features).unwrap();
        store.load_model(&ModelGraph::from_model(&model)).unwrap();
        (store, features)
    }

    fn probe(i: u64) -> Tensor {
        zoo::textqa().seeded(3).random_feature(10_000 + i)
    }

    #[test]
    fn token_bucket_refill_is_deterministic_on_simulated_time() {
        let mut buckets = TokenBuckets::new(QuotaConfig {
            burst: 2.0,
            refill_per_sec: 1.0,
        });
        // Burst of 2 at t=0, third rejected.
        assert!(buckets.try_take("a", 1, 0));
        assert!(buckets.try_take("a", 1, 0));
        assert!(!buckets.try_take("a", 1, 0));
        // Half a second refills half a token: still rejected.
        assert!(!buckets.try_take("a", 1, 500_000_000));
        // The next half second completes the token — and the sequence
        // is identical every run because time is simulated.
        assert!(buckets.try_take("a", 1, 1_000_000_000));
        assert!(!buckets.try_take("a", 1, 1_000_000_000));
        // Refill caps at burst: a long sleep does not bank extra.
        assert!(buckets.try_take("a", 2, 60_000_000_000));
        assert!(!buckets.try_take("a", 1, 60_000_000_000));
        // Tenants are independent.
        assert!(buckets.try_take("b", 2, 60_000_000_000));
    }

    #[test]
    fn queue_full_returns_overloaded_not_a_hang() {
        let (jobs, _rx) = mpsc::sync_channel(1);
        let obs = Arc::new(ServeObs::new(&ServeConfig::default()));
        let tenant = obs.tenant("a");
        let shared = Shared {
            jobs,
            quota: None,
            clock: ServeClock::wall(),
            stats: Arc::new(StatsInner::default()),
            obs,
            shutdown: Arc::new(AtomicBool::new(false)),
            poll: Duration::from_millis(1),
            queue_depth: 1,
        };
        let job = |cmd: Command| {
            let (tx, _rx2) = mpsc::channel();
            Job {
                cmd,
                reply: tx,
                request_id: 0,
                tenant: tenant.clone(),
                admitted_ns: 0,
                sched_lag_ns: 0,
            }
        };
        // _rx never drains, so the second admit must reject — not block.
        assert!(shared.admit("a", job(Command::Stats)).is_ok());
        match shared.admit("a", job(Command::Stats)) {
            Err(Response::Overloaded { queue_depth }) => assert_eq!(queue_depth, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(shared.stats.snapshot().rejected_overloaded, 1);
    }

    #[test]
    fn quota_rejection_over_the_wire_is_deterministic() {
        let (store, _) = seeded_store(16);
        let (clock, _time) = ServeClock::manual();
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                quota: Some(QuotaConfig {
                    burst: 2.0,
                    refill_per_sec: 0.0,
                }),
                clock,
                ..ServeConfig::default()
            },
        );

        let mut host = HostClient::over(connector.connect().unwrap());
        host.hello("tenant-a").unwrap();
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        for i in 0..2 {
            host.query(&probe(i), 3, mid, db, AcceleratorLevel::Ssd, false)
                .unwrap();
        }
        // Third query: bucket empty, refill zero — always rejected.
        let err = host
            .query(&probe(2), 3, mid, db, AcceleratorLevel::Ssd, false)
            .unwrap_err();
        assert!(err.is_rejection());
        assert_eq!(
            err.device_error(),
            Some(crate::error::DeepStoreError::QuotaExceeded {
                client: "tenant-a".to_string()
            })
        );
        // A different tenant still has its full burst.
        let mut other = HostClient::over(connector.connect().unwrap());
        other.hello("tenant-b").unwrap();
        other
            .query(&probe(3), 3, mid, db, AcceleratorLevel::Ssd, false)
            .unwrap();

        let (_store, stats) = handle.shutdown();
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.queries_admitted, 3);
    }

    #[test]
    fn overload_backpressure_answers_every_request() {
        let (store, _) = seeded_store(16);
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                queue_depth: 1,
                engine_delay: Some(Duration::from_millis(40)),
                ..ServeConfig::default()
            },
        );
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        let mut workers = Vec::new();
        for c in 0..4u64 {
            let conn = connector.connect().unwrap();
            workers.push(thread::spawn(move || {
                let mut host = HostClient::over(conn);
                host.hello(&format!("t{c}")).unwrap();
                let mut ok = 0u64;
                let mut rejected = 0u64;
                for i in 0..4u64 {
                    match host.query(&probe(c * 10 + i), 2, mid, db, AcceleratorLevel::Ssd, false) {
                        Ok(_) => ok += 1,
                        Err(e) => {
                            assert!(e.is_rejection(), "unexpected error: {e:?}");
                            rejected += 1;
                        }
                    }
                }
                (ok, rejected)
            }));
        }
        let mut total_ok = 0;
        let mut total_rejected = 0;
        for w in workers {
            let (ok, rejected) = w.join().unwrap();
            total_ok += ok;
            total_rejected += rejected;
        }
        // Every request was answered — success or a typed rejection,
        // never a hang — and the slow engine forced real backpressure.
        assert_eq!(total_ok + total_rejected, 16);
        let (_store, stats) = handle.shutdown();
        assert!(
            stats.rejected_overloaded >= 1,
            "expected backpressure, stats = {stats:?}"
        );
        assert_eq!(stats.rejected_overloaded, total_rejected);
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let (store, _) = seeded_store(16);
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                engine_delay: Some(Duration::from_millis(30)),
                ..ServeConfig::default()
            },
        );
        let conn = connector.connect().unwrap();
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        let client = thread::spawn(move || {
            let mut host = HostClient::over(conn);
            host.query(&probe(0), 3, mid, db, AcceleratorLevel::Ssd, false)
                .unwrap()
        });
        // Give the query time to be admitted, then shut down while the
        // engine is still sleeping on it.
        thread::sleep(Duration::from_millis(10));
        let (mut store, stats) = handle.shutdown();
        let qid: QueryId = client.join().unwrap();
        assert_eq!(stats.queries_admitted, 1);
        // The drained job really ran: its results are in the store.
        let result = store.results(qid).unwrap();
        assert_eq!(result.top_k.len(), 3);
    }

    #[test]
    fn channel_transport_serves_a_full_session() {
        let model = zoo::textqa().seeded(3);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        let (transport, connector) = channel_transport();
        let handle = serve(transport, store, ServeConfig::default());
        assert_eq!(handle.endpoint(), "channel");

        let mut host = HostClient::over(connector.connect().unwrap());
        host.hello("session").unwrap();
        let features: Vec<Tensor> = (0..24).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        let qid = host
            .query(&probe(1), 4, mid, db, AcceleratorLevel::Channel, false)
            .unwrap();
        let result = host.get_results(qid).unwrap();
        assert_eq!(result.top_k.len(), 4);

        let (_store, stats) = handle.shutdown();
        assert_eq!(stats.connections, 1);
        assert!(stats.frames >= 5);
    }

    #[test]
    fn tcp_transport_serves_a_full_session() {
        let model = zoo::textqa().seeded(3);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let handle = serve(transport, store, ServeConfig::default());
        let endpoint = handle.endpoint().to_string();

        let mut host = HostClient::over(TcpClient::connect(&endpoint).unwrap());
        host.hello("tcp-session").unwrap();
        let features: Vec<Tensor> = (0..24).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        let qid = host
            .query(&probe(1), 4, mid, db, AcceleratorLevel::Ssd, false)
            .unwrap();
        let result = host.get_results(qid).unwrap();
        assert_eq!(result.top_k.len(), 4);
        drop(host);

        let (_store, stats) = handle.shutdown();
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn merged_batch_failure_only_fails_the_offending_client() {
        let (store, _) = seeded_store(16);
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                // A window long enough that both clients' queries land
                // in the same engine pass.
                batch_window: Some(Duration::from_millis(50)),
                ..ServeConfig::default()
            },
        );
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        let good_conn = connector.connect().unwrap();
        let bad_conn = connector.connect().unwrap();
        let good = thread::spawn(move || {
            let mut host = HostClient::over(good_conn);
            host.query(&probe(0), 3, mid, db, AcceleratorLevel::Ssd, false)
        });
        let bad = thread::spawn(move || {
            let mut host = HostClient::over(bad_conn);
            // Unknown model: poisons the merged batch, which must fall
            // back to per-client dispatch.
            host.query(
                &probe(1),
                3,
                crate::api::ModelId(999),
                db,
                AcceleratorLevel::Ssd,
                false,
            )
        });
        let good_result = good.join().unwrap();
        let bad_result = bad.join().unwrap();
        assert!(good_result.is_ok(), "good client failed: {good_result:?}");
        let err = bad_result.unwrap_err();
        assert_eq!(
            err.device_error(),
            Some(crate::error::DeepStoreError::UnknownModel(
                crate::api::ModelId(999)
            ))
        );
        drop(handle);
    }
}
