//! Concurrent serving front end: many clients, one engine.
//!
//! Everything below [`proto`](crate::proto) is single-threaded by
//! design — the embedded cores run one command at a time. This module
//! adds the host-side piece the paper assumes but never shows: a server
//! that multiplexes many independent client connections onto one
//! [`DeepStore`] engine. Three ideas carry the design:
//!
//! * **Transport trait.** Connections arrive through a [`Transport`]
//!   that yields [`Connection`]s. Two implementations ship: an
//!   in-process channel pair ([`channel_transport`]) used by the
//!   deterministic equivalence tests, and a real TCP listener
//!   ([`TcpTransport`]) used by `deepstore serve` and the serving
//!   benchmark. The server code is identical over both.
//!
//! * **The server owns the batch window.** Query commands from
//!   different clients that are co-pending in the job queue are merged
//!   into one [`DeepStore::query_batch`] call, which shares a single
//!   flash pass per `(db, model, level)` group. Because `query_batch`
//!   guarantees per-request results identical to sequential issuance
//!   regardless of grouping, merging arbitrary clients' requests
//!   preserves bit-identical answers — the property
//!   `tests/serve_equivalence.rs` checks against armed fault plans.
//!
//! * **Admission control before the queue.** A bounded pending queue
//!   rejects with a typed `Overloaded` frame when full (backpressure,
//!   never a hang), and optional per-tenant token buckets — keyed by
//!   the client id from the `hello` handshake — reject with
//!   `QuotaExceeded`. Buckets refill on a [`ServeClock`] that tests
//!   can drive manually, making refill deterministic on simulated
//!   time.

use crate::api::{DeepStore, QueryRequest};
use crate::proto::{
    decode_command, encode_response, read_frame, read_frame_after, write_frame, Command, Device,
    ProtoError, Response, WireError, PROTOCOL_VERSION,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Transport abstraction
// ---------------------------------------------------------------------------

/// One accepted client connection, as seen by the server.
///
/// Implementations move whole protocol frames; framing errors surface
/// as typed [`ProtoError`]s so the connection loop can answer with a
/// `Malformed` frame instead of wedging.
pub trait Connection: Send + 'static {
    /// Wait up to `timeout` for the next frame. `Ok(None)` means no
    /// frame arrived yet (poll again); `Err(ProtoError::ConnectionClosed)`
    /// means the peer went away at a frame boundary.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ProtoError>;
    /// Send one complete frame to the peer.
    fn send(&mut self, frame: &[u8]) -> Result<(), ProtoError>;
    /// A human-readable peer label, used as the client id until the
    /// peer introduces itself with `hello`.
    fn peer(&self) -> String;
}

/// A listener that yields [`Connection`]s.
pub trait Transport: Send + 'static {
    /// The connection type this transport accepts.
    type Conn: Connection;
    /// Wait up to `timeout` for the next incoming connection.
    /// `Ok(None)` means none arrived yet.
    fn accept_timeout(&mut self, timeout: Duration) -> Result<Option<Self::Conn>, ProtoError>;
    /// Where this transport listens (e.g. `127.0.0.1:4096` or
    /// `channel`).
    fn endpoint(&self) -> String;
}

// ---------------------------------------------------------------------------
// In-process channel transport
// ---------------------------------------------------------------------------

/// Server side of the in-process transport: a stream of freshly
/// connected [`ChannelServerConn`]s.
pub struct ChannelTransport {
    rx: Receiver<ChannelServerConn>,
}

/// Client-side connector for the in-process transport. Cloneable;
/// each [`connect`](ChannelConnector::connect) yields an independent
/// full-duplex connection.
#[derive(Clone)]
pub struct ChannelConnector {
    tx: Sender<ChannelServerConn>,
    next: Arc<AtomicU64>,
}

/// The server half of one in-process connection.
pub struct ChannelServerConn {
    rx: Receiver<Vec<u8>>,
    tx: Sender<Vec<u8>>,
    peer: String,
}

/// The client half of one in-process connection. Implements
/// [`CommandChannel`](crate::proto::CommandChannel), so it plugs
/// straight into [`HostClient::over`](crate::proto::HostClient::over).
pub struct ChannelClient {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Create a paired in-process transport: the [`ChannelTransport`] goes
/// to [`serve`], the [`ChannelConnector`] to clients.
pub fn channel_transport() -> (ChannelTransport, ChannelConnector) {
    let (tx, rx) = mpsc::channel();
    (
        ChannelTransport { rx },
        ChannelConnector {
            tx,
            next: Arc::new(AtomicU64::new(0)),
        },
    )
}

impl ChannelConnector {
    /// Open a new connection to the server. Fails with
    /// [`ProtoError::ConnectionClosed`] if the server is gone.
    pub fn connect(&self) -> Result<ChannelClient, ProtoError> {
        let (c2s_tx, c2s_rx) = mpsc::channel();
        let (s2c_tx, s2c_rx) = mpsc::channel();
        let n = self.next.fetch_add(1, Ordering::SeqCst);
        self.tx
            .send(ChannelServerConn {
                rx: c2s_rx,
                tx: s2c_tx,
                peer: format!("chan-{n}"),
            })
            .map_err(|_| ProtoError::ConnectionClosed)?;
        Ok(ChannelClient {
            tx: c2s_tx,
            rx: s2c_rx,
        })
    }
}

impl ChannelClient {
    /// Send a raw frame without waiting for a reply. Exists so the
    /// protocol fuzz tests can deliver deliberately malformed bytes.
    pub fn send_frame(&self, frame: &[u8]) -> Result<(), ProtoError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| ProtoError::ConnectionClosed)
    }

    /// Receive the next raw response frame.
    pub fn recv_frame(&self) -> Result<Vec<u8>, ProtoError> {
        self.rx.recv().map_err(|_| ProtoError::ConnectionClosed)
    }
}

impl crate::proto::CommandChannel for ChannelClient {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, ProtoError> {
        self.send_frame(frame)?;
        self.recv_frame()
    }
}

impl Connection for ChannelServerConn {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ProtoError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ProtoError::ConnectionClosed),
        }
    }

    fn send(&mut self, frame: &[u8]) -> Result<(), ProtoError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| ProtoError::ConnectionClosed)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl Transport for ChannelTransport {
    type Conn = ChannelServerConn;

    fn accept_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<ChannelServerConn>, ProtoError> {
        match self.rx.recv_timeout(timeout) {
            Ok(conn) => Ok(Some(conn)),
            // Disconnected just means every connector was dropped; keep
            // polling so the server stays up until shutdown.
            Err(_) => Ok(None),
        }
    }

    fn endpoint(&self) -> String {
        "channel".to_string()
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A real TCP listener transport for [`serve`].
pub struct TcpTransport {
    listener: TcpListener,
    endpoint: String,
}

/// The server half of one accepted TCP connection.
pub struct TcpServerConn {
    stream: TcpStream,
    peer: String,
}

/// A blocking TCP client channel. Implements
/// [`CommandChannel`](crate::proto::CommandChannel) for use with
/// [`HostClient::over`](crate::proto::HostClient::over).
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpTransport {
    /// Bind a listener. Use port `0` to let the OS pick; the chosen
    /// address is reported by [`endpoint`](Transport::endpoint).
    pub fn bind(addr: &str) -> Result<Self, ProtoError> {
        let listener = TcpListener::bind(addr).map_err(io_proto)?;
        listener.set_nonblocking(true).map_err(io_proto)?;
        let endpoint = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(TcpTransport { listener, endpoint })
    }
}

fn io_proto(e: std::io::Error) -> ProtoError {
    ProtoError::Io(e.to_string())
}

impl Transport for TcpTransport {
    type Conn = TcpServerConn;

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Option<TcpServerConn>, ProtoError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    // Accepted sockets may inherit the listener's
                    // non-blocking mode; connection I/O is blocking
                    // with explicit read timeouts. Nagle off: the
                    // protocol is small request/reply frames, and
                    // batching them behind delayed ACKs costs tens of
                    // milliseconds of artificial tail latency.
                    stream.set_nonblocking(false).map_err(io_proto)?;
                    stream.set_nodelay(true).map_err(io_proto)?;
                    return Ok(Some(TcpServerConn {
                        stream,
                        peer: peer.to_string(),
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(io_proto(e)),
            }
        }
    }

    fn endpoint(&self) -> String {
        self.endpoint.clone()
    }
}

impl Connection for TcpServerConn {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ProtoError> {
        // Poll for the first byte with a short timeout, then allow the
        // rest of the frame a generous one: a slow sender mid-frame is
        // not the same as an idle connection.
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(io_proto)?;
        let mut first = [0u8; 1];
        match self.stream.read(&mut first) {
            Ok(0) => return Err(ProtoError::ConnectionClosed),
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return Ok(None),
            Err(e) => return Err(io_proto(e)),
        }
        self.stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(io_proto)?;
        read_frame_after(first[0], &mut self.stream).map(Some)
    }

    fn send(&mut self, frame: &[u8]) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, frame)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl TcpClient {
    /// Connect to a serving endpoint (`host:port`).
    pub fn connect(addr: &str) -> Result<Self, ProtoError> {
        let stream = TcpStream::connect(addr).map_err(io_proto)?;
        stream.set_nodelay(true).map_err(io_proto)?;
        Ok(TcpClient { stream })
    }
}

impl crate::proto::CommandChannel for TcpClient {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, ProtoError> {
        write_frame(&mut self.stream, frame)?;
        match read_frame(&mut self.stream)? {
            Some(resp) => Ok(resp),
            None => Err(ProtoError::ConnectionClosed),
        }
    }
}

// ---------------------------------------------------------------------------
// Clock and per-tenant token buckets
// ---------------------------------------------------------------------------

/// The clock quota refill runs on. Production uses wall time; tests
/// use a manually advanced counter so refill is deterministic.
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Wall-clock time measured from the given epoch.
    Wall(Instant),
    /// Simulated time: a shared nanosecond counter the test advances.
    Manual(Arc<AtomicU64>),
}

impl ServeClock {
    /// A wall clock starting now.
    pub fn wall() -> Self {
        ServeClock::Wall(Instant::now())
    }

    /// A manual clock plus the handle that advances it (store
    /// nanoseconds with `SeqCst`).
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let handle = Arc::new(AtomicU64::new(0));
        (ServeClock::Manual(handle.clone()), handle)
    }

    /// Current time in nanoseconds since the clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            ServeClock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            ServeClock::Manual(t) => t.load(Ordering::SeqCst),
        }
    }
}

/// Per-tenant quota: every client id gets a token bucket holding up to
/// `burst` tokens, refilled continuously at `refill_per_sec`. Each
/// query costs one token (a batch of n costs n); non-query commands
/// are free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity: the largest burst a tenant can issue at once.
    pub burst: f64,
    /// Continuous refill rate, tokens per second.
    pub refill_per_sec: f64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_ns: u64,
}

/// The token-bucket table, one bucket per client id. Public so the
/// admission-control unit tests can drive it on simulated time.
#[derive(Debug)]
pub struct TokenBuckets {
    cfg: QuotaConfig,
    buckets: HashMap<String, Bucket>,
}

impl TokenBuckets {
    /// An empty table; buckets are created full on first use.
    pub fn new(cfg: QuotaConfig) -> Self {
        TokenBuckets {
            cfg,
            buckets: HashMap::new(),
        }
    }

    /// Try to charge `cost` tokens to `client` at time `now_ns`.
    /// Refills the bucket for the elapsed time first. Returns whether
    /// the charge succeeded; a failed charge takes nothing.
    pub fn try_take(&mut self, client: &str, cost: u64, now_ns: u64) -> bool {
        let bucket = self
            .buckets
            .entry(client.to_string())
            .or_insert_with(|| Bucket {
                tokens: self.cfg.burst,
                last_ns: now_ns,
            });
        let dt = now_ns.saturating_sub(bucket.last_ns) as f64 / 1e9;
        bucket.tokens = (bucket.tokens + dt * self.cfg.refill_per_sec).min(self.cfg.burst);
        bucket.last_ns = now_ns;
        let cost = cost as f64;
        if bucket.tokens + 1e-9 >= cost {
            bucket.tokens -= cost;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Server configuration and statistics
// ---------------------------------------------------------------------------

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the bounded pending-job queue. A full queue rejects
    /// with `Overloaded` instead of blocking the connection thread.
    pub queue_depth: usize,
    /// How long the engine holds the first job of a batch open to let
    /// co-pending queries join the same flash pass. `None` coalesces
    /// only jobs that are already queued.
    pub batch_window: Option<Duration>,
    /// Per-tenant quotas; `None` admits everyone.
    pub quota: Option<QuotaConfig>,
    /// Poll interval for idle connections and the accept loop; bounds
    /// shutdown latency.
    pub poll: Duration,
    /// Artificial per-engine-pass service delay. Test-only knob that
    /// makes backpressure deterministic by slowing the consumer.
    pub engine_delay: Option<Duration>,
    /// The clock quota refill runs on.
    pub clock: ServeClock,
    /// Force every served query onto the exact scoring path,
    /// overriding the per-request cascade flag: the server rewrites
    /// `exact = true` into each query before dispatch. Results are
    /// bit-identical either way (the cascade's recall is exactly 1.0);
    /// this is the operational escape hatch / measurement knob.
    pub force_exact: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 64,
            batch_window: None,
            quota: None,
            poll: Duration::from_millis(2),
            engine_delay: None,
            clock: ServeClock::wall(),
            force_exact: false,
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    frames: AtomicU64,
    queries_admitted: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_quota: AtomicU64,
    malformed_frames: AtomicU64,
    engine_batches: AtomicU64,
    coalesced_queries: AtomicU64,
}

/// A snapshot of the server's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted over the transport.
    pub connections: u64,
    /// Frames received across all connections.
    pub frames: u64,
    /// Individual queries admitted past admission control.
    pub queries_admitted: u64,
    /// Commands rejected because the pending queue was full.
    pub rejected_overloaded: u64,
    /// Commands rejected by per-tenant quota.
    pub rejected_quota: u64,
    /// Frames that failed to decode (answered with `Malformed`).
    pub malformed_frames: u64,
    /// Engine passes executed (each drains one job batch).
    pub engine_batches: u64,
    /// Queries that ran inside a merged multi-client flash pass.
    pub coalesced_queries: u64,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::SeqCst),
            frames: self.frames.load(Ordering::SeqCst),
            queries_admitted: self.queries_admitted.load(Ordering::SeqCst),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::SeqCst),
            rejected_quota: self.rejected_quota.load(Ordering::SeqCst),
            malformed_frames: self.malformed_frames.load(Ordering::SeqCst),
            engine_batches: self.engine_batches.load(Ordering::SeqCst),
            coalesced_queries: self.coalesced_queries.load(Ordering::SeqCst),
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct Job {
    cmd: Command,
    reply: Sender<Response>,
}

struct Shared {
    jobs: SyncSender<Job>,
    quota: Option<Mutex<TokenBuckets>>,
    clock: ServeClock,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    poll: Duration,
    queue_depth: usize,
}

impl Shared {
    /// Run admission control and enqueue; on rejection, the typed
    /// rejection frame to send instead.
    fn admit(&self, client: &str, job: Job) -> Result<(), Response> {
        let cost = job.cmd.query_cost();
        if cost > 0 {
            if let Some(quota) = &self.quota {
                let now = self.clock.now_ns();
                let mut buckets = quota.lock().expect("quota lock poisoned");
                if !buckets.try_take(client, cost, now) {
                    self.stats.rejected_quota.fetch_add(1, Ordering::SeqCst);
                    return Err(Response::QuotaExceeded {
                        client: client.to_string(),
                    });
                }
            }
        }
        match self.jobs.try_send(job) {
            Ok(()) => {
                self.stats
                    .queries_admitted
                    .fetch_add(cost, Ordering::SeqCst);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.stats
                    .rejected_overloaded
                    .fetch_add(1, Ordering::SeqCst);
                Err(Response::Overloaded {
                    queue_depth: self.queue_depth as u64,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(Response::Error(WireError::Device(
                "server is shutting down".to_string(),
            ))),
        }
    }
}

fn conn_loop<C: Connection>(mut conn: C, shared: Arc<Shared>) {
    let mut client = conn.peer();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match conn.recv_timeout(shared.poll) {
            Ok(None) => continue,
            Ok(Some(frame)) => frame,
            Err(ProtoError::ConnectionClosed) => return,
            Err(e) => {
                // A framing error mid-stream leaves the byte stream
                // unsynchronized: answer with a typed error, then hang
                // up rather than misparse everything that follows.
                shared.stats.malformed_frames.fetch_add(1, Ordering::SeqCst);
                let resp = Response::Error(WireError::Malformed(e.to_string()));
                let _ = conn.send(&encode_response(&resp));
                return;
            }
        };
        shared.stats.frames.fetch_add(1, Ordering::SeqCst);
        let resp = match decode_command(&frame) {
            Err(e) => {
                shared.stats.malformed_frames.fetch_add(1, Ordering::SeqCst);
                Response::Error(WireError::Malformed(e.to_string()))
            }
            Ok(Command::Hello {
                client: id,
                version,
            }) => {
                if version == PROTOCOL_VERSION {
                    client = id.clone();
                    Response::HelloAck {
                        client: id,
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    Response::Error(WireError::VersionMismatch {
                        expected: PROTOCOL_VERSION,
                        found: version,
                    })
                }
            }
            Ok(cmd) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                match shared.admit(
                    &client,
                    Job {
                        cmd,
                        reply: reply_tx,
                    },
                ) {
                    Err(rejection) => rejection,
                    Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
                        Response::Error(WireError::Device("server dropped the request".to_string()))
                    }),
                }
            }
        };
        if conn.send(&encode_response(&resp)).is_err() {
            return;
        }
    }
}

/// Drain the job queue until every sender is gone, merging co-pending
/// query jobs into shared flash passes. Returns the device so the
/// caller can recover the store after shutdown.
fn engine_loop(
    rx: Receiver<Job>,
    mut device: Device,
    cfg: ServeConfig,
    stats: Arc<StatsInner>,
) -> Device {
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        while let Ok(job) = rx.try_recv() {
            jobs.push(job);
        }
        if let Some(window) = cfg.batch_window {
            let deadline = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        if let Some(delay) = cfg.engine_delay {
            thread::sleep(delay);
        }
        stats.engine_batches.fetch_add(1, Ordering::SeqCst);

        let mut replies: Vec<Option<Response>> = (0..jobs.len()).map(|_| None).collect();
        let query_jobs: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.cmd.query_cost() > 0)
            .map(|(i, _)| i)
            .collect();
        if query_jobs.len() >= 2 {
            // Merge every co-pending query into one engine batch; the
            // engine groups by (db, model, level) internally and
            // answers each request exactly as if issued alone.
            let mut all: Vec<QueryRequest> = Vec::new();
            let mut spans: Vec<(usize, usize, usize, bool)> = Vec::new();
            for &i in &query_jobs {
                match &jobs[i].cmd {
                    Command::Query {
                        qfv,
                        k,
                        model,
                        db,
                        level,
                        exact,
                    } => {
                        spans.push((i, all.len(), 1, true));
                        let mut req = QueryRequest::new(qfv.clone(), *model, *db)
                            .k(*k)
                            .level(*level);
                        if *exact || cfg.force_exact {
                            req = req.exact();
                        }
                        all.push(req);
                    }
                    Command::QueryBatch { requests } => {
                        spans.push((i, all.len(), requests.len(), false));
                        all.extend(requests.iter().cloned().map(|r| {
                            if cfg.force_exact {
                                r.exact()
                            } else {
                                r
                            }
                        }));
                    }
                    _ => unreachable!("query_cost > 0 only for query commands"),
                }
            }
            if let Ok(ids) = device.store_mut().query_batch(&all) {
                stats
                    .coalesced_queries
                    .fetch_add(all.len() as u64, Ordering::SeqCst);
                for (i, start, len, single) in spans {
                    replies[i] = Some(if single {
                        Response::QuerySubmitted(ids[start])
                    } else {
                        Response::BatchSubmitted(ids[start..start + len].to_vec())
                    });
                }
            }
            // On a merged-batch error fall through: each job is
            // dispatched alone below, so only the offending client
            // sees its (typed) error.
        }
        for (i, job) in jobs.into_iter().enumerate() {
            let resp = match replies[i].take() {
                Some(resp) => resp,
                None => device.dispatch(apply_force_exact(job.cmd, cfg.force_exact)),
            };
            let _ = job.reply.send(resp);
        }
    }
    device
}

/// Rewrites query commands onto the exact scoring path when the
/// server's [`ServeConfig::force_exact`] knob is set; every other
/// command (and `force = false`) passes through untouched.
fn apply_force_exact(cmd: Command, force: bool) -> Command {
    if !force {
        return cmd;
    }
    match cmd {
        Command::Query {
            qfv,
            k,
            model,
            db,
            level,
            exact: _,
        } => Command::Query {
            qfv,
            k,
            model,
            db,
            level,
            exact: true,
        },
        Command::QueryBatch { requests } => Command::QueryBatch {
            requests: requests.into_iter().map(QueryRequest::exact).collect(),
        },
        other => other,
    }
}

/// A running server. Dropping the handle shuts the server down;
/// [`shutdown`](ServerHandle::shutdown) does so explicitly and hands
/// back the engine.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    engine: Option<thread::JoinHandle<Device>>,
    stats: Arc<StatsInner>,
    endpoint: String,
}

impl ServerHandle {
    /// Where the server listens (e.g. `127.0.0.1:43017`).
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// A live snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stop accepting, let in-flight jobs drain (every admitted job is
    /// answered before its connection closes), and recover the store.
    pub fn shutdown(mut self) -> (DeepStore, ServerStats) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let device = self
            .engine
            .take()
            .expect("engine thread taken twice")
            .join()
            .expect("engine thread panicked");
        let stats = self.stats.snapshot();
        (device.into_store(), stats)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

/// Start serving `store` over `transport`.
///
/// Each accepted connection gets its own thread running a
/// receive/decode/admit/reply loop; one engine thread owns the
/// [`Device`] and executes admitted jobs, merging co-pending queries
/// into shared flash passes. Shutdown order guarantees draining: the
/// flag stops connection threads at a frame boundary (after their
/// in-flight reply), the accept thread joins them, and only then do
/// the queue's senders drop — so the engine sees and answers every
/// admitted job before exiting.
pub fn serve<T: Transport>(mut transport: T, store: DeepStore, cfg: ServeConfig) -> ServerHandle {
    let stats = Arc::new(StatsInner::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let endpoint = transport.endpoint();
    let (jobs_tx, jobs_rx) = mpsc::sync_channel(cfg.queue_depth);

    let engine_stats = stats.clone();
    let engine_cfg = cfg.clone();
    let device = Device::with_store(store);
    let engine = thread::spawn(move || engine_loop(jobs_rx, device, engine_cfg, engine_stats));

    let shared = Arc::new(Shared {
        jobs: jobs_tx,
        quota: cfg.quota.map(|q| Mutex::new(TokenBuckets::new(q))),
        clock: cfg.clock.clone(),
        stats: stats.clone(),
        shutdown: shutdown.clone(),
        poll: cfg.poll,
        queue_depth: cfg.queue_depth,
    });
    let accept_shutdown = shutdown.clone();
    let accept = thread::spawn(move || {
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        while !accept_shutdown.load(Ordering::SeqCst) {
            match transport.accept_timeout(shared.poll) {
                Ok(Some(conn)) => {
                    shared.stats.connections.fetch_add(1, Ordering::SeqCst);
                    let conn_shared = shared.clone();
                    conns.push(thread::spawn(move || conn_loop(conn, conn_shared)));
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
        drop(transport);
        drop(shared);
        for conn in conns {
            let _ = conn.join();
        }
    });

    ServerHandle {
        shutdown,
        accept: Some(accept),
        engine: Some(engine),
        stats,
        endpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::QueryId;
    use crate::config::{AcceleratorLevel, DeepStoreConfig};
    use crate::proto::HostClient;
    use deepstore_nn::{zoo, ModelGraph, Tensor};

    fn seeded_store(n: usize) -> (DeepStore, Vec<Tensor>) {
        let model = zoo::textqa().seeded(3);
        let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i as u64)).collect();
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        store.write_db(&features).unwrap();
        store.load_model(&ModelGraph::from_model(&model)).unwrap();
        (store, features)
    }

    fn probe(i: u64) -> Tensor {
        zoo::textqa().seeded(3).random_feature(10_000 + i)
    }

    #[test]
    fn token_bucket_refill_is_deterministic_on_simulated_time() {
        let mut buckets = TokenBuckets::new(QuotaConfig {
            burst: 2.0,
            refill_per_sec: 1.0,
        });
        // Burst of 2 at t=0, third rejected.
        assert!(buckets.try_take("a", 1, 0));
        assert!(buckets.try_take("a", 1, 0));
        assert!(!buckets.try_take("a", 1, 0));
        // Half a second refills half a token: still rejected.
        assert!(!buckets.try_take("a", 1, 500_000_000));
        // The next half second completes the token — and the sequence
        // is identical every run because time is simulated.
        assert!(buckets.try_take("a", 1, 1_000_000_000));
        assert!(!buckets.try_take("a", 1, 1_000_000_000));
        // Refill caps at burst: a long sleep does not bank extra.
        assert!(buckets.try_take("a", 2, 60_000_000_000));
        assert!(!buckets.try_take("a", 1, 60_000_000_000));
        // Tenants are independent.
        assert!(buckets.try_take("b", 2, 60_000_000_000));
    }

    #[test]
    fn queue_full_returns_overloaded_not_a_hang() {
        let (jobs, _rx) = mpsc::sync_channel(1);
        let shared = Shared {
            jobs,
            quota: None,
            clock: ServeClock::wall(),
            stats: Arc::new(StatsInner::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            poll: Duration::from_millis(1),
            queue_depth: 1,
        };
        let job = |cmd: Command| {
            let (tx, _rx2) = mpsc::channel();
            Job { cmd, reply: tx }
        };
        // _rx never drains, so the second admit must reject — not block.
        assert!(shared.admit("a", job(Command::Stats)).is_ok());
        match shared.admit("a", job(Command::Stats)) {
            Err(Response::Overloaded { queue_depth }) => assert_eq!(queue_depth, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(shared.stats.snapshot().rejected_overloaded, 1);
    }

    #[test]
    fn quota_rejection_over_the_wire_is_deterministic() {
        let (store, _) = seeded_store(16);
        let (clock, _time) = ServeClock::manual();
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                quota: Some(QuotaConfig {
                    burst: 2.0,
                    refill_per_sec: 0.0,
                }),
                clock,
                ..ServeConfig::default()
            },
        );

        let mut host = HostClient::over(connector.connect().unwrap());
        host.hello("tenant-a").unwrap();
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        for i in 0..2 {
            host.query(&probe(i), 3, mid, db, AcceleratorLevel::Ssd, false)
                .unwrap();
        }
        // Third query: bucket empty, refill zero — always rejected.
        let err = host
            .query(&probe(2), 3, mid, db, AcceleratorLevel::Ssd, false)
            .unwrap_err();
        assert!(err.is_rejection());
        assert_eq!(
            err.device_error(),
            Some(crate::error::DeepStoreError::QuotaExceeded {
                client: "tenant-a".to_string()
            })
        );
        // A different tenant still has its full burst.
        let mut other = HostClient::over(connector.connect().unwrap());
        other.hello("tenant-b").unwrap();
        other
            .query(&probe(3), 3, mid, db, AcceleratorLevel::Ssd, false)
            .unwrap();

        let (_store, stats) = handle.shutdown();
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.queries_admitted, 3);
    }

    #[test]
    fn overload_backpressure_answers_every_request() {
        let (store, _) = seeded_store(16);
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                queue_depth: 1,
                engine_delay: Some(Duration::from_millis(40)),
                ..ServeConfig::default()
            },
        );
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        let mut workers = Vec::new();
        for c in 0..4u64 {
            let conn = connector.connect().unwrap();
            workers.push(thread::spawn(move || {
                let mut host = HostClient::over(conn);
                host.hello(&format!("t{c}")).unwrap();
                let mut ok = 0u64;
                let mut rejected = 0u64;
                for i in 0..4u64 {
                    match host.query(&probe(c * 10 + i), 2, mid, db, AcceleratorLevel::Ssd, false) {
                        Ok(_) => ok += 1,
                        Err(e) => {
                            assert!(e.is_rejection(), "unexpected error: {e:?}");
                            rejected += 1;
                        }
                    }
                }
                (ok, rejected)
            }));
        }
        let mut total_ok = 0;
        let mut total_rejected = 0;
        for w in workers {
            let (ok, rejected) = w.join().unwrap();
            total_ok += ok;
            total_rejected += rejected;
        }
        // Every request was answered — success or a typed rejection,
        // never a hang — and the slow engine forced real backpressure.
        assert_eq!(total_ok + total_rejected, 16);
        let (_store, stats) = handle.shutdown();
        assert!(
            stats.rejected_overloaded >= 1,
            "expected backpressure, stats = {stats:?}"
        );
        assert_eq!(stats.rejected_overloaded, total_rejected);
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let (store, _) = seeded_store(16);
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                engine_delay: Some(Duration::from_millis(30)),
                ..ServeConfig::default()
            },
        );
        let conn = connector.connect().unwrap();
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        let client = thread::spawn(move || {
            let mut host = HostClient::over(conn);
            host.query(&probe(0), 3, mid, db, AcceleratorLevel::Ssd, false)
                .unwrap()
        });
        // Give the query time to be admitted, then shut down while the
        // engine is still sleeping on it.
        thread::sleep(Duration::from_millis(10));
        let (mut store, stats) = handle.shutdown();
        let qid: QueryId = client.join().unwrap();
        assert_eq!(stats.queries_admitted, 1);
        // The drained job really ran: its results are in the store.
        let result = store.results(qid).unwrap();
        assert_eq!(result.top_k.len(), 3);
    }

    #[test]
    fn channel_transport_serves_a_full_session() {
        let model = zoo::textqa().seeded(3);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        let (transport, connector) = channel_transport();
        let handle = serve(transport, store, ServeConfig::default());
        assert_eq!(handle.endpoint(), "channel");

        let mut host = HostClient::over(connector.connect().unwrap());
        host.hello("session").unwrap();
        let features: Vec<Tensor> = (0..24).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        let qid = host
            .query(&probe(1), 4, mid, db, AcceleratorLevel::Channel, false)
            .unwrap();
        let result = host.get_results(qid).unwrap();
        assert_eq!(result.top_k.len(), 4);

        let (_store, stats) = handle.shutdown();
        assert_eq!(stats.connections, 1);
        assert!(stats.frames >= 5);
    }

    #[test]
    fn tcp_transport_serves_a_full_session() {
        let model = zoo::textqa().seeded(3);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let handle = serve(transport, store, ServeConfig::default());
        let endpoint = handle.endpoint().to_string();

        let mut host = HostClient::over(TcpClient::connect(&endpoint).unwrap());
        host.hello("tcp-session").unwrap();
        let features: Vec<Tensor> = (0..24).map(|i| model.random_feature(i)).collect();
        let db = host.write_db(&features).unwrap();
        let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
        let qid = host
            .query(&probe(1), 4, mid, db, AcceleratorLevel::Ssd, false)
            .unwrap();
        let result = host.get_results(qid).unwrap();
        assert_eq!(result.top_k.len(), 4);
        drop(host);

        let (_store, stats) = handle.shutdown();
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn merged_batch_failure_only_fails_the_offending_client() {
        let (store, _) = seeded_store(16);
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                // A window long enough that both clients' queries land
                // in the same engine pass.
                batch_window: Some(Duration::from_millis(50)),
                ..ServeConfig::default()
            },
        );
        let (mid, db) = (crate::api::ModelId(1), crate::engine::DbId(1));
        let good_conn = connector.connect().unwrap();
        let bad_conn = connector.connect().unwrap();
        let good = thread::spawn(move || {
            let mut host = HostClient::over(good_conn);
            host.query(&probe(0), 3, mid, db, AcceleratorLevel::Ssd, false)
        });
        let bad = thread::spawn(move || {
            let mut host = HostClient::over(bad_conn);
            // Unknown model: poisons the merged batch, which must fall
            // back to per-client dispatch.
            host.query(
                &probe(1),
                3,
                crate::api::ModelId(999),
                db,
                AcceleratorLevel::Ssd,
                false,
            )
        });
        let good_result = good.join().unwrap();
        let bad_result = bad.join().unwrap();
        assert!(good_result.is_ok(), "good client failed: {good_result:?}");
        let err = bad_result.unwrap_err();
        assert_eq!(
            err.device_error(),
            Some(crate::error::DeepStoreError::UnknownModel(
                crate::api::ModelId(999)
            ))
        );
        drop(handle);
    }
}
