//! The functional in-storage query engine (§4.7.1).
//!
//! This is the software that runs on the SSD's embedded cores: it persists
//! feature databases into the (simulated) flash array through the FTL,
//! keeps their metadata cached in controller DRAM, and executes queries
//! with the map-reduce model — the similarity network is mapped over the
//! per-channel shards of the database, each shard keeps its own top-K
//! sorter, and the engine merges (reduces) the per-shard results into the
//! final top-K.
//!
//! Everything here moves real bytes and computes real similarity scores;
//! the timing model lives in [`crate::accel`] and is attached to query
//! results by [`crate::api::DeepStore`].

use crate::config::DeepStoreConfig;
use crate::error::{DeepStoreError, Result};
use crate::telemetry::ScanMetrics;
use deepstore_flash::array::FlashArray;
use deepstore_flash::fault::ReadFaultStats;
use deepstore_flash::ftl::{BlockFtl, FtlSnapshot, PhysicalBlock};
use deepstore_flash::geometry::PageAddr;
use deepstore_flash::layout::Placement;
use deepstore_flash::obs::{FlashEventCounts, FlashMetrics};
use deepstore_flash::{
    FlashError, FlashOpCounts, FlashStateSnapshot, HeapStore, PageStore, Result as FlashResult,
};
use deepstore_nn::{
    quantize_feature, BoundScorer, FeatureQuant, InferenceScratch, Model, MultiQueryScorer, Tensor,
};
use deepstore_obs::MetricsSnapshot;
use deepstore_systolic::topk::{ScoredFeature, TopKSorter};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a feature database (returned by `writeDB`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DbId(pub u64);

/// A feature's physical location: the paper's `ObjectID` ("physical
/// address of the feature vector") packed as page-index × page-size +
/// offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Per-database metadata (§4.4: "32-byte metadata that includes a db_id,
/// starting physical address, size of each feature, and the number of
/// features"), cached in SSD DRAM and persisted in a reserved block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbMeta {
    /// Database id.
    pub db_id: DbId,
    /// Bytes per feature.
    pub feature_bytes: usize,
    /// Feature count.
    pub num_features: u64,
    /// The database's pages in **logical** order: entry `i` holds bytes
    /// `[i * page_bytes, (i+1) * page_bytes)` of the packed feature
    /// stream. Physical addresses need not be contiguous — resealing a
    /// packed database abandons its partial tail page, and the
    /// replacement lives in the next free slot.
    pub pages: Vec<PageAddr>,
    /// Next physical page slot to program, when the database's current
    /// block still has room. `None` means the next flush allocates a
    /// fresh block. Tracked explicitly (not derived from `pages.len()`)
    /// because abandoned tail pages consume physical slots without
    /// appearing in `pages` — deriving the cursor would re-program them,
    /// which NAND forbids ([`FlashError::ProgramWithoutErase`]). Missing
    /// in older manifests; decodes as `None` (allocate fresh).
    pub cursor: Option<PageAddr>,
}

/// Fault-path outcome of one scan pass, aggregated across its shards in
/// channel order. The counts are functional (identical with `obs` on and
/// off): the retry histogram drives the timing model's retry stall and
/// the per-query trace spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanFaults {
    /// Features skipped because a page stayed unreadable after retries.
    pub skipped: u64,
    /// Per-read retry/recovery/remap/lost statistics.
    pub reads: ReadFaultStats,
}

/// Cascade outcome of one scan pass, summed across its shards in
/// channel order (the counts are commutative sums over the physically
/// determined shard plan, so they are identical at every `parallelism`
/// setting). One unit is one per-request, per-feature admission
/// decision: `pruned` decisions skipped the exact f32 path because the
/// feature's int8 score upper bound fell *strictly* below that
/// request's running top-K threshold; `rescored` decisions cleared (or
/// tied) the bound check and went through exact scoring. Features
/// scored before a request's sorter fills (no threshold yet), and
/// requests the cascade does not apply to (exact opt-out, non-foldable
/// model), count as neither.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Per-request feature decisions that skipped exact scoring.
    pub pruned: u64,
    /// Per-request feature decisions that passed the bound check and
    /// were rescored exactly.
    pub rescored: u64,
}

impl CascadeStats {
    fn merge(&mut self, other: &CascadeStats) {
        self.pruned += other.pruned;
        self.rescored += other.rescored;
    }
}

/// What one [`Engine::recover_faults`] pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Failing blocks retired from the FTL's allocation pool.
    pub blocks_retired: u64,
    /// Database pages soft-decoded and rewritten into fresh blocks.
    pub pages_remapped: u64,
    /// Database pages with no remap source (data is gone).
    pub pages_lost: u64,
}

impl RecoveryReport {
    /// True if the pass did nothing (no blocks were pending).
    pub fn is_empty(&self) -> bool {
        *self == RecoveryReport::default()
    }
}

/// What an [`Engine::probe_db`] scrub pass observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbProbe {
    /// Features readable through the retried read path right now.
    pub readable: u64,
    /// Features whose backing pages fail every read attempt.
    pub unreadable: u64,
}

impl DbProbe {
    /// True when every feature of the database is readable.
    pub fn healthy(&self) -> bool {
        self.unreadable == 0
    }
}

/// The in-storage engine state.
#[derive(Debug)]
pub struct Engine {
    cfg: DeepStoreConfig,
    array: FlashArray,
    ftl: BlockFtl,
    dbs: HashMap<DbId, DbMeta>,
    next_db: u64,
    /// Write buffer per open database (packed placement buffers partial
    /// pages until they fill or the database is sealed; §4.7.2:
    /// "DeepStore buffers writes to ensure the alignment criteria").
    write_buffers: HashMap<DbId, Vec<u8>>,
    /// Per-database int8 quantized sidecar, built at append time, one
    /// entry per feature (§: pruning cascade). Kept in controller DRAM
    /// next to [`DbMeta`]; scans use it to compute cheap score upper
    /// bounds. Invariant: `quant[db].len() == dbs[db].num_features`,
    /// maintained even through partial (out-of-space) appends.
    quant: HashMap<DbId, Vec<FeatureQuant>>,
    /// Features skipped during scans because their pages failed ECC.
    /// Atomic so scans can run on `&self` (queries are read-only).
    /// Kept as the derived sum over all scans; per-query attribution
    /// comes from the `_counted` scan variants.
    unreadable_skipped: AtomicU64,
    /// Scan-path telemetry, recorded once per scan call.
    metrics: ScanMetrics,
}

impl Engine {
    /// Creates an engine over a fresh, volatile (heap-backed) flash
    /// array.
    pub fn new(cfg: DeepStoreConfig) -> Self {
        let page_bytes = cfg.ssd.geometry.page_bytes;
        Engine::with_store(cfg, Box::new(HeapStore::new(page_bytes)))
    }

    /// Creates an engine over a fresh flash array whose page payloads
    /// live in `store` — the storage-backend seam: a [`HeapStore`] gives
    /// the classic volatile device, a
    /// [`deepstore_flash::MmapStore`] a persistent single-file image.
    /// The store must be empty (freshly created); use
    /// [`Engine::restore`] to resurrect an engine from a previously
    /// committed image.
    pub fn with_store(cfg: DeepStoreConfig, store: Box<dyn PageStore>) -> Self {
        let geometry = cfg.ssd.geometry;
        let mut array = FlashArray::with_store(geometry, store);
        array.set_read_retry(cfg.ssd.timing.read_retry.clone());
        Engine {
            cfg,
            array,
            ftl: BlockFtl::new(geometry),
            dbs: HashMap::new(),
            next_db: 1,
            write_buffers: HashMap::new(),
            quant: HashMap::new(),
            unreadable_skipped: AtomicU64::new(0),
            metrics: ScanMetrics::new(),
        }
    }

    /// Resurrects an engine from persisted state: `store` supplies the
    /// page payloads (typically a just-opened
    /// [`deepstore_flash::MmapStore`]) and the snapshots supply the
    /// semantic state a manifest recorded at commit time. The read-retry
    /// policy is re-derived from `cfg`; int8 quantized sidecars are
    /// rebuilt by decoding every database's features straight out of the
    /// store (via the counter-free peek path, so
    /// [`Engine::flash_op_counts`] resumes exactly where the persisted
    /// counters left off).
    pub fn restore(
        cfg: DeepStoreConfig,
        store: Box<dyn PageStore>,
        flash: &FlashStateSnapshot,
        ftl: &FtlSnapshot,
        dbs: Vec<DbMeta>,
        write_buffers: Vec<(u64, Vec<u8>)>,
        next_db: u64,
    ) -> Self {
        let geometry = cfg.ssd.geometry;
        let mut array = FlashArray::with_store(geometry, store);
        array.set_read_retry(cfg.ssd.timing.read_retry.clone());
        array.restore_state(flash);
        let ftl = BlockFtl::from_snapshot(geometry, ftl);
        let mut engine = Engine {
            cfg,
            array,
            ftl,
            dbs: dbs.into_iter().map(|m| (m.db_id, m)).collect(),
            next_db,
            write_buffers: write_buffers
                .into_iter()
                .map(|(id, buf)| (DbId(id), buf))
                .collect(),
            quant: HashMap::new(),
            unreadable_skipped: AtomicU64::new(0),
            metrics: ScanMetrics::new(),
        };
        engine.rebuild_quant();
        engine
    }

    /// Rebuilds every database's int8 quantized sidecar from the bytes
    /// actually durable in the store (plus any unsealed write-buffer
    /// tail), in ascending database order. Uses the counter-free
    /// [`FlashArray::peek_page`] path so flash op counts don't move. A
    /// database whose features cannot all be decoded (a page missing
    /// from the programmed set) gets no sidecar — the scan's
    /// `quant.len() == num_features` guard then simply disables the
    /// cascade for it.
    fn rebuild_quant(&mut self) {
        let page_bytes = self.cfg.ssd.geometry.page_bytes;
        let mut ids: Vec<DbId> = self.dbs.keys().copied().collect();
        ids.sort_unstable();
        let empty = Vec::new();
        let mut rebuilt: Vec<(DbId, Vec<FeatureQuant>)> = Vec::with_capacity(ids.len());
        for db in ids {
            let meta = &self.dbs[&db];
            let fb = meta.feature_bytes;
            let buf = self.write_buffers.get(&db).unwrap_or(&empty);
            // Logical byte stream: the durable pages in order, then the
            // buffered tail (exactly where a seal would flush it).
            let durable = meta.pages.len() * page_bytes;
            let ppf = fb.div_ceil(page_bytes);
            let mut bytes = vec![0u8; fb];
            let mut floats = vec![0f32; fb / 4];
            let mut quants = Vec::with_capacity(meta.num_features as usize);
            'features: for idx in 0..meta.num_features {
                let start = match self.cfg.placement {
                    Placement::Packed => idx as usize * fb,
                    Placement::PageAligned => idx as usize * ppf * page_bytes,
                };
                let mut off = 0usize;
                while off < fb {
                    let pos = start + off;
                    if pos < durable {
                        let in_page = pos % page_bytes;
                        let take = (fb - off).min(page_bytes - in_page);
                        let page = meta
                            .pages
                            .get(pos / page_bytes)
                            .and_then(|&a| self.array.peek_page(a));
                        match page {
                            Some(p) => {
                                bytes[off..off + take].copy_from_slice(&p[in_page..in_page + take]);
                            }
                            None => break 'features,
                        }
                        off += take;
                    } else {
                        let tail = pos - durable;
                        let take = fb - off;
                        if tail + take > buf.len() {
                            break 'features;
                        }
                        bytes[off..off + take].copy_from_slice(&buf[tail..tail + take]);
                        off += take;
                    }
                }
                for (chunk, f) in bytes.chunks_exact(4).zip(&mut floats) {
                    *f = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                quants.push(quantize_feature(&floats));
            }
            if quants.len() as u64 == meta.num_features {
                rebuilt.push((db, quants));
            }
        }
        self.quant = rebuilt.into_iter().collect();
    }

    /// Installs a read-fault plan on the underlying flash array (testing
    /// and reliability studies).
    pub fn inject_faults(&mut self, faults: deepstore_flash::fault::FaultPlan) {
        self.array.inject_faults(faults);
    }

    /// Blocks that failed permanently during reads and await
    /// [`Engine::recover_faults`].
    pub fn pending_retirements(&self) -> usize {
        self.array.pending_retirements()
    }

    /// Blocks the FTL has retired (removed from allocation) so far.
    pub fn retired_block_count(&self) -> usize {
        self.ftl.retired_blocks()
    }

    /// The recovery pipeline: drains the queue of permanently-failing
    /// blocks, soft-decodes every database page still living in them
    /// (the last-gasp read), rewrites the recovered pages into freshly
    /// allocated blocks, repoints the database metadata, and retires the
    /// bad blocks from the FTL's allocation pool.
    ///
    /// Data is lost only when a page has no remap source (outage-domain
    /// pages never enter the queue, so in practice: when the drive is
    /// out of replacement blocks). Blocks whose pages could not all be
    /// remapped stay un-repointed so later reads keep reporting the ECC
    /// failure honestly.
    ///
    /// Runs on `&mut self` between query batches — never during a scan.
    pub fn recover_faults(&mut self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let geometry = self.cfg.ssd.geometry;
        let ppb = geometry.pages_per_block as u64;
        for block_idx in self.array.take_pending_retirements() {
            let base = geometry.page_from_index(block_idx * ppb);
            let old = PhysicalBlock {
                channel: base.channel,
                chip: base.chip,
                plane: base.plane,
                block: base.block,
            };
            // Gather every database page living in the failing block, in
            // deterministic (db, position) order — the db map iterates in
            // hash order.
            let mut victims: Vec<(DbId, usize)> = Vec::new();
            for (db, meta) in &self.dbs {
                for (pos, addr) in meta.pages.iter().enumerate() {
                    if geometry.page_index(*addr) / ppb == block_idx {
                        victims.push((*db, pos));
                    }
                }
            }
            victims.sort_unstable();
            // Last-gasp soft-decode before touching the FTL: if any page
            // has no remap source the whole block's data stays put (the
            // block is still retired so the allocator never reuses it).
            let mut recovered: Vec<(DbId, usize, usize, Vec<u8>)> = Vec::new();
            let mut lost = 0u64;
            for &(db, pos) in &victims {
                let addr = self.dbs[&db].pages[pos];
                match self.array.recover_page_bytes(addr) {
                    Some(bytes) => recovered.push((db, pos, addr.page, bytes)),
                    None => lost += 1,
                }
            }
            let replacement = if lost == 0 && !recovered.is_empty() {
                self.ftl.allocate(&mut self.array).ok()
            } else {
                None
            };
            match replacement {
                Some((_, fresh)) => {
                    let remapped = recovered.len() as u64;
                    for (db, pos, page, bytes) in recovered {
                        let new_addr = fresh.page(page);
                        self.array
                            .program(new_addr, &bytes)
                            .expect("replacement block is freshly erased");
                        self.dbs.get_mut(&db).expect("victim db exists").pages[pos] = new_addr;
                    }
                    report.pages_remapped += remapped;
                    self.array.metrics().on_remap(remapped);
                }
                None => {
                    // No remap source or no spare capacity: every victim
                    // page of this block is lost.
                    lost += recovered.len() as u64;
                }
            }
            if lost > 0 {
                report.pages_lost += lost;
                self.array.metrics().on_lost(lost);
            }
            self.ftl.retire(old);
            report.blocks_retired += 1;
        }
        report
    }

    /// Features skipped by scans due to uncorrectable reads so far.
    /// Intelligent queries tolerate approximation, so a scan skips
    /// unreadable features (slightly reducing recall) instead of failing.
    pub fn unreadable_skipped(&self) -> u64 {
        self.unreadable_skipped.load(Ordering::Relaxed)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DeepStoreConfig {
        &self.cfg
    }

    /// Sets the scan worker count (`0` = one worker per available host
    /// core). Purely a host wall-clock knob; results and simulated
    /// timing are unchanged.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.cfg.parallelism = workers;
    }

    /// Metadata for a database.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] for unknown ids.
    pub fn db_meta(&self, db: DbId) -> Result<&DbMeta> {
        self.dbs
            .get(&db)
            .ok_or(DeepStoreError::Flash(FlashError::UnknownDb(db.0)))
    }

    /// Operation counters issued to the flash array so far. `reads`
    /// counts one per page access — the batched scan's
    /// one-pass-per-shard guarantee is asserted against this counter.
    pub fn flash_op_counts(&self) -> FlashOpCounts {
        self.array.op_counts()
    }

    /// Scrub probe: attempts to read every feature of `db` through the
    /// normal retried read path and reports how many are currently
    /// readable. Transient faults that the retry ladder recovers count
    /// as readable — the probe sees exactly the coverage a scan would —
    /// while permanent and outage-domain failures count as unreadable.
    /// Used by cluster rebalancing to decide whether a replica still
    /// holds its full partition.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] for unknown ids.
    pub fn probe_db(&self, db: DbId) -> Result<DbProbe> {
        let meta = self.db_meta(db)?;
        let mut probe = DbProbe::default();
        for idx in 0..meta.num_features {
            if self.read_feature_with(meta, idx).is_ok() {
                probe.readable += 1;
            } else {
                probe.unreadable += 1;
            }
        }
        Ok(probe)
    }

    /// A summary of the flash array's outage domains (dead channels and
    /// chips) under the currently armed fault plan. Surfaces the fault
    /// topology to the cluster layer, which must distinguish "this
    /// drive lost a channel" (route around the holes) from "this drive
    /// is gone" (stop placing replicas on it).
    pub fn outage_summary(&self) -> deepstore_flash::OutageSummary {
        self.array.faults().outage_summary(&self.cfg.ssd.geometry)
    }

    /// Which storage backend holds the page payloads (`"heap"` or
    /// `"mmap"`).
    pub fn backend(&self) -> &'static str {
        self.array.backend()
    }

    /// Whether committed device state survives process exit.
    pub fn is_persistent(&self) -> bool {
        self.array.is_persistent()
    }

    /// Commits `manifest` to the persistent backend with the crash-safe
    /// ordering documented in [`deepstore_flash::image`]. `clean` marks
    /// the image cleanly closed.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Image`] if the backend is volatile or the
    /// commit fails (the previous commit stays authoritative).
    pub fn commit(&mut self, manifest: &[u8], clean: bool) -> FlashResult<()> {
        self.array.commit(manifest, clean)
    }

    /// Flash-array semantic state for a manifest.
    pub fn flash_snapshot(&self) -> FlashStateSnapshot {
        self.array.state_snapshot()
    }

    /// FTL allocation state for a manifest.
    pub fn ftl_snapshot(&self) -> FtlSnapshot {
        self.ftl.snapshot()
    }

    /// Every database's metadata, sorted by database id.
    pub fn db_metas(&self) -> Vec<DbMeta> {
        let mut metas: Vec<DbMeta> = self.dbs.values().cloned().collect();
        metas.sort_by_key(|m| m.db_id);
        metas
    }

    /// Non-empty unsealed write buffers as sorted `(db_id, bytes)`
    /// pairs.
    pub fn write_buffer_snapshot(&self) -> Vec<(u64, Vec<u8>)> {
        let mut bufs: Vec<(u64, Vec<u8>)> = self
            .write_buffers
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(db, b)| (db.0, b.clone()))
            .collect();
        bufs.sort_by_key(|(id, _)| *id);
        bufs
    }

    /// The next database id the engine would hand out.
    pub fn next_db_raw(&self) -> u64 {
        self.next_db
    }

    /// The flash array's telemetry hooks (ECC failures, GC, bus waits).
    pub fn flash_metrics(&self) -> &FlashMetrics {
        self.array.metrics()
    }

    /// A snapshot of every flash event count.
    pub fn flash_event_counts(&self) -> FlashEventCounts {
        self.array.event_counts()
    }

    /// A deterministic snapshot of the engine's scan counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Creates a database from feature vectors (the `writeDB` API).
    ///
    /// # Errors
    ///
    /// * [`FlashError::SizeMismatch`] if the features differ in length or
    ///   are empty.
    /// * [`FlashError::OutOfSpace`] if the drive fills up.
    pub fn write_db(&mut self, features: &[Tensor]) -> Result<DbId> {
        let first = features.first().ok_or(FlashError::SizeMismatch {
            expected: 1,
            found: 0,
        })?;
        let feature_bytes = first.len() * 4;
        let db = DbId(self.next_db);
        self.next_db += 1;
        self.dbs.insert(
            db,
            DbMeta {
                db_id: db,
                feature_bytes,
                num_features: 0,
                pages: Vec::new(),
                cursor: None,
            },
        );
        self.write_buffers.insert(db, Vec::new());
        self.quant.insert(db, Vec::new());
        self.append_db(db, features)?;
        Ok(db)
    }

    /// Appends features to an existing database (the `appendDB` API).
    ///
    /// # Errors
    ///
    /// * [`FlashError::UnknownDb`] for unknown ids.
    /// * [`FlashError::SizeMismatch`] if a feature has the wrong length.
    /// * [`FlashError::OutOfSpace`] if the drive fills up.
    pub fn append_db(&mut self, db: DbId, features: &[Tensor]) -> Result<()> {
        let feature_bytes = self.db_meta(db)?.feature_bytes;
        let page_bytes = self.cfg.ssd.geometry.page_bytes;
        match self.cfg.placement {
            Placement::Packed => {
                // Take the write buffer out of the map once (one lookup
                // per append, not per feature) and flush full pages by
                // advancing a cursor; draining the flushed prefix once at
                // the end replaces the per-page front-drain that shifted
                // the whole tail each time (O(n·page) in the old code).
                let mut buf = self.write_buffers.remove(&db).unwrap_or_default();
                // Un-seal: if the database was sealed with a partial tail
                // page, pull those bytes back into the write buffer and
                // abandon the tail page, so the packed byte stream stays
                // dense across the logical `pages` vector. The abandoned
                // slot is never reused — `flush_page`'s physical cursor
                // already points past it.
                if buf.is_empty() {
                    let meta = self.dbs.get(&db).expect("checked above");
                    let tail =
                        (meta.num_features * feature_bytes as u64 % page_bytes as u64) as usize;
                    if tail != 0 && !meta.pages.is_empty() {
                        let addr = *meta.pages.last().expect("non-empty");
                        let page = self
                            .array
                            .peek_page(addr)
                            .expect("sealed tail page is programmed");
                        buf.extend_from_slice(&page[..tail]);
                        self.dbs.get_mut(&db).expect("checked above").pages.pop();
                    }
                }
                let mut cursor = 0usize;
                let mut append = || -> Result<()> {
                    for f in features {
                        if f.len() * 4 != feature_bytes {
                            return Err(FlashError::SizeMismatch {
                                expected: feature_bytes,
                                found: f.len() * 4,
                            }
                            .into());
                        }
                        for v in f.data() {
                            buf.extend_from_slice(&v.to_le_bytes());
                        }
                        while buf.len() - cursor >= page_bytes {
                            let start = cursor;
                            cursor += page_bytes;
                            self.flush_page(db, &buf[start..cursor])?;
                        }
                        self.dbs.get_mut(&db).expect("checked above").num_features += 1;
                        self.quant
                            .entry(db)
                            .or_default()
                            .push(quantize_feature(f.data()));
                    }
                    Ok(())
                };
                let result = append();
                buf.drain(..cursor);
                self.write_buffers.insert(db, buf);
                result
            }
            Placement::PageAligned => {
                let mut bytes = Vec::with_capacity(feature_bytes);
                for f in features {
                    if f.len() * 4 != feature_bytes {
                        return Err(FlashError::SizeMismatch {
                            expected: feature_bytes,
                            found: f.len() * 4,
                        }
                        .into());
                    }
                    bytes.clear();
                    for v in f.data() {
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                    for chunk in bytes.chunks(page_bytes) {
                        self.flush_page(db, chunk)?;
                    }
                    self.dbs.get_mut(&db).expect("checked above").num_features += 1;
                    self.quant
                        .entry(db)
                        .or_default()
                        .push(quantize_feature(f.data()));
                }
                Ok(())
            }
        }
    }

    /// Seals a database: flushes any partial write buffer so every feature
    /// is durable and readable.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfSpace`] if the final page cannot be
    /// allocated, or [`FlashError::UnknownDb`] for unknown ids.
    pub fn seal_db(&mut self, db: DbId) -> Result<()> {
        self.db_meta(db)?;
        if let Some(buf) = self.write_buffers.get_mut(&db) {
            let rest: Vec<u8> = std::mem::take(buf);
            if !rest.is_empty() {
                self.flush_page(db, &rest)?;
            }
        }
        Ok(())
    }

    fn flush_page(&mut self, db: DbId, data: &[u8]) -> FlashResult<()> {
        // Allocate a fresh page in stripe order. The FTL allocates whole
        // blocks striped across channels; within a database we cycle
        // through blocks page-by-page via an explicit physical cursor
        // stored in the metadata. The cursor cannot be derived from
        // `pages` — resealing a packed database abandons partial tail
        // pages, so programmed slots exist that `pages` no longer lists.
        let pages_per_block = self.cfg.ssd.geometry.pages_per_block;
        let addr = match self.dbs.get(&db).expect("caller verified db").cursor {
            Some(addr) => addr,
            None => {
                let (_, phys) = self.ftl.allocate(&mut self.array)?;
                phys.page(0)
            }
        };
        self.array.program(addr, data)?;
        let meta = self.dbs.get_mut(&db).expect("caller verified db");
        meta.pages.push(addr);
        meta.cursor = if addr.page + 1 < pages_per_block {
            Some(PageAddr {
                page: addr.page + 1,
                ..addr
            })
        } else {
            None
        };
        Ok(())
    }

    /// Reads feature `idx` of a database back as a tensor (the `readDB`
    /// API reads ranges; this is the single-feature primitive).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] / [`FlashError::AddressOutOfRange`]
    /// for bad ids or indices, or [`FlashError::ReadUnwritten`] when a
    /// partial page has not been sealed yet.
    pub fn read_feature(&self, db: DbId, idx: u64) -> Result<Tensor> {
        let meta = self.db_meta(db)?;
        if idx >= meta.num_features {
            return Err(FlashError::AddressOutOfRange(format!(
                "feature {idx} of {} in db {}",
                meta.num_features, meta.db_id.0
            ))
            .into());
        }
        Ok(self.read_feature_with(meta, idx)?)
    }

    /// Reads feature `idx` given already-resolved metadata (the scan's
    /// per-shard hot path; avoids a metadata lookup per feature).
    fn read_feature_with(&self, meta: &DbMeta, idx: u64) -> FlashResult<Tensor> {
        let bytes = self.read_feature_bytes(meta, idx)?;
        let floats: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Tensor::from_vec(vec![floats.len()], floats)
            .map_err(|e| FlashError::AddressOutOfRange(e.to_string()))
    }

    fn read_feature_bytes(&self, meta: &DbMeta, idx: u64) -> FlashResult<Vec<u8>> {
        let page_bytes = self.cfg.ssd.geometry.page_bytes;
        let (start_page, mut offset) = self.feature_location(meta, idx);
        let mut out = Vec::with_capacity(meta.feature_bytes);
        let mut page_idx = start_page;
        while out.len() < meta.feature_bytes {
            let addr = *meta.pages.get(page_idx).ok_or_else(|| {
                FlashError::AddressOutOfRange(format!("page {page_idx} of db {}", meta.db_id.0))
            })?;
            let page = self.array.read(addr)?;
            let take = (meta.feature_bytes - out.len()).min(page_bytes - offset);
            out.extend_from_slice(&page[offset..offset + take]);
            offset = 0;
            page_idx += 1;
        }
        Ok(out)
    }

    /// Decodes feature `idx` straight out of borrowed flash pages into a
    /// reusable `f32` buffer — the scan's page-sequential fast path. No
    /// intermediate `Vec<u8>` and no `Tensor` are materialized: each page
    /// is read once via [`FlashArray::read`]'s borrowed slice, kept in
    /// `cached_page` so consecutive features resident in the same page
    /// reuse it, and an f32 whose four bytes straddle a page boundary is
    /// assembled through a small carry buffer.
    ///
    /// A page that fails ECC is not cached (the next feature touching it
    /// re-reads and re-fails, matching the per-feature read semantics of
    /// [`Engine::read_feature`]).
    fn decode_feature_into<'a>(
        &'a self,
        meta: &DbMeta,
        idx: u64,
        cached_page: &mut Option<(usize, &'a [u8])>,
        out: &mut Vec<f32>,
        faults: &mut ReadFaultStats,
    ) -> FlashResult<()> {
        let page_bytes = self.cfg.ssd.geometry.page_bytes;
        let (mut page_idx, mut offset) = self.feature_location(meta, idx);
        out.clear();
        out.reserve(meta.feature_bytes / 4);
        let mut carry = [0u8; 4];
        let mut carry_len = 0usize;
        let mut remaining = meta.feature_bytes;
        while remaining > 0 {
            let page: &[u8] = match cached_page {
                Some((cached_idx, data)) if *cached_idx == page_idx => data,
                _ => {
                    let addr = *meta.pages.get(page_idx).ok_or_else(|| {
                        FlashError::AddressOutOfRange(format!(
                            "page {page_idx} of db {}",
                            meta.db_id.0
                        ))
                    })?;
                    let data = self.array.read_with_stats(addr, faults)?;
                    *cached_page = Some((page_idx, data));
                    data
                }
            };
            let take = remaining.min(page_bytes - offset);
            let mut chunk = &page[offset..offset + take];
            if carry_len > 0 {
                // Finish the f32 whose bytes straddled the previous page.
                let need = (4 - carry_len).min(chunk.len());
                carry[carry_len..carry_len + need].copy_from_slice(&chunk[..need]);
                carry_len += need;
                chunk = &chunk[need..];
                if carry_len == 4 {
                    out.push(f32::from_le_bytes(carry));
                    carry_len = 0;
                }
            }
            if carry_len == 0 {
                let mut quads = chunk.chunks_exact(4);
                for q in &mut quads {
                    out.push(f32::from_le_bytes([q[0], q[1], q[2], q[3]]));
                }
                let tail = quads.remainder();
                carry[..tail.len()].copy_from_slice(tail);
                carry_len = tail.len();
            }
            remaining -= take;
            offset = 0;
            page_idx += 1;
        }
        debug_assert_eq!(carry_len, 0, "feature sizes are f32-aligned");
        Ok(())
    }

    /// (page index within the db, byte offset) where feature `idx` starts.
    fn feature_location(&self, meta: &DbMeta, idx: u64) -> (usize, usize) {
        let page_bytes = self.cfg.ssd.geometry.page_bytes;
        match self.cfg.placement {
            Placement::Packed => {
                let byte = idx * meta.feature_bytes as u64;
                (
                    (byte / page_bytes as u64) as usize,
                    (byte % page_bytes as u64) as usize,
                )
            }
            Placement::PageAligned => {
                let ppf = meta.feature_bytes.div_ceil(page_bytes);
                ((idx as usize) * ppf, 0)
            }
        }
    }

    /// The `ObjectID` of feature `idx`: its physical byte address.
    pub fn object_id(&self, db: DbId, idx: u64) -> Result<ObjectId> {
        let meta = self.db_meta(db)?;
        let (page_idx, offset) = self.feature_location(meta, idx);
        let addr = *meta
            .pages
            .get(page_idx)
            .ok_or_else(|| FlashError::AddressOutOfRange(format!("feature {idx}")))?;
        let page_lin = self.cfg.ssd.geometry.page_index(addr);
        Ok(ObjectId(
            page_lin * self.cfg.ssd.geometry.page_bytes as u64 + offset as u64,
        ))
    }

    /// Map-reduce scan (§4.7.1): scores every feature of `db` against the
    /// query with `model`, keeping a per-channel top-K (map) and merging
    /// them (reduce). Returns the global top-K with feature indices.
    ///
    /// The map step runs on up to [`DeepStoreConfig::parallelism`] worker
    /// threads, each scoring whole channel shards against its own sorter.
    /// Results are bit-identical at every parallelism setting: shards are
    /// fixed by physical placement (not by worker count), each shard's
    /// top-K is a function of its own features alone, and the reduce
    /// merge uses the sorter's total order (score desc, feature id asc).
    ///
    /// # Errors
    ///
    /// Propagates flash errors and
    /// [`deepstore_nn::NnError`]-derived mismatches as
    /// [`FlashError::SizeMismatch`].
    pub fn scan_top_k(
        &self,
        db: DbId,
        model: &Model,
        query: &Tensor,
        k: usize,
    ) -> Result<Vec<ScoredFeature>> {
        self.scan_top_k_counted(db, model, query, k)
            .map(|(ranked, _)| ranked)
    }

    /// [`Engine::scan_top_k`] with per-scan fault attribution: returns
    /// the ranked top-K plus this scan's [`ScanFaults`] — how many
    /// features it skipped for failing ECC beyond the retry budget, and
    /// the retry/remap/lost read statistics behind them. The
    /// engine-global [`Engine::unreadable_skipped`] counter still
    /// advances by the same skip count (it is the derived sum over all
    /// scans), but only the per-scan stats can attribute faults to a
    /// query when scans run concurrently.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::scan_top_k`].
    pub fn scan_top_k_counted(
        &self,
        db: DbId,
        model: &Model,
        query: &Tensor,
        k: usize,
    ) -> Result<(Vec<ScoredFeature>, ScanFaults)> {
        self.scan_top_k_with(db, model, query, k, false)
            .map(|(ranked, faults, _)| (ranked, faults))
    }

    /// [`Engine::scan_top_k_counted`] with explicit cascade control and
    /// attribution: `exact = true` forces every feature through the
    /// exact f32 path; `exact = false` (the default everywhere else)
    /// lets the int8 bound-then-refine cascade skip exact scoring for
    /// features that provably cannot enter the top-K. The returned
    /// ranking is **bit-identical** in both modes — the cascade prunes
    /// a feature only when its score upper bound falls strictly below
    /// the shard's running K-th best score, and a pruned feature's
    /// flash pages are still decoded, so fault accounting is identical
    /// too. The cascade applies only when the model folds to a linear
    /// functional of the feature (see [`deepstore_nn::BoundScorer`]);
    /// otherwise every feature is rescored and the stats stay zero.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::scan_top_k`].
    pub fn scan_top_k_with(
        &self,
        db: DbId,
        model: &Model,
        query: &Tensor,
        k: usize,
        exact: bool,
    ) -> Result<(Vec<ScoredFeature>, ScanFaults, CascadeStats)> {
        let meta = self.db_meta(db)?;
        let shards = self.shard_plan(meta);
        let workers = effective_workers(self.cfg.parallelism, shards.len());
        let bounds = self.cascade_for(db, meta, model, query, exact);
        let bounds = bounds.as_ref().map(|(bs, q)| (bs, *q));

        // Map: each worker owns one `InferenceScratch` and one feature
        // buffer, decodes features page-sequentially out of borrowed
        // flash pages (each page is read once per shard, with a carry
        // buffer for values straddling page boundaries), and scores
        // them with the allocation-free scratch path. After the first
        // feature of a shard, the loop performs zero heap allocations.
        //
        // The cascade check sits between decode and score: a pruned
        // feature still costs its flash reads (the pass is
        // page-sequential anyway, and identical fault accounting is
        // part of the bit-identity contract) but skips the f32
        // inference, which dominates scan compute.
        let scan_one = |shard: &[u64]| -> FlashResult<(TopKSorter, ScanFaults, CascadeStats)> {
            let mut sorter = TopKSorter::new(k);
            let mut faults = ScanFaults::default();
            let mut cascade = CascadeStats::default();
            let mut scratch = InferenceScratch::for_model(model);
            let mut feature: Vec<f32> = Vec::with_capacity(meta.feature_bytes / 4);
            let mut cached_page: Option<(usize, &[u8])> = None;
            for &idx in shard {
                match self.decode_feature_into(
                    meta,
                    idx,
                    &mut cached_page,
                    &mut feature,
                    &mut faults.reads,
                ) {
                    Ok(()) => {}
                    Err(FlashError::UncorrectableEcc(_)) => {
                        // Degrade gracefully: skip the unreadable feature.
                        faults.skipped += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
                if let Some((bs, quants)) = bounds {
                    if let Some(thr) = sorter.threshold() {
                        if bs.upper_bound(&quants[idx as usize]) < thr {
                            cascade.pruned += 1;
                            continue;
                        }
                        cascade.rescored += 1;
                    }
                }
                let score = model
                    .similarity_scratch(query, &feature, &mut scratch)
                    .map_err(|_| FlashError::SizeMismatch {
                        expected: model.feature_bytes(),
                        found: meta.feature_bytes,
                    })?;
                sorter.offer(score, idx);
            }
            Ok((sorter, faults, cascade))
        };
        let per_shard = run_sharded(&shards, workers, &scan_one);

        // Reduce: merge in channel order (the total order in `offer`
        // makes any order equivalent, but canonical is free), surfacing
        // the lowest-channel error deterministically.
        let mut merged = TopKSorter::new(k);
        let mut faults = ScanFaults::default();
        let mut cascade = CascadeStats::default();
        for shard_result in per_shard {
            let (sorter, shard_faults, shard_cascade) = shard_result?;
            merged.merge(&sorter);
            faults.skipped += shard_faults.skipped;
            faults.reads.merge(&shard_faults.reads);
            cascade.merge(&shard_cascade);
        }
        self.unreadable_skipped
            .fetch_add(faults.skipped, Ordering::Relaxed);
        self.metrics.on_scan(meta.num_features, faults.skipped);
        self.metrics.on_cascade(cascade.pruned, cascade.rescored);
        Ok((merged.ranked(), faults, cascade))
    }

    /// Builds the cascade's bound-scorer inputs for one request, or
    /// `None` when the cascade does not apply: the request opted out
    /// (`exact`), the model does not fold to a linear functional, the
    /// query shape mismatches (the scan will surface the error), or the
    /// sidecar does not cover the database (it always does for
    /// databases written through [`Engine::write_db`]; the guard keeps
    /// the scan well-defined regardless).
    fn cascade_for(
        &self,
        db: DbId,
        meta: &DbMeta,
        model: &Model,
        query: &Tensor,
        exact: bool,
    ) -> Option<(BoundScorer, &[FeatureQuant])> {
        if exact || model.feature_bytes() != meta.feature_bytes {
            return None;
        }
        let quants = self.quant.get(&db)?;
        if quants.len() as u64 != meta.num_features {
            return None;
        }
        let bs = BoundScorer::new(model, query)?;
        Some((bs, quants.as_slice()))
    }

    /// Batched map-reduce scan: walks each shard's pages **once** and
    /// scores every decoded feature against all queries of the batch,
    /// returning one ranked top-K per request, in request order.
    ///
    /// Requests sharing a `&Model` (by reference identity) are scored
    /// together through a [`MultiQueryScorer`], which streams each dense
    /// weight row once for up to eight queries — the batch's
    /// compute-side win on top of the shared flash pass. Per-request
    /// results are **bit-identical** to issuing the same requests as
    /// individual [`Engine::scan_top_k`] calls: every query's scores
    /// replay the single-query kernel order, each request keeps its own
    /// top-K sorter fed in the same per-shard feature order, and the
    /// reduce merges in channel order with the same total order.
    ///
    /// A feature whose pages fail ECC is skipped once per pass (not
    /// once per query), so [`Engine::unreadable_skipped`] advances by
    /// the feature count, not `features × queries`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::scan_top_k`]; the lowest-channel
    /// error is surfaced deterministically.
    pub fn scan_top_k_batch(
        &self,
        db: DbId,
        requests: &[(&Model, &Tensor, usize)],
    ) -> Result<Vec<Vec<ScoredFeature>>> {
        self.scan_top_k_batch_counted(db, requests)
            .map(|(ranked, _)| ranked)
    }

    /// [`Engine::scan_top_k_batch`] with per-pass fault attribution:
    /// also returns the pass's [`ScanFaults`] (the counts are per
    /// *pass*, shared by every request of the batch, since the batch
    /// walks each page once). The global [`Engine::unreadable_skipped`]
    /// stays the derived sum.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::scan_top_k_batch`].
    pub fn scan_top_k_batch_counted(
        &self,
        db: DbId,
        requests: &[(&Model, &Tensor, usize)],
    ) -> Result<(Vec<Vec<ScoredFeature>>, ScanFaults)> {
        let with: Vec<(&Model, &Tensor, usize, bool)> =
            requests.iter().map(|&(m, q, k)| (m, q, k, false)).collect();
        self.scan_top_k_batch_with(db, &with)
            .map(|(ranked, faults, _)| (ranked, faults))
    }

    /// [`Engine::scan_top_k_batch_counted`] with per-request cascade
    /// control (the `bool` is the request's `exact` opt-out) and
    /// per-pass [`CascadeStats`]. Cascade semantics per decoded
    /// feature: each request with an applicable bound and a full sorter
    /// makes an admission decision; a model group runs its fused exact
    /// scorer iff **any** member admits the feature (members whose
    /// bound stayed below their threshold are still offered the exact
    /// score, which their sorter rejects by construction — score ≤
    /// bound < threshold — keeping per-request results bit-identical to
    /// individual exact scans).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::scan_top_k_batch`].
    pub fn scan_top_k_batch_with(
        &self,
        db: DbId,
        requests: &[(&Model, &Tensor, usize, bool)],
    ) -> Result<(Vec<Vec<ScoredFeature>>, ScanFaults, CascadeStats)> {
        let meta = self.db_meta(db)?;
        if requests.is_empty() {
            return Ok((Vec::new(), ScanFaults::default(), CascadeStats::default()));
        }
        let shards = self.shard_plan(meta);
        let workers = effective_workers(self.cfg.parallelism, shards.len());

        // Group requests by model identity; each group shares one fused
        // scorer. Linear scan: batches are small (tens of queries).
        let mut groups: Vec<(&Model, Vec<usize>)> = Vec::new();
        for (i, (model, _, _, _)) in requests.iter().enumerate() {
            match groups.iter_mut().find(|(m, _)| std::ptr::eq(*m, *model)) {
                Some((_, ix)) => ix.push(i),
                None => groups.push((model, vec![i])),
            }
        }

        // Cascade inputs, built once per pass and shared (read-only)
        // across worker shards: the per-db int8 sidecar plus one folded
        // bound scorer per applicable request.
        let quants: Option<&[FeatureQuant]> = self
            .quant
            .get(&db)
            .filter(|q| q.len() as u64 == meta.num_features)
            .map(Vec::as_slice);
        let bounds: Vec<Option<BoundScorer>> = requests
            .iter()
            .map(|&(model, query, _, exact)| {
                if exact || quants.is_none() || model.feature_bytes() != meta.feature_bytes {
                    None
                } else {
                    BoundScorer::new(model, query)
                }
            })
            .collect();
        let bounds = &bounds;

        let scan_one = |shard: &[u64]| -> FlashResult<(Vec<TopKSorter>, ScanFaults, CascadeStats)> {
            let mut sorters: Vec<TopKSorter> = requests
                .iter()
                .map(|&(_, _, k, _)| TopKSorter::new(k))
                .collect();
            let mut faults = ScanFaults::default();
            let mut cascade = CascadeStats::default();
            let mut scorers: Vec<MultiQueryScorer> = groups
                .iter()
                .map(|(model, ix)| {
                    let queries: Vec<Tensor> = ix.iter().map(|&i| requests[i].1.clone()).collect();
                    MultiQueryScorer::new(model, &queries).map_err(|_| FlashError::SizeMismatch {
                        expected: model.feature_bytes(),
                        found: meta.feature_bytes,
                    })
                })
                .collect::<FlashResult<_>>()?;
            let mut scores: Vec<f32> = Vec::with_capacity(requests.len());
            let mut feature: Vec<f32> = Vec::with_capacity(meta.feature_bytes / 4);
            let mut cached_page: Option<(usize, &[u8])> = None;
            for &idx in shard {
                match self.decode_feature_into(
                    meta,
                    idx,
                    &mut cached_page,
                    &mut feature,
                    &mut faults.reads,
                ) {
                    Ok(()) => {}
                    Err(FlashError::UncorrectableEcc(_)) => {
                        faults.skipped += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
                for ((model, ix), scorer) in groups.iter().zip(&mut scorers) {
                    // Admission: run the group's fused exact scorer iff
                    // any member admits the feature. Every member's
                    // decision is evaluated (no short-circuit) so the
                    // cascade counters are a function of the offered
                    // set alone, like the sorter contents.
                    let mut admit = false;
                    for &req_i in ix {
                        match (&bounds[req_i], sorters[req_i].threshold(), quants) {
                            (Some(bs), Some(thr), Some(q)) => {
                                if bs.upper_bound(&q[idx as usize]) < thr {
                                    cascade.pruned += 1;
                                } else {
                                    cascade.rescored += 1;
                                    admit = true;
                                }
                            }
                            _ => admit = true,
                        }
                    }
                    if !admit {
                        continue;
                    }
                    scorer
                        .score_into(model, &feature, &mut scores)
                        .map_err(|_| FlashError::SizeMismatch {
                            expected: model.feature_bytes(),
                            found: meta.feature_bytes,
                        })?;
                    for (&req_i, &score) in ix.iter().zip(&scores) {
                        sorters[req_i].offer(score, idx);
                    }
                }
            }
            Ok((sorters, faults, cascade))
        };
        let per_shard = run_sharded(&shards, workers, &scan_one);

        let mut merged: Vec<TopKSorter> = requests
            .iter()
            .map(|&(_, _, k, _)| TopKSorter::new(k))
            .collect();
        let mut faults = ScanFaults::default();
        let mut cascade = CascadeStats::default();
        for shard_result in per_shard {
            let (sorters, shard_faults, shard_cascade) = shard_result?;
            for (m, s) in merged.iter_mut().zip(&sorters) {
                m.merge(s);
            }
            faults.skipped += shard_faults.skipped;
            faults.reads.merge(&shard_faults.reads);
            cascade.merge(&shard_cascade);
        }
        self.unreadable_skipped
            .fetch_add(faults.skipped, Ordering::Relaxed);
        self.metrics
            .on_batch_scan(requests.len() as u64, meta.num_features, faults.skipped);
        self.metrics.on_cascade(cascade.pruned, cascade.rescored);
        Ok((
            merged.into_iter().map(|m| m.ranked()).collect(),
            faults,
            cascade,
        ))
    }

    /// Shard plan shared by the single and batched scans: each feature
    /// belongs to the channel its first page lives on. Unsealed features
    /// whose pages are not allocated yet fall into shard 0, where the
    /// read reports the proper error. Within a shard the indices stay
    /// ascending, so the page-sequential decoder touches each flash page
    /// exactly once.
    ///
    /// Assigning by *first* page also makes the fault accounting exact
    /// by construction: a feature straddling a block boundary spans
    /// pages on two different channels, but it still lives in exactly
    /// one shard, so a fault on its boundary page skips it exactly once
    /// (pinned by `boundary_page_fault_skips_straddler_exactly_once`).
    fn shard_plan(&self, meta: &DbMeta) -> Vec<Vec<u64>> {
        let channels = self.cfg.ssd.geometry.channels;
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); channels];
        for idx in 0..meta.num_features {
            let (page_idx, _) = self.feature_location(meta, idx);
            let channel = meta.pages.get(page_idx).map_or(0, |p| p.channel);
            shards[channel].push(idx);
        }
        shards
    }
}

/// Runs a per-shard map step over the shard plan, returning one result
/// per channel, in channel order. Channel shards are distributed
/// round-robin over the workers; every worker owns disjoint channels, so
/// slots are written once and results are independent of the worker
/// count.
fn run_sharded<T: Send>(
    shards: &[Vec<u64>],
    workers: usize,
    scan_one: &(impl Fn(&[u64]) -> T + Sync),
) -> Vec<T> {
    if workers <= 1 {
        return shards.iter().map(|s| scan_one(s)).collect();
    }
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(shards.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    shards
                        .iter()
                        .enumerate()
                        .filter(|(c, _)| c % workers == w)
                        .map(|(c, shard)| (c, scan_one(shard)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (c, r) in handle.join().expect("scan worker panicked") {
                slots[c] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every channel scanned"))
        .collect()
}

/// Resolves the configured parallelism to a concrete worker count:
/// `0` means one worker per available host core, and there is never a
/// point in more workers than channel shards.
fn effective_workers(requested: usize, shards: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    };
    workers.min(shards.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    fn small_engine() -> Engine {
        Engine::new(DeepStoreConfig::small())
    }

    fn features(model: &Model, n: u64) -> Vec<Tensor> {
        (0..n).map(|i| model.random_feature(i)).collect()
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut e = small_engine();
        let model = zoo::textqa().seeded(1);
        let fs = features(&model, 50);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        for (i, f) in fs.iter().enumerate() {
            let back = e.read_feature(db, i as u64).unwrap();
            assert_eq!(&back, f, "feature {i}");
        }
    }

    #[test]
    fn unsealed_tail_requires_seal() {
        let mut e = small_engine();
        let model = zoo::textqa().seeded(1);
        // 3 x 800 B features: less than one 16 KB page, so everything sits
        // in the write buffer until sealed.
        let fs = features(&model, 3);
        let db = e.write_db(&fs).unwrap();
        assert!(e.read_feature(db, 0).is_err());
        e.seal_db(db).unwrap();
        assert!(e.read_feature(db, 0).is_ok());
    }

    #[test]
    fn append_extends_db() {
        let mut e = small_engine();
        let model = zoo::textqa().seeded(1);
        let db = e.write_db(&features(&model, 10)).unwrap();
        e.append_db(db, &features(&model, 5)).unwrap();
        e.seal_db(db).unwrap();
        assert_eq!(e.db_meta(db).unwrap().num_features, 15);
        assert!(e.read_feature(db, 14).is_ok());
        assert!(e.read_feature(db, 15).is_err());
    }

    #[test]
    fn append_after_seal_keeps_packed_stream_dense() {
        // Regression test: sealing a packed database flushes a partial
        // tail page; a later append must not leave that short page in
        // the middle of the byte stream, or `feature_location`'s dense
        // arithmetic reads zero padding for every later feature. Seal
        // repeatedly between appends so multiple tails get abandoned.
        let mut e = small_engine();
        let model = zoo::textqa().seeded(7);
        // 800 B features over 16 KB pages: no append count page-aligns.
        let mut fs = features(&model, 3);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        for round in 0..3u64 {
            let more = features(&model, 5 + round);
            e.append_db(db, &more).unwrap();
            e.seal_db(db).unwrap();
            fs.extend(more);
            for (i, f) in fs.iter().enumerate() {
                assert_eq!(
                    &e.read_feature(db, i as u64).unwrap(),
                    f,
                    "feature {i} after append round {round}"
                );
            }
        }
    }

    #[test]
    fn mismatched_feature_size_rejected() {
        let mut e = small_engine();
        let model = zoo::textqa().seeded(1);
        let db = e.write_db(&features(&model, 2)).unwrap();
        let wrong = Tensor::random(vec![100], 1.0, 9);
        assert!(matches!(
            e.append_db(db, &[wrong]),
            Err(DeepStoreError::Flash(FlashError::SizeMismatch { .. }))
        ));
    }

    #[test]
    fn unknown_db_is_error() {
        let e = small_engine();
        assert!(matches!(
            e.read_feature(DbId(42), 0),
            Err(DeepStoreError::Flash(FlashError::UnknownDb(42)))
        ));
        assert!(e.db_meta(DbId(42)).is_err());
    }

    #[test]
    fn multi_page_features_roundtrip() {
        // ReId features span 2.75 pages each.
        let mut e = small_engine();
        let model = zoo::reid().seeded(2);
        let fs = features(&model, 4);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        for (i, f) in fs.iter().enumerate() {
            assert_eq!(&e.read_feature(db, i as u64).unwrap(), f);
        }
    }

    #[test]
    fn scan_scores_planted_duplicate_like_host() {
        let mut e = small_engine();
        let model = zoo::tir().seeded(3);
        let mut fs = features(&model, 40);
        let query = model.random_feature(1000);
        fs[17] = query.clone(); // plant an exact duplicate
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let top = e.scan_top_k(db, &model, &query, 40).unwrap();
        assert_eq!(top.len(), 40);
        // The duplicate's in-storage score equals the host-side
        // self-similarity bit for bit (the flash roundtrip is lossless).
        let dup = top.iter().find(|e| e.feature_id == 17).unwrap();
        assert_eq!(dup.score, model.similarity(&query, &query).unwrap());
    }

    #[test]
    fn scan_matches_host_side_reference() {
        let mut e = small_engine();
        let model = zoo::textqa().seeded(4);
        let fs = features(&model, 64);
        let query = model.random_feature(77);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let top = e.scan_top_k(db, &model, &query, 8).unwrap();
        // Reference: score on the host from the original tensors.
        let mut reference: Vec<(f32, u64)> = fs
            .iter()
            .enumerate()
            .map(|(i, f)| (model.similarity(&query, f).unwrap(), i as u64))
            .collect();
        reference.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let expected: Vec<u64> = reference[..8].iter().map(|(_, i)| *i).collect();
        let got: Vec<u64> = top.iter().map(|e| e.feature_id).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn object_ids_are_unique_and_stable() {
        let mut e = small_engine();
        let model = zoo::textqa().seeded(5);
        let db = e.write_db(&features(&model, 30)).unwrap();
        e.seal_db(db).unwrap();
        let mut ids: Vec<u64> = (0..30).map(|i| e.object_id(db, i).unwrap().0).collect();
        let before = ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30);
        // Stable across calls.
        let again: Vec<u64> = (0..30).map(|i| e.object_id(db, i).unwrap().0).collect();
        assert_eq!(again, before);
    }

    #[test]
    fn scan_degrades_gracefully_under_read_faults() {
        use deepstore_flash::fault::FaultPlan;
        let mut e = small_engine();
        let model = zoo::textqa().seeded(8);
        // 40 features of 800 B: 2 features share each 16 KB page... in
        // fact 20 per page, so failing the first page drops features 0-19.
        let fs = features(&model, 40);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let first_page = e.db_meta(db).unwrap().pages[0];
        let geometry = e.config().ssd.geometry;
        e.inject_faults(FaultPlan::none().fail_page(&geometry, first_page));

        let q = model.random_feature(999);
        let top = e.scan_top_k(db, &model, &q, 40).unwrap();
        // 16 KB / 800 B = 20.48 features per page: features 0-19 live on
        // the failed page and feature 20 straddles into it, so 21 reads
        // fail and the scan skips them all.
        assert_eq!(e.unreadable_skipped(), 21);
        assert_eq!(top.len(), 19);
        assert!(top.iter().all(|h| h.feature_id >= 21));
        // Direct reads of affected features surface the ECC error.
        assert!(matches!(
            e.read_feature(db, 0),
            Err(DeepStoreError::Flash(FlashError::UncorrectableEcc(_)))
        ));
        assert!(e.read_feature(db, 25).is_ok());
    }

    #[test]
    fn page_sequential_scan_matches_per_feature_reads() {
        // 700 packed textqa features (800 B each) span several blocks:
        // feature 20 straddles the first page boundary and feature 327
        // straddles the first block boundary (16 pages x 16 KB / 800 B).
        let mut e = small_engine();
        let model = zoo::textqa().seeded(12);
        let n = 700u64;
        let fs = features(&model, n);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();

        let meta = e.db_meta(db).unwrap();
        let fb = meta.feature_bytes;
        let pb = e.config().ssd.geometry.page_bytes;
        let ppb = e.config().ssd.geometry.pages_per_block;
        // Page straddle: feature 20 starts in page 0 and ends in page 1.
        assert!((20 * fb) % pb + fb > pb, "test premise: page straddle");
        // Block straddle: the feature crossing the first block boundary
        // spans two pages on *different channels* (blocks are striped).
        let block_straddler = (pb * ppb / fb) as u64;
        let (p, off) = e.feature_location(meta, block_straddler);
        assert!(off + fb > pb, "test premise: block straddle");
        assert_ne!(meta.pages[p].channel, meta.pages[p + 1].channel);

        // The page-sequential scan scores every feature bit-identically
        // to the per-feature read + reference similarity path. `&e`
        // proves the scan runs on a shared reference.
        let q = model.random_feature(4242);
        let shared: &Engine = &e;
        let top = shared.scan_top_k(db, &model, &q, n as usize).unwrap();
        assert_eq!(top.len(), n as usize);
        for hit in &top {
            let f = e.read_feature(db, hit.feature_id).unwrap();
            let reference = model.similarity(&q, &f).unwrap();
            assert_eq!(
                hit.score.to_bits(),
                reference.to_bits(),
                "feature {}",
                hit.feature_id
            );
        }
    }

    #[test]
    fn carry_buffer_reassembles_f32_across_odd_page_boundaries() {
        // A 30-byte page is not a multiple of 4, so packed f32s straddle
        // page boundaries mid-value and the decoder's carry buffer must
        // reassemble them (feature 3 occupies bytes 24..32; its second
        // f32 splits 2+2 across pages 0 and 1).
        let mut cfg = DeepStoreConfig::small();
        cfg.ssd.geometry.page_bytes = 30;
        let mut e = Engine::new(cfg);
        let fs: Vec<Tensor> = (0..12).map(|i| Tensor::random(vec![2], 1.0, i)).collect();
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let meta = e.db_meta(db).unwrap();
        let mut cached = None;
        let mut out = Vec::new();
        let mut stats = ReadFaultStats::new();
        for (i, f) in fs.iter().enumerate() {
            e.decode_feature_into(meta, i as u64, &mut cached, &mut out, &mut stats)
                .unwrap();
            assert_eq!(out, f.data(), "feature {i}");
        }
        assert_eq!(stats, ReadFaultStats::new());
    }

    #[test]
    fn batch_scan_matches_sequential_and_reads_each_page_once() {
        let mut e = small_engine();
        let model = zoo::tir().seeded(7);
        // 2 KB tir features divide the 16 KB page evenly: no feature
        // straddles a page, so page reads are exactly countable.
        let fs = features(&model, 60);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let queries: Vec<Tensor> = (0..5u64).map(|i| model.random_feature(1000 + i)).collect();

        let r0 = e.flash_op_counts().reads;
        let reqs: Vec<(&Model, &Tensor, usize)> = queries.iter().map(|q| (&model, q, 7)).collect();
        let batch = e.scan_top_k_batch(db, &reqs).unwrap();
        let r1 = e.flash_op_counts().reads;
        let batch_reads = r1 - r0;

        // Bit-identical to sequential single-query scans, per request.
        for (q, got) in queries.iter().zip(&batch) {
            let single = e.scan_top_k(db, &model, q, 7).unwrap();
            assert_eq!(got, &single);
        }
        let r2 = e.flash_op_counts().reads;

        // The batched pass touches each database page exactly once; the
        // five sequential scans above re-read everything five times.
        assert_eq!(batch_reads as usize, e.db_meta(db).unwrap().pages.len());
        assert_eq!(r2 - r1, 5 * batch_reads);
    }

    #[test]
    fn batch_scan_handles_mixed_models_and_empty_batch() {
        let mut e = small_engine();
        let tir = zoo::tir().seeded(7);
        let other = zoo::tir().seeded(8); // same shapes, different weights
        let fs = features(&tir, 24);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let q1 = tir.random_feature(501);
        let q2 = tir.random_feature(502);

        assert!(e.scan_top_k_batch(db, &[]).unwrap().is_empty());

        let batch = e
            .scan_top_k_batch(db, &[(&tir, &q1, 4), (&other, &q2, 6), (&tir, &q2, 4)])
            .unwrap();
        assert_eq!(batch[0], e.scan_top_k(db, &tir, &q1, 4).unwrap());
        assert_eq!(batch[1], e.scan_top_k(db, &other, &q2, 6).unwrap());
        assert_eq!(batch[2], e.scan_top_k(db, &tir, &q2, 4).unwrap());
    }

    #[test]
    fn boundary_page_fault_skips_straddler_exactly_once() {
        // Regression: a feature straddling a block boundary spans two
        // pages on *different channels*. Fault the boundary (second)
        // page: the straddler must be counted skipped exactly once — in
        // its first page's shard — never once per touching shard.
        use deepstore_flash::fault::FaultPlan;
        let mut e = small_engine();
        let model = zoo::textqa().seeded(12);
        let n = 700u64;
        let fs = features(&model, n);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();

        let meta = e.db_meta(db).unwrap();
        let fb = meta.feature_bytes;
        let pb = e.config().ssd.geometry.page_bytes;
        let ppb = e.config().ssd.geometry.pages_per_block;
        let straddler = (pb * ppb / fb) as u64;
        let (p, off) = e.feature_location(meta, straddler);
        assert!(off + fb > pb, "test premise: block straddle");
        let boundary_page = meta.pages[p + 1];
        assert_ne!(
            meta.pages[p].channel, boundary_page.channel,
            "test premise: cross-channel straddle"
        );
        // How many features start on the boundary page itself.
        let starting_there = (0..n)
            .filter(|&i| e.feature_location(meta, i).0 == p + 1)
            .count() as u64;
        let geometry = e.config().ssd.geometry;
        e.inject_faults(FaultPlan::none().fail_page(&geometry, boundary_page));

        let q = model.random_feature(31);
        // Exactly the straddler plus every feature starting on the
        // faulted page is skipped — at every parallelism.
        let expected = 1 + starting_there;
        for workers in [1usize, 2, 4] {
            e.set_parallelism(workers);
            let (top, faults) = e.scan_top_k_counted(db, &model, &q, n as usize).unwrap();
            assert_eq!(faults.skipped, expected, "workers = {workers}");
            assert_eq!(top.len(), (n - expected) as usize);
        }
    }

    #[test]
    fn permanent_fault_remaps_and_restores_full_coverage() {
        use deepstore_flash::fault::FaultPlan;
        let mut e = small_engine();
        let model = zoo::tir().seeded(9);
        // 2 KB features divide pages evenly: exact accounting.
        let fs = features(&model, 64);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let bad_page = e.db_meta(db).unwrap().pages[0];
        let geometry = e.config().ssd.geometry;
        e.inject_faults(FaultPlan::none().fail_page(&geometry, bad_page));

        let q = model.random_feature(500);
        let clean = {
            let mut pristine = small_engine();
            let db2 = pristine.write_db(&fs).unwrap();
            pristine.seal_db(db2).unwrap();
            pristine.scan_top_k(db2, &model, &q, 64).unwrap()
        };

        // Degraded scan: the 8 features of the failing page are skipped
        // and the block queues for retirement.
        let (degraded, faults) = e.scan_top_k_counted(db, &model, &q, 64).unwrap();
        assert_eq!(faults.skipped, 8);
        // Each skipped feature re-read (and re-failed) the bad page.
        assert_eq!(faults.reads.remappable, 8);
        assert_eq!(e.pending_retirements(), 1);
        // The degraded top-K is the fault-free ranking minus the lost
        // features.
        let alive: Vec<_> = clean
            .iter()
            .filter(|h| h.feature_id >= 8)
            .cloned()
            .collect();
        assert_eq!(degraded, alive);

        // Recovery remaps the whole block and retires it.
        let report = e.recover_faults();
        assert_eq!(report.blocks_retired, 1);
        // All 8 database pages lived in the failing block.
        assert_eq!(report.pages_remapped, 8);
        assert_eq!(report.pages_lost, 0);
        assert_eq!(e.pending_retirements(), 0);
        assert_eq!(e.retired_block_count(), 1);
        assert!(e.recover_faults().is_empty(), "queue drained");

        // Full coverage is back, bit-identical to the fault-free run.
        let (healed, faults) = e.scan_top_k_counted(db, &model, &q, 64).unwrap();
        assert_eq!(faults, ScanFaults::default());
        assert_eq!(healed, clean);
        assert!(e.read_feature(db, 0).is_ok());
    }

    #[test]
    fn outage_domain_loses_data_without_retirement() {
        use deepstore_flash::fault::FaultPlan;
        let mut e = small_engine();
        let model = zoo::tir().seeded(10);
        let fs = features(&model, 64);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let dead = e.db_meta(db).unwrap().pages[0].channel;
        e.inject_faults(FaultPlan::none().dead_channel(dead));

        let q = model.random_feature(501);
        let (top, faults) = e.scan_top_k_counted(db, &model, &q, 64).unwrap();
        assert!(faults.skipped > 0);
        assert_eq!(faults.reads.remappable, 0);
        assert!(faults.reads.lost > 0);
        // Outage domains have no remap source: nothing queues, recovery
        // is a no-op, and the data stays lost.
        assert_eq!(e.pending_retirements(), 0);
        assert!(e.recover_faults().is_empty());
        let (again, _) = e.scan_top_k_counted(db, &model, &q, 64).unwrap();
        assert_eq!(top, again);
    }

    #[test]
    fn transient_faults_with_retries_match_fault_free_scan() {
        use deepstore_flash::fault::FaultPlan;
        let mut e = small_engine();
        let model = zoo::textqa().seeded(13);
        let fs = features(&model, 120);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let q = model.random_feature(77);
        let clean = e.scan_top_k(db, &model, &q, 120).unwrap();

        // Every page transient-faulty, failing at most 3 attempts: the
        // default 4-attempt ladder always recovers, so the scan result
        // is bit-identical and nothing is skipped.
        e.inject_faults(FaultPlan::none().transient(0.8, 99));
        let (faulty, faults) = e.scan_top_k_counted(db, &model, &q, 120).unwrap();
        assert_eq!(faulty, clean);
        assert_eq!(faults.skipped, 0);
        assert!(faults.reads.total_retries() > 0, "faults actually fired");
        assert!(faults.reads.recovered > 0);
        assert_eq!((faults.reads.remappable, faults.reads.lost), (0, 0));
    }

    #[test]
    fn restore_from_image_resumes_counters_and_results() {
        use deepstore_flash::MmapStore;
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "deepstore-engine-restore-{}-{}.img",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let _cleanup = Cleanup(path.clone());

        let cfg = DeepStoreConfig::small();
        let store = MmapStore::create(&path, cfg.ssd.geometry).unwrap();
        let mut e = Engine::with_store(cfg.clone(), Box::new(store));
        let model = zoo::textqa().seeded(21);
        let fs = features(&model, 120);
        let db = e.write_db(&fs).unwrap();
        e.seal_db(db).unwrap();
        let q = model.random_feature(9);
        let expected = e.scan_top_k(db, &model, &q, 10).unwrap();
        let counts = e.flash_op_counts();
        let flash = e.flash_snapshot();
        let ftl = e.ftl_snapshot();
        let dbs = e.db_metas();
        let bufs = e.write_buffer_snapshot();
        assert!(bufs.is_empty(), "sealed db leaves no buffered bytes");
        let next_db = e.next_db_raw();
        e.commit(b"engine-level-manifest", false).unwrap();
        drop(e);

        let (store, manifest, clean) = MmapStore::open(&path).unwrap();
        assert_eq!(manifest, b"engine-level-manifest");
        assert!(!clean);
        let e2 = Engine::restore(cfg, Box::new(store), &flash, &ftl, dbs, bufs, next_db);
        // The counter-free quant rebuild leaves op counts exactly where
        // the snapshot recorded them.
        assert_eq!(e2.flash_op_counts(), counts);
        assert_eq!(e2.next_db_raw(), next_db);
        // Bit-identical scan, including cascade decisions, after reopen.
        let (again, _, _) = e2.scan_top_k_with(db, &model, &q, 10, false).unwrap();
        assert_eq!(again, expected);
        assert_eq!(e2.backend(), "mmap");
        assert!(e2.is_persistent());
    }

    #[test]
    fn databases_stripe_across_channels() {
        let mut e = small_engine();
        let model = zoo::tir().seeded(6);
        // Enough features to span several blocks.
        let db = e.write_db(&features(&model, 200)).unwrap();
        e.seal_db(db).unwrap();
        let meta = e.db_meta(db).unwrap();
        let mut channels: Vec<usize> = meta.pages.iter().map(|p| p.channel).collect();
        channels.sort_unstable();
        channels.dedup();
        assert!(channels.len() > 1, "db occupies only channels {channels:?}");
    }
}
