//! The DeepStore programming API (Table 2).
//!
//! [`DeepStore`] bundles the functional engine, the query cache and the
//! timing model behind the paper's five-call interface:
//!
//! | Paper API    | Here                        |
//! |--------------|-----------------------------|
//! | `readDB`     | [`DeepStore::read_db`]      |
//! | `writeDB`    | [`DeepStore::write_db`]     |
//! | `appendDB`   | [`DeepStore::append_db`]    |
//! | `loadModel`  | [`DeepStore::load_model`]   |
//! | `query`      | [`DeepStore::query`]        |
//! | `getResults` | [`DeepStore::results`]      |
//! | `setQC`      | [`DeepStore::set_qc`]       |
//!
//! Queries execute functionally (real flash pages, real similarity
//! scores, a real top-K sorter) and every result carries the simulated
//! elapsed time from the in-storage accelerator timing model.

use crate::accel::{scan as timing_scan, ScanWorkload};
use crate::config::{AcceleratorLevel, DeepStoreConfig};
use crate::engine::{DbId, Engine, ObjectId};
use crate::qcache::{lookup_time_for, QueryCache, QueryCacheConfig};
use deepstore_flash::layout::DbLayout;
use deepstore_flash::{FlashError, Result, SimDuration};
use deepstore_nn::{Model, ModelGraph, Tensor};
use deepstore_systolic::topk::ScoredFeature;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a loaded similarity model (returned by `loadModel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelId(pub u64);

/// Identifies a submitted query (returned by `query`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u64);

/// One ranked answer: similarity score, feature index, and the feature's
/// physical address (`ObjectID`) for fetching the raw content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryHit {
    /// Similarity score.
    pub score: f32,
    /// Index of the feature within its database.
    pub feature_index: u64,
    /// Physical address of the feature vector.
    pub object_id: ObjectId,
}

/// A completed query's results and provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The query's id.
    pub query_id: QueryId,
    /// Ranked hits, best first.
    pub top_k: Vec<QueryHit>,
    /// Whether the query was answered from the query cache.
    pub cache_hit: bool,
    /// Simulated end-to-end latency inside the SSD.
    pub elapsed: SimDuration,
    /// Accelerator level that served (or would have served) the scan.
    pub level: AcceleratorLevel,
}

/// The DeepStore device facade.
#[derive(Debug)]
pub struct DeepStore {
    engine: Engine,
    models: HashMap<ModelId, Model>,
    qc: Option<QueryCache>,
    results: HashMap<QueryId, QueryResult>,
    next_model: u64,
    next_query: u64,
}

impl DeepStore {
    /// Creates a DeepStore device.
    pub fn new(cfg: DeepStoreConfig) -> Self {
        let qc = (cfg.qc_capacity > 0).then(|| {
            QueryCache::new(QueryCacheConfig {
                capacity: cfg.qc_capacity,
                ..QueryCacheConfig::paper_default()
            })
        });
        DeepStore {
            engine: Engine::new(cfg),
            models: HashMap::new(),
            qc,
            results: HashMap::new(),
            next_model: 1,
            next_query: 1,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeepStoreConfig {
        self.engine.config()
    }

    /// Sets the scan worker count (`0` = one worker per available host
    /// core). Purely a host wall-clock knob: query results and simulated
    /// latencies are bit-identical at every setting.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.engine.set_parallelism(workers);
    }

    /// `writeDB`: creates a feature database, returning its id. The
    /// database is sealed (all buffered pages flushed) before returning.
    ///
    /// # Errors
    ///
    /// See [`Engine::write_db`].
    pub fn write_db(&mut self, features: &[Tensor]) -> Result<DbId> {
        let db = self.engine.write_db(features)?;
        self.engine.seal_db(db)?;
        if let Some(qc) = &mut self.qc {
            qc.invalidate_all();
        }
        Ok(db)
    }

    /// `appendDB`: appends features to a database and reseals it.
    ///
    /// # Errors
    ///
    /// See [`Engine::append_db`].
    pub fn append_db(&mut self, db: DbId, features: &[Tensor]) -> Result<()> {
        self.engine.append_db(db, features)?;
        self.engine.seal_db(db)?;
        if let Some(qc) = &mut self.qc {
            qc.invalidate_all();
        }
        Ok(())
    }

    /// `readDB`: reads `num` features starting at index `start`.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] or
    /// [`FlashError::AddressOutOfRange`] for bad ids/ranges.
    pub fn read_db(&mut self, db: DbId, start: u64, num: u64) -> Result<Vec<Tensor>> {
        (start..start + num)
            .map(|i| self.engine.read_feature(db, i))
            .collect()
    }

    /// `loadModel`: registers a similarity model shipped as a serialized
    /// graph, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::SizeMismatch`] if the graph's model has no
    /// materialized weights (an unweighted graph cannot score anything).
    pub fn load_model(&mut self, graph: &ModelGraph) -> Result<ModelId> {
        let model = graph.model().clone();
        if !model.is_seeded() {
            return Err(FlashError::SizeMismatch {
                expected: model.weight_bytes() as usize,
                found: 0,
            });
        }
        let id = ModelId(self.next_model);
        self.next_model += 1;
        self.models.insert(id, model);
        Ok(id)
    }

    /// `setQC`: configures (or reconfigures) the query cache.
    pub fn set_qc(&mut self, config: QueryCacheConfig) {
        self.qc = Some(QueryCache::new(config));
    }

    /// Disables the query cache.
    pub fn disable_qc(&mut self) {
        self.qc = None;
    }

    /// Query-cache statistics, if the cache is enabled.
    pub fn qc_stats(&self) -> Option<crate::qcache::QcStats> {
        self.qc.as_ref().map(|q| q.stats())
    }

    /// Features skipped by scans so far because their flash pages failed
    /// ECC (intelligent queries degrade gracefully instead of failing).
    pub fn unreadable_skipped(&self) -> u64 {
        self.engine.unreadable_skipped()
    }

    /// `query`: submits a query feature vector against a database using a
    /// loaded model, retrieving `k` results via the accelerators at
    /// `level`. Returns the query id for [`DeepStore::results`].
    ///
    /// # Errors
    ///
    /// * [`FlashError::UnknownDb`] for a bad database or model id.
    /// * [`FlashError::SizeMismatch`] if the query vector or the
    ///   database's features do not match the model.
    /// * [`FlashError::AddressOutOfRange`] if `level` cannot execute the
    ///   model (chip level vs ReId).
    pub fn query(
        &mut self,
        qfv: &Tensor,
        k: usize,
        model: ModelId,
        db: DbId,
        level: AcceleratorLevel,
    ) -> Result<QueryId> {
        // `scan_top_k` runs on `&Engine`, so the model, metadata and
        // config can all be borrowed — no per-query clones of the weight
        // tensors or the page table.
        let model_ref = self
            .models
            .get(&model)
            .ok_or(FlashError::UnknownDb(model.0))?;
        let meta = self.engine.db_meta(db)?;
        let cfg = self.engine.config();

        // Timing for the full scan at the requested level.
        let layout = DbLayout::new(
            meta.feature_bytes,
            meta.num_features,
            cfg.ssd.geometry.page_bytes,
            cfg.placement,
        );
        let workload = ScanWorkload {
            shapes: model_ref.layer_shapes(),
            weight_bytes: model_ref.weight_bytes(),
            feature_bytes: meta.feature_bytes,
            layout,
        };
        let scan_timing = timing_scan(level, &workload, cfg).ok_or_else(|| {
            FlashError::AddressOutOfRange(format!(
                "model `{}` has no {level}-level mapping",
                model_ref.name()
            ))
        })?;

        // Query-cache lookup (Algorithm 1), timed on the channel-level
        // accelerators.
        let mut elapsed = SimDuration::ZERO;
        let mut cache_hit = false;
        let mut ranked: Option<Vec<ScoredFeature>> = None;
        if let Some(qc) = &mut self.qc {
            elapsed += lookup_time_for(
                qc.len(),
                &workload.shapes,
                cfg.ssd.geometry.channels,
                cfg.controller_overhead_cycles,
            );
            if let Some(hit) = qc.lookup(qfv) {
                cache_hit = true;
                ranked = Some(hit);
            }
        }

        let ranked = match ranked {
            Some(r) => r,
            None => {
                elapsed += scan_timing.elapsed;
                let r = self.engine.scan_top_k(db, model_ref, qfv, k)?;
                if let Some(qc) = &mut self.qc {
                    qc.insert(qfv.clone(), r.clone());
                }
                r
            }
        };

        let top_k: Vec<QueryHit> = ranked
            .iter()
            .map(|e| {
                Ok(QueryHit {
                    score: e.score,
                    feature_index: e.feature_id,
                    object_id: self.engine.object_id(db, e.feature_id)?,
                })
            })
            .collect::<Result<_>>()?;

        let id = QueryId(self.next_query);
        self.next_query += 1;
        self.results.insert(
            id,
            QueryResult {
                query_id: id,
                top_k,
                cache_hit,
                elapsed,
                level,
            },
        );
        Ok(id)
    }

    /// `getResults`: retrieves (and removes) a completed query's results.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] for unknown query ids.
    pub fn results(&mut self, query: QueryId) -> Result<QueryResult> {
        self.results
            .remove(&query)
            .ok_or(FlashError::UnknownDb(query.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    fn setup(app: &str, n: u64) -> (DeepStore, Model, DbId, ModelId) {
        let mut store = DeepStore::new(DeepStoreConfig::small());
        let model = zoo::by_name(app).unwrap().seeded(42);
        let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        (store, model, db, mid)
    }

    #[test]
    fn end_to_end_query_returns_ranked_results() {
        let (mut store, model, db, mid) = setup("tir", 64);
        let q = model.random_feature(1000);
        let qid = store
            .query(&q, 5, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        let r = store.results(qid).unwrap();
        assert_eq!(r.top_k.len(), 5);
        assert!(!r.cache_hit);
        assert!(r.elapsed > SimDuration::ZERO);
        // Scores are sorted descending.
        for w in r.top_k.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Results are consumed.
        assert!(store.results(qid).is_err());
    }

    #[test]
    fn repeated_query_hits_cache_and_is_faster() {
        let (mut store, model, db, mid) = setup("textqa", 64);
        let q = model.random_feature(7);
        let q1 = store
            .query(&q, 3, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        let r1 = store.results(q1).unwrap();
        let q2 = store
            .query(&q, 3, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        let r2 = store.results(q2).unwrap();
        assert!(!r1.cache_hit);
        assert!(r2.cache_hit);
        assert!(r2.elapsed < r1.elapsed, "{} !< {}", r2.elapsed, r1.elapsed);
        // Same answers.
        let ids1: Vec<u64> = r1.top_k.iter().map(|h| h.feature_index).collect();
        let ids2: Vec<u64> = r2.top_k.iter().map(|h| h.feature_index).collect();
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn write_db_invalidates_cache() {
        let (mut store, model, db, mid) = setup("textqa", 32);
        let q = model.random_feature(7);
        let _ = store
            .query(&q, 3, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        store.append_db(db, &[model.random_feature(999)]).unwrap();
        let q2 = store
            .query(&q, 3, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        assert!(!store.results(q2).unwrap().cache_hit);
    }

    #[test]
    fn read_db_returns_original_features() {
        let (mut store, model, db, _) = setup("mir", 20);
        let got = store.read_db(db, 5, 3).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], model.random_feature(5));
        assert!(store.read_db(db, 18, 5).is_err());
    }

    #[test]
    fn unweighted_model_rejected() {
        let mut store = DeepStore::new(DeepStoreConfig::small());
        let graph = ModelGraph::from_model(&zoo::tir());
        assert!(store.load_model(&graph).is_err());
    }

    #[test]
    fn chip_level_rejects_reid_queries() {
        let (mut store, model, db, mid) = setup("reid", 4);
        let q = model.random_feature(0);
        let err = store.query(&q, 2, mid, db, AcceleratorLevel::Chip);
        assert!(err.is_err());
        // Channel level works.
        assert!(store
            .query(&q, 2, mid, db, AcceleratorLevel::Channel)
            .is_ok());
    }

    #[test]
    fn wrong_query_length_is_rejected() {
        let (mut store, _, db, mid) = setup("tir", 8);
        let bad = Tensor::random(vec![7], 1.0, 0);
        assert!(store
            .query(&bad, 2, mid, db, AcceleratorLevel::Channel)
            .is_err());
    }

    #[test]
    fn qc_can_be_reconfigured_and_disabled() {
        let (mut store, model, db, mid) = setup("textqa", 16);
        store.set_qc(QueryCacheConfig {
            capacity: 2,
            threshold: 0.0,
            qcn_accuracy: 1.0,
        });
        let q = model.random_feature(3);
        let _ = store
            .query(&q, 2, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        let q2 = store
            .query(&q, 2, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        assert!(store.results(q2).unwrap().cache_hit);
        store.disable_qc();
        assert!(store.qc_stats().is_none());
        let q3 = store
            .query(&q, 2, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        assert!(!store.results(q3).unwrap().cache_hit);
    }

    #[test]
    fn levels_order_query_latency() {
        let (mut store, model, db, mid) = setup("mir", 32);
        store.disable_qc();
        let q = model.random_feature(5);
        let mut elapsed = Vec::new();
        for level in [
            AcceleratorLevel::Ssd,
            AcceleratorLevel::Channel,
            AcceleratorLevel::Chip,
        ] {
            let qid = store.query(&q, 3, mid, db, level).unwrap();
            elapsed.push(store.results(qid).unwrap().elapsed);
        }
        // Channel is fastest on this tiny DB too (same model ordering).
        assert!(elapsed[1] <= elapsed[0]);
        assert!(elapsed[1] <= elapsed[2]);
    }

    #[test]
    fn object_ids_resolve_to_real_features() {
        let (mut store, model, db, mid) = setup("textqa", 48);
        store.disable_qc();
        let q = model.random_feature(123);
        let qid = store
            .query(&q, 4, mid, db, AcceleratorLevel::Channel)
            .unwrap();
        let r = store.results(qid).unwrap();
        for hit in &r.top_k {
            let f = store.read_db(db, hit.feature_index, 1).unwrap();
            let score = model.similarity(&q, &f[0]).unwrap();
            assert!((score - hit.score).abs() < 1e-6);
        }
    }
}
