//! The DeepStore programming API (Table 2).
//!
//! [`DeepStore`] bundles the functional engine, the query cache and the
//! timing model behind the paper's interface:
//!
//! | Paper API    | Here                                              |
//! |--------------|---------------------------------------------------|
//! | `readDB`     | [`DeepStore::read_db`]                            |
//! | `writeDB`    | [`DeepStore::write_db`]                           |
//! | `appendDB`   | [`DeepStore::append_db`]                          |
//! | `loadModel`  | [`DeepStore::load_model`]                         |
//! | `query`      | [`DeepStore::query`] / [`DeepStore::query_batch`] |
//! | `getResults` | [`DeepStore::results`] / [`DeepStore::peek_results`] |
//! | `setQC`      | [`DeepStore::set_qc`]                             |
//!
//! Queries execute functionally (real flash pages, real similarity
//! scores, a real top-K sorter) and every result carries the simulated
//! elapsed time from the in-storage accelerator timing model.
//!
//! # Requests
//!
//! A query is described by a [`QueryRequest`] built with a fluent
//! builder — `QueryRequest::new(qfv, model, db)` defaults to `k = 1`
//! and the channel-level accelerators, and `.k(..)` / `.level(..)`
//! override them:
//!
//! ```no_run
//! # use deepstore_core::{DeepStore, DeepStoreConfig, QueryRequest, AcceleratorLevel};
//! # use deepstore_nn::{zoo, ModelGraph};
//! # let mut store = DeepStore::in_memory(DeepStoreConfig::small());
//! # let model = zoo::textqa().seeded(9);
//! # let db = store.write_db(&[model.random_feature(0)]).unwrap();
//! # let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
//! let req = QueryRequest::new(model.random_feature(99), mid, db)
//!     .k(5)
//!     .level(AcceleratorLevel::Channel);
//! let qid = store.query(req).unwrap();
//! ```
//!
//! [`DeepStore::query_batch`] submits many requests at once; co-batched
//! requests against the same `(db, model, level)` share a single flash
//! pass (every page is streamed and every feature decoded exactly once
//! for the whole group), which is how the device amortizes its dominant
//! cost — flash streaming — across concurrent queries. Batched results
//! are bit-identical to issuing the same requests sequentially.
//!
//! # Errors
//!
//! Errors arrive as [`DeepStoreError`], which separates device-API
//! misuse ([`DeepStoreError::UnknownModel`],
//! [`DeepStoreError::UnknownQuery`], [`DeepStoreError::LevelUnsupported`])
//! from genuine flash failures ([`DeepStoreError::Flash`]). The
//! deprecated five-positional-argument `query_positional` shim from the
//! builder migration has been removed; build a [`QueryRequest`].
//!
//! # Observability
//!
//! The device keeps lock-free telemetry on the whole query pipeline
//! (see [`crate::telemetry`]): [`DeepStore::stats`] reports pipeline
//! counters, per-stage simulated-latency totals and flash event counts,
//! and [`DeepStore::enable_tracing`] records a per-query span timeline
//! that [`DeepStore::trace_json`] renders as Chrome trace-event JSON.
//! Both are driven entirely by the simulated clock, so repeated runs of
//! the same workload produce identical stats and byte-identical traces.

use crate::accel::{scan as timing_scan, scan_batch, shard_timings, ScanWorkload};
use crate::config::{AcceleratorLevel, DeepStoreConfig};
use crate::engine::{CascadeStats, DbId, Engine, ObjectId};
use crate::error::{DeepStoreError, Result};
use crate::persist::{ImageManifest, MANIFEST_VERSION};
use crate::qcache::{lookup_time_for, QueryCache, QueryCacheConfig};
use crate::telemetry::{merge_snapshots, ApiTelemetry, DeviceStats};
use deepstore_flash::layout::DbLayout;
use deepstore_flash::stream::retry_stall;
use deepstore_flash::{FlashError, FlashOpCounts, MmapStore, SimDuration};
use deepstore_nn::{Model, ModelGraph, Tensor};
use deepstore_obs::TraceRecorder;
use deepstore_systolic::topk::ScoredFeature;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Identifies a loaded similarity model (returned by `loadModel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelId(pub u64);

/// Identifies a submitted query (returned by `query`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u64);

/// A similarity query: the query feature vector plus everything the
/// device needs to rank it.
///
/// Built with a fluent builder; [`QueryRequest::new`] defaults to
/// `k = 1` and [`AcceleratorLevel::Channel`] (the level the paper finds
/// fastest for every workload, §6.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// The query feature vector.
    pub qfv: Tensor,
    /// The similarity model to score with.
    pub model: ModelId,
    /// The database to scan.
    pub db: DbId,
    /// How many top results to keep.
    pub k: usize,
    /// Which accelerator placement serves the scan.
    pub level: AcceleratorLevel,
    /// Minimum fraction of the database the scan must cover for the
    /// query to succeed. `None` (the default) accepts any partial
    /// answer: intelligent queries tolerate approximation, so a scan
    /// that lost features to uncorrectable reads still returns its
    /// degraded top-K. `Some(f)` makes the whole batch fail with
    /// [`DeepStoreError::InsufficientCoverage`] when coverage drops
    /// below `f`.
    pub min_coverage: Option<f64>,
    /// Opt out of the int8 pruning cascade and score every feature
    /// through the exact f32 path. `false` (the default) lets the scan
    /// skip exact scoring for features whose quantized score upper
    /// bound provably cannot reach the top-K. Results are
    /// **bit-identical** either way (the cascade's recall is exactly
    /// 1.0 by construction); the flag exists for performance studies
    /// and as a belt-and-braces production escape hatch.
    pub exact: bool,
}

impl QueryRequest {
    /// A request for the top-1 match at the channel level.
    pub fn new(qfv: Tensor, model: ModelId, db: DbId) -> Self {
        QueryRequest {
            qfv,
            model,
            db,
            k: 1,
            level: AcceleratorLevel::Channel,
            min_coverage: None,
            exact: false,
        }
    }

    /// Sets how many results to retrieve.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the accelerator level that serves the scan.
    pub fn level(mut self, level: AcceleratorLevel) -> Self {
        self.level = level;
        self
    }

    /// Requires the scan to cover at least `fraction` of the database
    /// (`0.0 ..= 1.0`) or fail with
    /// [`DeepStoreError::InsufficientCoverage`].
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn min_coverage(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "min_coverage must be in [0, 1]"
        );
        self.min_coverage = Some(fraction);
        self
    }

    /// Disables the pruning cascade for this request: every feature is
    /// scored through the exact f32 path. The ranking is identical
    /// either way; only the amount of compute skipped changes.
    pub fn exact(mut self) -> Self {
        self.exact = true;
        self
    }
}

/// One ranked answer: similarity score, feature index, and the feature's
/// physical address (`ObjectID`) for fetching the raw content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryHit {
    /// Similarity score.
    pub score: f32,
    /// Index of the feature within its database.
    pub feature_index: u64,
    /// Physical address of the feature vector.
    pub object_id: ObjectId,
}

/// A completed query's results and provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The query's id.
    pub query_id: QueryId,
    /// Ranked hits, best first.
    pub top_k: Vec<QueryHit>,
    /// Whether the query was answered from the query cache.
    pub cache_hit: bool,
    /// Simulated end-to-end latency inside the SSD.
    pub elapsed: SimDuration,
    /// Accelerator level that served (or would have served) the scan.
    pub level: AcceleratorLevel,
    /// Features the query's scan pass skipped because their flash pages
    /// failed ECC (0 for cache hits — no scan ran). Members of one
    /// batched scan group share the pass, so they report the same
    /// count; the engine-global [`DeepStore::unreadable_skipped`] total
    /// is the sum over passes, not over queries.
    pub skipped: u64,
    /// Fraction of the database's features the scan actually scored
    /// (`1.0` for cache hits and fault-free scans). The top-K was
    /// ranked over exactly this fraction; the rest was unreadable even
    /// after read retries.
    pub coverage: f64,
    /// True when `coverage < 1.0`: the answer is approximate beyond
    /// the model's own approximation, because part of the database
    /// could not be read. Degraded results are never inserted into the
    /// query cache, so cache hits always carry full coverage.
    pub degraded: bool,
}

/// The DeepStore device facade.
#[derive(Debug)]
pub struct DeepStore {
    engine: Engine,
    models: HashMap<ModelId, Model>,
    qc: Option<QueryCache>,
    results: HashMap<QueryId, QueryResult>,
    next_model: u64,
    next_query: u64,
    /// API-level telemetry (queries, batches, stage totals).
    telemetry: ApiTelemetry,
    /// Trace recorder, present while tracing is enabled.
    tracer: Option<TraceRecorder>,
    /// Simulated trace clock: successive batches lay out back-to-back
    /// on one reproducible timeline.
    trace_clock_ns: u64,
    /// True when `open` found the image missing its clean-shutdown
    /// marker (the owning process died between commits); state is the
    /// last successful commit.
    opened_dirty: bool,
}

impl DeepStore {
    /// Creates a volatile DeepStore device: page payloads live on the
    /// heap and vanish with the process. [`DeepStore::flush`] and
    /// [`DeepStore::close`] are no-ops.
    ///
    /// Setting the environment variable `DEEPSTORE_BACKEND=mmap` makes
    /// this construct the device over an anonymous (immediately
    /// unlinked) single-file mmap image instead — same semantics, file
    /// lives and dies with the process — which lets an entire test
    /// suite exercise the persistent read/write path unchanged.
    pub fn in_memory(cfg: DeepStoreConfig) -> Self {
        if std::env::var("DEEPSTORE_BACKEND").as_deref() == Ok("mmap") {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SCRATCH: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "deepstore-scratch-{}-{}.img",
                std::process::id(),
                SCRATCH.fetch_add(1, Ordering::Relaxed)
            ));
            if let Ok(store) = MmapStore::create(&path, cfg.ssd.geometry) {
                // Unlink immediately: the mapping and fd keep the image
                // alive; nothing is left behind on exit.
                let _ = std::fs::remove_file(&path);
                return Self::from_engine(Engine::with_store(cfg, Box::new(store)));
            }
        }
        Self::from_engine(Engine::new(cfg))
    }

    /// Creates a persistent DeepStore device backed by a new single-file
    /// mmap image at `path`, and commits an initial (empty) manifest so
    /// the image is immediately openable.
    ///
    /// The file is sized sparsely to the configured geometry (a 1 TiB
    /// drive costs no disk until pages are programmed).
    ///
    /// # Errors
    ///
    /// Returns [`DeepStoreError::Flash`] wrapping [`FlashError::Image`]
    /// if `path` already exists or the image cannot be created/mapped.
    pub fn create(path: impl AsRef<Path>, cfg: DeepStoreConfig) -> Result<Self> {
        let store =
            MmapStore::create(path.as_ref(), cfg.ssd.geometry).map_err(DeepStoreError::from)?;
        let mut store = Self::from_engine(Engine::with_store(cfg, Box::new(store)));
        store.flush()?;
        Ok(store)
    }

    /// Opens a persistent DeepStore device from an image previously
    /// built by [`DeepStore::create`]: maps the page region, restores
    /// the device state recorded by the last successful commit
    /// (databases, models, FTL and flash counters, id counters), and
    /// rebuilds the int8 cascade sidecars by decoding features straight
    /// from the mapping. The query cache starts cold. The image is
    /// marked in-use (dirty) until [`DeepStore::close`].
    ///
    /// Check [`DeepStore::opened_dirty`] to learn whether the previous
    /// owner exited without a clean close — state is then the last
    /// commit, and later uncommitted writes are gone.
    ///
    /// # Errors
    ///
    /// * [`DeepStoreError::VersionMismatch`] if the image or its
    ///   manifest was written by a different format version.
    /// * [`DeepStoreError::Flash`] wrapping [`FlashError::Image`] for a
    ///   missing/corrupt image.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let (store, manifest_bytes, clean) =
            MmapStore::open(path.as_ref()).map_err(DeepStoreError::from)?;
        let manifest = ImageManifest::decode(&manifest_bytes)?;
        let qc = Self::fresh_qc(&manifest.cfg);
        let engine = Engine::restore(
            manifest.cfg,
            Box::new(store),
            &manifest.flash,
            &manifest.ftl,
            manifest.dbs,
            manifest.write_buffers,
            manifest.next_db,
        );
        let mut store = DeepStore {
            engine,
            models: manifest
                .models
                .into_iter()
                .map(|(id, m)| (ModelId(id), m))
                .collect(),
            qc,
            results: HashMap::new(),
            next_model: manifest.next_model,
            next_query: manifest.next_query,
            telemetry: ApiTelemetry::new(),
            tracer: None,
            trace_clock_ns: 0,
            opened_dirty: !clean,
        };
        // Mark the image in-use: a crash from here on is detected as a
        // dirty open next time (the committed state stays authoritative
        // either way).
        store.flush()?;
        Ok(store)
    }

    /// Commits all device state to the backing image with the
    /// crash-safe ordering of [`deepstore_flash::image`]: page payloads
    /// are synced, the manifest is written beside the live one, and the
    /// header generation advances only after both are durable. A crash
    /// at any point leaves the previous commit intact. No-op `Ok` on a
    /// volatile (heap) device.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStoreError::Flash`] wrapping [`FlashError::Image`]
    /// if the commit fails; the previous commit stays authoritative.
    pub fn flush(&mut self) -> Result<()> {
        if !self.engine.is_persistent() {
            return Ok(());
        }
        let manifest = self.build_manifest().encode();
        self.engine.commit(&manifest, false)?;
        Ok(())
    }

    /// Flushes and marks the image cleanly closed, consuming the
    /// device. The next [`DeepStore::open`] reports
    /// `opened_dirty() == false`. No-op `Ok` on a volatile device.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeepStore::flush`].
    pub fn close(mut self) -> Result<()> {
        if !self.engine.is_persistent() {
            return Ok(());
        }
        let manifest = self.build_manifest().encode();
        self.engine.commit(&manifest, true)?;
        Ok(())
    }

    /// Which storage backend holds the page payloads (`"heap"` or
    /// `"mmap"`).
    pub fn backend(&self) -> &'static str {
        self.engine.backend()
    }

    /// Whether committed state survives process exit.
    pub fn is_persistent(&self) -> bool {
        self.engine.is_persistent()
    }

    /// True when [`DeepStore::open`] found no clean-shutdown marker:
    /// the previous owner crashed (or skipped [`DeepStore::close`]) and
    /// the restored state is its last successful commit.
    pub fn opened_dirty(&self) -> bool {
        self.opened_dirty
    }

    fn fresh_qc(cfg: &DeepStoreConfig) -> Option<QueryCache> {
        (cfg.qc_capacity > 0).then(|| {
            QueryCache::new(QueryCacheConfig {
                capacity: cfg.qc_capacity,
                ..QueryCacheConfig::paper_default()
            })
        })
    }

    fn from_engine(engine: Engine) -> Self {
        let qc = Self::fresh_qc(engine.config());
        DeepStore {
            engine,
            models: HashMap::new(),
            qc,
            results: HashMap::new(),
            next_model: 1,
            next_query: 1,
            telemetry: ApiTelemetry::new(),
            tracer: None,
            trace_clock_ns: 0,
            opened_dirty: false,
        }
    }

    /// Snapshots the device into the manifest a commit persists.
    fn build_manifest(&self) -> ImageManifest {
        let mut models: Vec<(u64, Model)> = self
            .models
            .iter()
            .map(|(id, m)| (id.0, m.clone()))
            .collect();
        models.sort_by_key(|(id, _)| *id);
        ImageManifest {
            manifest_version: MANIFEST_VERSION,
            cfg: self.engine.config().clone(),
            flash: self.engine.flash_snapshot(),
            ftl: self.engine.ftl_snapshot(),
            dbs: self.engine.db_metas(),
            write_buffers: self.engine.write_buffer_snapshot(),
            next_db: self.engine.next_db_raw(),
            models,
            next_model: self.next_model,
            next_query: self.next_query,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeepStoreConfig {
        self.engine.config()
    }

    /// Sets the scan worker count (`0` = one worker per available host
    /// core). Purely a host wall-clock knob: query results and simulated
    /// latencies are bit-identical at every setting.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.engine.set_parallelism(workers);
    }

    /// `writeDB`: creates a feature database, returning its id. The
    /// database is sealed (all buffered pages flushed) before returning.
    ///
    /// # Errors
    ///
    /// See [`Engine::write_db`].
    pub fn write_db(&mut self, features: &[Tensor]) -> Result<DbId> {
        let db = self.engine.write_db(features)?;
        self.engine.seal_db(db)?;
        if let Some(qc) = &mut self.qc {
            qc.invalidate_all();
        }
        Ok(db)
    }

    /// `appendDB`: appends features to a database and reseals it.
    ///
    /// # Errors
    ///
    /// See [`Engine::append_db`].
    pub fn append_db(&mut self, db: DbId, features: &[Tensor]) -> Result<()> {
        self.engine.append_db(db, features)?;
        self.engine.seal_db(db)?;
        if let Some(qc) = &mut self.qc {
            qc.invalidate_all();
        }
        Ok(())
    }

    /// `readDB`: reads `num` features starting at index `start`.
    ///
    /// Reading never mutates device state, so this takes `&self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStoreError::Flash`] wrapping
    /// [`FlashError::UnknownDb`] or [`FlashError::AddressOutOfRange`]
    /// for bad ids/ranges.
    pub fn read_db(&self, db: DbId, start: u64, num: u64) -> Result<Vec<Tensor>> {
        (start..start + num)
            .map(|i| self.engine.read_feature(db, i))
            .collect()
    }

    /// `loadModel`: registers a similarity model shipped as a serialized
    /// graph, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::SizeMismatch`] if the graph's model has no
    /// materialized weights (an unweighted graph cannot score anything).
    pub fn load_model(&mut self, graph: &ModelGraph) -> Result<ModelId> {
        let model = graph.model().clone();
        if !model.is_seeded() {
            return Err(FlashError::SizeMismatch {
                expected: model.weight_bytes() as usize,
                found: 0,
            }
            .into());
        }
        let id = ModelId(self.next_model);
        self.next_model += 1;
        self.models.insert(id, model);
        Ok(id)
    }

    /// `setQC`: configures (or reconfigures) the query cache.
    pub fn set_qc(&mut self, config: QueryCacheConfig) {
        self.qc = Some(QueryCache::new(config));
    }

    /// Disables the query cache.
    pub fn disable_qc(&mut self) {
        self.qc = None;
    }

    /// Query-cache statistics, if the cache is enabled.
    pub fn qc_stats(&self) -> Option<crate::qcache::QcStats> {
        self.qc.as_ref().map(|q| q.stats())
    }

    /// Features skipped by scans so far because their flash pages failed
    /// ECC (intelligent queries degrade gracefully instead of failing).
    pub fn unreadable_skipped(&self) -> u64 {
        self.engine.unreadable_skipped()
    }

    /// Scrub probe: how many of `db`'s features are currently readable
    /// through the retried read path. See
    /// [`Engine::probe_db`](crate::engine::Engine::probe_db).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] for unknown ids.
    pub fn probe_db(&self, db: DbId) -> Result<crate::engine::DbProbe> {
        self.engine.probe_db(db)
    }

    /// The armed fault plan's outage domains (dead channels/chips) and
    /// how much of the address space they cover. Used by the cluster
    /// layer to tell a partially degraded drive from a dead one.
    pub fn outage_summary(&self) -> deepstore_flash::OutageSummary {
        self.engine.outage_summary()
    }

    /// Flash operation counters — useful for asserting how many page
    /// reads a scan issued. On a persistent device the counters resume
    /// across close/open exactly where they left off.
    pub fn flash_op_counts(&self) -> FlashOpCounts {
        self.engine.flash_op_counts()
    }

    /// Injects a flash fault plan (reliability experiments): subsequent
    /// page reads consult the plan and scans skip features whose pages
    /// fail ECC.
    pub fn inject_faults(&mut self, faults: deepstore_flash::fault::FaultPlan) {
        self.engine.inject_faults(faults);
    }

    /// Runs the recovery (scrub) pipeline: soft-decodes data out of
    /// permanently-failing blocks observed by earlier scans, remaps it
    /// into fresh blocks and retires the bad blocks from the FTL. The
    /// next scan reads the remapped copies at full coverage.
    ///
    /// Recovery is an explicit maintenance operation — like garbage
    /// collection, it is never run implicitly by the query path, so a
    /// sequence of queries observes one consistent (possibly degraded)
    /// view of the database regardless of batching or parallelism. See
    /// [`Engine::recover_faults`](crate::engine::Engine::recover_faults).
    pub fn recover_faults(&mut self) -> crate::engine::RecoveryReport {
        let recovery = self.engine.recover_faults();
        if !recovery.is_empty() {
            self.telemetry
                .on_recovery(recovery.pages_remapped, recovery.pages_lost);
            if let Some(t) = &mut self.tracer {
                t.instant("recovery", "fault", self.trace_clock_ns, 0)
                    .arg_u64("blocks_retired", recovery.blocks_retired)
                    .arg_u64("pages_remapped", recovery.pages_remapped)
                    .arg_u64("pages_lost", recovery.pages_lost);
            }
        }
        recovery
    }

    /// Blocks the FTL has retired (taken out of allocation) so far.
    pub fn retired_block_count(&self) -> usize {
        self.engine.retired_block_count()
    }

    /// `query`: submits one [`QueryRequest`], returning the query id for
    /// [`DeepStore::results`].
    ///
    /// Equivalent to `query_batch(&[request])` — single queries are just
    /// batches of one.
    ///
    /// # Errors
    ///
    /// * [`DeepStoreError::UnknownModel`] for an unloaded model id.
    /// * [`DeepStoreError::LevelUnsupported`] if the requested level
    ///   cannot execute the model (chip level vs ReId).
    /// * [`DeepStoreError::Flash`] for unknown databases or a query
    ///   vector that does not match the model
    ///   ([`FlashError::SizeMismatch`]).
    pub fn query(&mut self, request: QueryRequest) -> Result<QueryId> {
        let ids = self.query_batch(std::slice::from_ref(&request))?;
        Ok(ids[0])
    }

    /// Submits a batch of queries, returning one [`QueryId`] per request
    /// in request order.
    ///
    /// Requests that miss the query cache are grouped by
    /// `(db, model, level)`; each group shares a **single flash pass** —
    /// every page is streamed and every feature decoded once, and the
    /// fused multi-query scorer evaluates all of the group's query
    /// vectors against each feature. Per-request rankings are
    /// bit-identical to issuing the same requests sequentially.
    ///
    /// Timing: each request is charged its own query-cache lookup, and
    /// every member of a scan group is charged the group's batched scan
    /// latency (flash streaming and weight distribution amortized across
    /// the group, compute scaled by its size — see
    /// [`crate::accel::scan_batch`]). Cache lookups happen for the whole
    /// batch before any scan fills the cache, so duplicate query vectors
    /// within one batch all miss together.
    ///
    /// The whole batch is validated before any scan runs: one bad
    /// request fails the batch without issuing queries.
    ///
    /// # Errors
    ///
    /// See [`DeepStore::query`].
    pub fn query_batch(&mut self, requests: &[QueryRequest]) -> Result<Vec<QueryId>> {
        self.query_batch_tagged(requests, &[])
    }

    /// [`DeepStore::query_batch`] with end-to-end request ids.
    ///
    /// `request_ids[i]` tags request `i`'s trace spans (its per-request
    /// `query` span and its scan group's `scan` span) and the
    /// `api.tagged_requests` counter, joining the engine-side trace to
    /// the serve-layer request that carried it. An empty slice or a
    /// zero id leaves the request untagged; rankings, timing, and all
    /// other telemetry are identical either way.
    ///
    /// # Errors
    ///
    /// See [`DeepStore::query`].
    pub fn query_batch_tagged(
        &mut self,
        requests: &[QueryRequest],
        request_ids: &[u64],
    ) -> Result<Vec<QueryId>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let rid_of = |i: usize| request_ids.get(i).copied().unwrap_or(0);
        self.telemetry
            .on_tagged(request_ids.iter().filter(|&&r| r != 0).count() as u64);
        let cfg = self.engine.config();
        self.telemetry.on_batch();
        let base = self.trace_clock_ns;
        if let Some(t) = &mut self.tracer {
            t.instant("batch", "pipeline", base, 0)
                .arg_u64("requests", requests.len() as u64);
        }

        // Validate everything up front: model ids, databases, level
        // support. `scan_top_k_batch` runs on `&Engine`, so models,
        // metadata and config are all borrowed — no per-query clones of
        // weight tensors or page tables.
        let mut preps: Vec<(&Model, ScanWorkload)> = Vec::with_capacity(requests.len());
        for req in requests {
            let model_ref = self
                .models
                .get(&req.model)
                .ok_or(DeepStoreError::UnknownModel(req.model))?;
            let meta = self.engine.db_meta(req.db)?;
            let layout = DbLayout::new(
                meta.feature_bytes,
                meta.num_features,
                cfg.ssd.geometry.page_bytes,
                cfg.placement,
            );
            let workload = ScanWorkload {
                shapes: model_ref.layer_shapes(),
                weight_bytes: model_ref.weight_bytes(),
                feature_bytes: meta.feature_bytes,
                layout,
            };
            if timing_scan(req.level, &workload, cfg).is_none() {
                return Err(DeepStoreError::LevelUnsupported {
                    model: model_ref.name().to_string(),
                    level: req.level,
                });
            }
            preps.push((model_ref, workload));
        }
        if let Some(t) = &mut self.tracer {
            t.instant("validate", "pipeline", base, 0);
        }

        // Query-cache lookups (Algorithm 1), timed on the channel-level
        // accelerators. All lookups precede all fills.
        let mut elapsed = vec![SimDuration::ZERO; requests.len()];
        let mut cache_hit = vec![false; requests.len()];
        let mut ranked: Vec<Option<Vec<ScoredFeature>>> = vec![None; requests.len()];
        let mut qc_ns = vec![0u64; requests.len()];
        if let Some(qc) = &mut self.qc {
            for (i, req) in requests.iter().enumerate() {
                let lookup = lookup_time_for(
                    qc.len(),
                    &preps[i].1.shapes,
                    cfg.ssd.geometry.channels,
                    cfg.controller_overhead_cycles,
                );
                elapsed[i] += lookup;
                qc_ns[i] = lookup.as_nanos();
                self.telemetry.on_qc_lookup(lookup.as_nanos());
                if let Some(hit) = qc.lookup(&req.qfv) {
                    cache_hit[i] = true;
                    ranked[i] = Some(hit);
                }
            }
        }

        // Group the misses by (db, model, level): each group shares one
        // flash pass. Vec-of-groups (not a HashMap) keeps group order
        // deterministic — first-miss order.
        let mut groups: Vec<((DbId, ModelId, AcceleratorLevel), Vec<usize>)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            if ranked[i].is_some() {
                continue;
            }
            let key = (req.db, req.model, req.level);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        if let Some(t) = &mut self.tracer {
            t.instant("scan-group formation", "pipeline", base, 0)
                .arg_u64("groups", groups.len() as u64);
        }

        let mut skipped = vec![0u64; requests.len()];
        let mut coverage = vec![1.0f64; requests.len()];
        for (g, ((db, _, level), members)) in groups.iter().enumerate() {
            let batch: Vec<(&Model, &Tensor, usize, bool)> = members
                .iter()
                .map(|&i| {
                    (
                        preps[i].0,
                        &requests[i].qfv,
                        requests[i].k,
                        requests[i].exact,
                    )
                })
                .collect();
            let workload = &preps[members[0]].1;
            let timing = scan_batch(*level, workload, cfg, members.len())
                .expect("level support was validated above");
            let (group_results, group_faults, group_cascade) =
                self.engine.scan_top_k_batch_with(*db, &batch)?;
            let group_skipped = group_faults.skipped;
            let num_features = self.engine.db_meta(*db)?.num_features;
            let group_coverage = if num_features == 0 {
                1.0
            } else {
                (num_features - group_skipped) as f64 / num_features as f64
            };
            // Read retries stall the flash stream: charge the escalating
            // ladder cost to the group's simulated latency. The histogram
            // is functional (identical with `obs` on and off), so timing
            // and traces never depend on the telemetry feature.
            let stall = retry_stall(&cfg.ssd.timing, &group_faults.reads.retries_by_round);
            self.engine.flash_metrics().on_retry_stall(stall.as_nanos());

            // Per-shard page-walk detail: stream time and channel-bus
            // arbitration waits from the flash sim's timing model.
            let shards = shard_timings(*level, workload, cfg);
            let bus_wait: u64 = shards.iter().map(|s| s.bus_wait.as_nanos()).sum();
            let transfers: u64 = shards.iter().map(|s| s.pages).sum();
            self.engine.flash_metrics().on_bus_wait(bus_wait, transfers);
            self.telemetry.on_scan_group(
                members.len() as u64,
                group_skipped,
                timing.flash.as_nanos(),
                timing.compute.as_nanos(),
                timing.weights.as_nanos(),
                timing.elapsed.as_nanos(),
            );
            if let Some(t) = &mut self.tracer {
                // Each group gets a private block of trace lanes so its
                // spans never interleave with another group's: the
                // group-level scan/compute/weights lanes, then one lane
                // per shard. 512 lanes per block covers any geometry.
                let lane = 2000 + (g as u32) * 512;
                let scan_ns = timing.elapsed.as_nanos();
                let span = t
                    .span("scan", "scan-group", base, scan_ns, lane)
                    .arg_u64("members", members.len() as u64)
                    .arg_u64("skipped", group_skipped)
                    .arg_u64("retries", group_faults.reads.total_retries())
                    .arg_u64("recovered", group_faults.reads.recovered)
                    .arg_u64("lost_reads", group_faults.reads.lost)
                    .arg_str("level", format!("{level:?}"));
                // Join the group pass back to the serve-layer requests
                // that rode it: the comma-joined list of member ids (in
                // member order) makes the shared flash pass greppable
                // by any one request's id.
                if members.iter().any(|&i| rid_of(i) != 0) {
                    let joined = members
                        .iter()
                        .map(|&i| rid_of(i).to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    span.arg_str("request_ids", joined);
                }
                // One span per retry round on a lane near the top of the
                // group's block: duration = that round's ladder cost
                // summed over its retries, laid back-to-back so the lane
                // reads as the total retry stall.
                let mut retry_at = base + scan_ns;
                for (round, &n) in group_faults.reads.retries_by_round.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let cost = (cfg.ssd.timing.read_retry.cost_of(round as u32 + 1) * n).as_nanos();
                    t.span(
                        format!("read-retry r{}", round + 1),
                        "fault",
                        retry_at,
                        cost,
                        lane + 500,
                    )
                    .arg_u64("retries", n);
                    retry_at += cost;
                }
                t.span(
                    "compute",
                    "scan-group",
                    base,
                    timing.compute.as_nanos(),
                    lane + 1,
                );
                // Cascade effectiveness for this group's pass, on its
                // own lane inside the group block: how many per-request
                // feature decisions skipped exact scoring vs were
                // rescored. Zero-width counters would vanish in the
                // viewer, so the span covers the compute window.
                if group_cascade != CascadeStats::default() {
                    t.span(
                        "prune",
                        "cascade",
                        base,
                        timing.compute.as_nanos(),
                        lane + 400,
                    )
                    .arg_u64("pruned", group_cascade.pruned)
                    .arg_u64("rescored", group_cascade.rescored);
                }
                let weights_ns = timing.weights.as_nanos();
                t.span(
                    "weights",
                    "scan-group",
                    base + scan_ns.saturating_sub(weights_ns),
                    weights_ns,
                    lane + 2,
                );
                for shard in &shards {
                    t.span(
                        format!("flash[{}]", shard.unit),
                        "flash",
                        base,
                        shard.stream.as_nanos(),
                        lane + 3 + shard.unit as u32,
                    )
                    .arg_u64("pages", shard.pages)
                    .arg_u64("bus_wait_ns", shard.bus_wait.as_nanos());
                }
            }
            for (&i, r) in members.iter().zip(group_results) {
                elapsed[i] += timing.elapsed + stall;
                skipped[i] = group_skipped;
                coverage[i] = group_coverage;
                // Degraded answers never enter the cache: a later hit
                // would replay the partial top-K as if it covered the
                // whole database.
                if group_skipped == 0 {
                    if let Some(qc) = &mut self.qc {
                        qc.insert(requests[i].qfv.clone(), r.clone());
                    }
                }
                ranked[i] = Some(r);
            }
        }

        // Coverage policy: enforced for the whole batch after all scans
        // and before any result is published — one starved request fails
        // the batch, and no query ids are handed out.
        for (i, req) in requests.iter().enumerate() {
            if let Some(required) = req.min_coverage {
                if coverage[i] < required {
                    return Err(DeepStoreError::InsufficientCoverage {
                        required,
                        achieved: coverage[i],
                    });
                }
            }
        }

        let qc_enabled = self.qc.is_some();
        let mut ids = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let r = ranked[i].take().expect("request was scored or cache-hit");
            let top_k: Vec<QueryHit> = r
                .iter()
                .map(|e| {
                    Ok(QueryHit {
                        score: e.score,
                        feature_index: e.feature_id,
                        object_id: self.engine.object_id(req.db, e.feature_id)?,
                    })
                })
                .collect::<Result<_>>()?;
            let id = QueryId(self.next_query);
            self.next_query += 1;
            let degraded = coverage[i] < 1.0;
            self.telemetry.on_query(elapsed[i].as_nanos(), cache_hit[i]);
            if degraded {
                self.telemetry.on_degraded();
            }
            if let Some(t) = &mut self.tracer {
                // One lane per request: the query span covers lookup
                // through merge, with the cache probe nested inside it.
                let lane = 10 + i as u32;
                let span = t
                    .span("query", "query", base, elapsed[i].as_nanos(), lane)
                    .arg_u64("id", id.0)
                    .arg_u64("k", req.k as u64)
                    .arg_u64("skipped", skipped[i])
                    .arg_str("coverage", format!("{:.4}", coverage[i]))
                    .arg_str("cache", if cache_hit[i] { "hit" } else { "miss" });
                if rid_of(i) != 0 {
                    span.arg_u64("request_id", rid_of(i));
                }
                if qc_enabled {
                    t.span("qc_lookup", "qcache", base, qc_ns[i], lane);
                }
            }
            self.results.insert(
                id,
                QueryResult {
                    query_id: id,
                    top_k,
                    cache_hit: cache_hit[i],
                    elapsed: elapsed[i],
                    level: req.level,
                    skipped: skipped[i],
                    coverage: coverage[i],
                    degraded,
                },
            );
            ids.push(id);
        }
        let batch_ns = elapsed.iter().map(|e| e.as_nanos()).max().unwrap_or(0);
        if let Some(t) = &mut self.tracer {
            t.instant("merge", "pipeline", base + batch_ns, 0);
        }
        // Advance the trace clock past this batch so the next batch's
        // spans start on a fresh, non-overlapping timestamp range.
        self.trace_clock_ns = base + batch_ns + 1;
        Ok(ids)
    }

    /// Inspects a completed query's results without consuming them.
    ///
    /// Returns `None` for unknown (or already-consumed) query ids.
    pub fn peek_results(&self, query: QueryId) -> Option<&QueryResult> {
        self.results.get(&query)
    }

    /// `getResults`: retrieves (and removes) a completed query's results.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStoreError::UnknownQuery`] for unknown query ids.
    pub fn results(&mut self, query: QueryId) -> Result<QueryResult> {
        self.results
            .remove(&query)
            .ok_or(DeepStoreError::UnknownQuery(query))
    }

    /// Device-wide telemetry: query/batch/cache counters, per-stage
    /// simulated-time totals, flash event counts and the full metrics
    /// snapshot (engine registry followed by the API registry).
    ///
    /// The snapshot is deterministic: all counters are driven by the
    /// simulated timing model and physical data placement, so the same
    /// request sequence yields byte-identical stats at any
    /// `parallelism` setting. With the `obs` feature disabled all
    /// counters read zero.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        let engine_metrics = self.engine.metrics_snapshot();
        let pruned_features = engine_metrics.counter("scan.pruned_features").unwrap_or(0);
        let rescored_features = engine_metrics
            .counter("scan.rescored_features")
            .unwrap_or(0);
        DeviceStats {
            queries: self.telemetry.queries(),
            batches: self.telemetry.batches(),
            cache_hits: self.telemetry.cache_hits(),
            cache_misses: self.telemetry.cache_misses(),
            scan_groups: self.telemetry.scan_groups(),
            unreadable_skipped: self.engine.unreadable_skipped(),
            pruned_features,
            rescored_features,
            degraded_queries: self.telemetry.degraded_queries(),
            stages: self.telemetry.stage_totals(),
            flash: self.engine.flash_event_counts(),
            metrics: merge_snapshots(vec![engine_metrics, self.telemetry.snapshot()]),
        }
    }

    /// Starts recording a per-query trace timeline. Subsequent batches
    /// append spans; [`DeepStore::trace_json`] renders the accumulated
    /// timeline as Chrome trace-event JSON (load it in
    /// `chrome://tracing` or Perfetto).
    ///
    /// Timestamps are simulated nanoseconds, not wall-clock time, so a
    /// trace of the same request sequence is byte-identical across runs
    /// and `parallelism` settings.
    pub fn enable_tracing(&mut self) {
        if self.tracer.is_none() {
            self.tracer = Some(TraceRecorder::new());
        }
    }

    /// Renders the recorded trace as Chrome trace-event JSON, or `None`
    /// if [`DeepStore::enable_tracing`] was never called.
    #[must_use]
    pub fn trace_json(&self) -> Option<String> {
        self.tracer.as_ref().map(TraceRecorder::to_json)
    }

    /// Drops an instant marker on the pipeline lane at the current
    /// trace clock (no-op unless tracing is enabled). The wire/runtime
    /// layer uses this to mark request decode.
    pub fn trace_mark(&mut self, name: &'static str) {
        let ts = self.trace_clock_ns;
        if let Some(t) = &mut self.tracer {
            t.instant(name, "pipeline", ts, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    fn setup(app: &str, n: u64) -> (DeepStore, Model, DbId, ModelId) {
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        let model = zoo::by_name(app).unwrap().seeded(42);
        let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        (store, model, db, mid)
    }

    #[test]
    fn request_builder_defaults() {
        let (_, model, db, mid) = setup("tir", 1);
        let req = QueryRequest::new(model.random_feature(0), mid, db);
        assert_eq!(req.k, 1);
        assert_eq!(req.level, AcceleratorLevel::Channel);
        let req = req.k(9).level(AcceleratorLevel::Ssd);
        assert_eq!(req.k, 9);
        assert_eq!(req.level, AcceleratorLevel::Ssd);
    }

    #[test]
    fn end_to_end_query_returns_ranked_results() {
        let (mut store, model, db, mid) = setup("tir", 64);
        let q = model.random_feature(1000);
        let qid = store.query(QueryRequest::new(q, mid, db).k(5)).unwrap();
        let r = store.results(qid).unwrap();
        assert_eq!(r.top_k.len(), 5);
        assert!(!r.cache_hit);
        assert!(r.elapsed > SimDuration::ZERO);
        // Scores are sorted descending.
        for w in r.top_k.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Results are consumed.
        assert_eq!(store.results(qid), Err(DeepStoreError::UnknownQuery(qid)));
    }

    #[test]
    fn peek_does_not_consume_results() {
        let (mut store, model, db, mid) = setup("tir", 16);
        let qid = store
            .query(QueryRequest::new(model.random_feature(7), mid, db).k(3))
            .unwrap();
        assert_eq!(store.peek_results(qid).unwrap().top_k.len(), 3);
        // Peeking twice still works; consuming then peeking does not.
        let peeked = store.peek_results(qid).unwrap().clone();
        let consumed = store.results(qid).unwrap();
        assert_eq!(peeked, consumed);
        assert!(store.peek_results(qid).is_none());
    }

    #[test]
    fn unknown_ids_get_dedicated_errors() {
        let (mut store, model, db, mid) = setup("tir", 4);
        let q = model.random_feature(0);
        assert_eq!(
            store.query(QueryRequest::new(q.clone(), ModelId(999), db)),
            Err(DeepStoreError::UnknownModel(ModelId(999)))
        );
        assert!(matches!(
            store.query(QueryRequest::new(q, mid, DbId(999))),
            Err(DeepStoreError::Flash(FlashError::UnknownDb(999)))
        ));
        assert_eq!(
            store.results(QueryId(777)),
            Err(DeepStoreError::UnknownQuery(QueryId(777)))
        );
    }

    #[test]
    fn repeated_builder_queries_are_deterministic() {
        let (mut store, model, db, mid) = setup("textqa", 32);
        store.disable_qc();
        let q = model.random_feature(5);
        let q1 = store
            .query(QueryRequest::new(q.clone(), mid, db).k(4))
            .unwrap();
        let q2 = store.query(QueryRequest::new(q, mid, db).k(4)).unwrap();
        let r1 = store.results(q1).unwrap();
        let r2 = store.results(q2).unwrap();
        assert_eq!(r1.top_k, r2.top_k);
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.skipped, r2.skipped);
    }

    #[test]
    fn stats_reports_stage_totals_and_flash_counts() {
        let (mut store, model, db, mid) = setup("textqa", 48);
        let q1 = store
            .query(QueryRequest::new(model.random_feature(5), mid, db).k(3))
            .unwrap();
        let reqs: Vec<_> = (0..3)
            .map(|i| QueryRequest::new(model.random_feature(100 + i), mid, db).k(3))
            .collect();
        let ids = store.query_batch(&reqs).unwrap();
        let _ = store.results(q1).unwrap();
        for id in ids {
            let _ = store.results(id).unwrap();
        }
        let stats = store.stats();
        if cfg!(feature = "obs") {
            assert_eq!(stats.queries, 4);
            assert_eq!(stats.batches, 2);
            assert_eq!(stats.cache_hits + stats.cache_misses, 4);
            assert!(stats.scan_groups >= 1);
            assert!(stats.stages.scan_ns > 0);
            assert!(stats.stages.total_ns >= stats.stages.scan_ns);
            assert!(stats.flash.page_reads > 0);
            assert!(stats.metrics.counter("api.queries").is_some());
            assert!(stats.metrics.counter("engine.scans").is_some());
        } else {
            assert_eq!(stats.queries, 0);
            // Flash op counts come from the functional sim, not the
            // obs hooks, so they survive the feature being disabled.
            assert!(stats.flash.page_reads > 0);
        }
    }

    #[test]
    fn trace_json_is_emitted_and_reproducible() {
        let run = || {
            let (mut store, model, db, mid) = setup("textqa", 32);
            store.enable_tracing();
            let reqs: Vec<_> = (0..2)
                .map(|i| QueryRequest::new(model.random_feature(i), mid, db).k(2))
                .collect();
            store.query_batch(&reqs).unwrap();
            store.trace_json().expect("tracing enabled")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "trace must be byte-identical across runs");
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("scan-group formation"));
        assert!(a.contains("qc_lookup"));
    }

    #[test]
    fn repeated_query_hits_cache_and_is_faster() {
        let (mut store, model, db, mid) = setup("textqa", 64);
        let q = model.random_feature(7);
        let q1 = store
            .query(QueryRequest::new(q.clone(), mid, db).k(3))
            .unwrap();
        let r1 = store.results(q1).unwrap();
        let q2 = store.query(QueryRequest::new(q, mid, db).k(3)).unwrap();
        let r2 = store.results(q2).unwrap();
        assert!(!r1.cache_hit);
        assert!(r2.cache_hit);
        assert!(r2.elapsed < r1.elapsed, "{} !< {}", r2.elapsed, r1.elapsed);
        // Same answers.
        let ids1: Vec<u64> = r1.top_k.iter().map(|h| h.feature_index).collect();
        let ids2: Vec<u64> = r2.top_k.iter().map(|h| h.feature_index).collect();
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn write_db_invalidates_cache() {
        let (mut store, model, db, mid) = setup("textqa", 32);
        let q = model.random_feature(7);
        let _ = store
            .query(QueryRequest::new(q.clone(), mid, db).k(3))
            .unwrap();
        store.append_db(db, &[model.random_feature(999)]).unwrap();
        let q2 = store.query(QueryRequest::new(q, mid, db).k(3)).unwrap();
        assert!(!store.results(q2).unwrap().cache_hit);
    }

    #[test]
    fn read_db_returns_original_features() {
        let (store, model, db, _) = setup("mir", 20);
        // `read_db` takes `&self`: no mutable borrow needed.
        let got = store.read_db(db, 5, 3).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], model.random_feature(5));
        assert!(store.read_db(db, 18, 5).is_err());
    }

    #[test]
    fn unweighted_model_rejected() {
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        let graph = ModelGraph::from_model(&zoo::tir());
        assert!(store.load_model(&graph).is_err());
    }

    #[test]
    fn chip_level_rejects_reid_queries() {
        let (mut store, model, db, mid) = setup("reid", 4);
        let q = model.random_feature(0);
        let err = store
            .query(
                QueryRequest::new(q.clone(), mid, db)
                    .k(2)
                    .level(AcceleratorLevel::Chip),
            )
            .unwrap_err();
        assert_eq!(
            err,
            DeepStoreError::LevelUnsupported {
                model: "reid".into(),
                level: AcceleratorLevel::Chip,
            }
        );
        // Channel level works.
        assert!(store.query(QueryRequest::new(q, mid, db).k(2)).is_ok());
    }

    #[test]
    fn wrong_query_length_is_rejected() {
        let (mut store, _, db, mid) = setup("tir", 8);
        let bad = Tensor::random(vec![7], 1.0, 0);
        assert!(store.query(QueryRequest::new(bad, mid, db).k(2)).is_err());
    }

    #[test]
    fn qc_can_be_reconfigured_and_disabled() {
        let (mut store, model, db, mid) = setup("textqa", 16);
        store.set_qc(QueryCacheConfig {
            capacity: 2,
            threshold: 0.0,
            qcn_accuracy: 1.0,
        });
        let q = model.random_feature(3);
        let _ = store
            .query(QueryRequest::new(q.clone(), mid, db).k(2))
            .unwrap();
        let q2 = store
            .query(QueryRequest::new(q.clone(), mid, db).k(2))
            .unwrap();
        assert!(store.results(q2).unwrap().cache_hit);
        store.disable_qc();
        assert!(store.qc_stats().is_none());
        let q3 = store.query(QueryRequest::new(q, mid, db).k(2)).unwrap();
        assert!(!store.results(q3).unwrap().cache_hit);
    }

    #[test]
    fn levels_order_query_latency() {
        let (mut store, model, db, mid) = setup("mir", 32);
        store.disable_qc();
        let q = model.random_feature(5);
        let mut elapsed = Vec::new();
        for level in [
            AcceleratorLevel::Ssd,
            AcceleratorLevel::Channel,
            AcceleratorLevel::Chip,
        ] {
            let qid = store
                .query(QueryRequest::new(q.clone(), mid, db).k(3).level(level))
                .unwrap();
            elapsed.push(store.results(qid).unwrap().elapsed);
        }
        // Channel is fastest on this tiny DB too (same model ordering).
        assert!(elapsed[1] <= elapsed[0]);
        assert!(elapsed[1] <= elapsed[2]);
    }

    #[test]
    fn object_ids_resolve_to_real_features() {
        let (mut store, model, db, mid) = setup("textqa", 48);
        store.disable_qc();
        let q = model.random_feature(123);
        let qid = store
            .query(QueryRequest::new(q.clone(), mid, db).k(4))
            .unwrap();
        let r = store.results(qid).unwrap();
        for hit in &r.top_k {
            let f = store.read_db(db, hit.feature_index, 1).unwrap();
            let score = model.similarity(&q, &f[0]).unwrap();
            assert!((score - hit.score).abs() < 1e-6);
        }
    }

    #[test]
    fn create_close_open_roundtrips_device_state() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "deepstore-api-lifecycle-{}-{}.img",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let _cleanup = Cleanup(path.clone());

        let mut cfg = DeepStoreConfig::small();
        cfg.qc_capacity = 0; // cold cache on both sides of the reopen
        let model = zoo::textqa().seeded(42);
        let features: Vec<Tensor> = (0..48).map(|i| model.random_feature(i)).collect();
        let q = model.random_feature(1000);

        let mut store = DeepStore::create(&path, cfg.clone()).unwrap();
        assert_eq!(store.backend(), "mmap");
        assert!(store.is_persistent() && !store.opened_dirty());
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        let qid = store
            .query(QueryRequest::new(q.clone(), mid, db).k(5))
            .unwrap();
        let expected = store.results(qid).unwrap();
        let counts = store.flash_op_counts();
        store.close().unwrap();

        let mut back = DeepStore::open(&path).unwrap();
        assert!(!back.opened_dirty(), "closed cleanly");
        assert_eq!(back.flash_op_counts(), counts);
        // Same ids keep working; the ranked answer is bit-identical.
        let qid = back.query(QueryRequest::new(q, mid, db).k(5)).unwrap();
        let again = back.results(qid).unwrap();
        assert_eq!(again.top_k, expected.top_k);
        assert_eq!(again.elapsed, expected.elapsed);
        // Creating over an existing image is refused.
        assert!(matches!(
            DeepStore::create(&path, cfg),
            Err(DeepStoreError::Flash(FlashError::Image(_)))
        ));
        back.close().unwrap();
    }

    #[test]
    fn in_memory_flush_and_close_are_noops() {
        let (mut store, model, db, mid) = setup("tir", 8);
        assert_eq!(store.backend(), "heap");
        assert!(!store.is_persistent());
        store.flush().unwrap();
        let qid = store
            .query(QueryRequest::new(model.random_feature(1), mid, db).k(2))
            .unwrap();
        assert!(store.results(qid).is_ok());
        store.close().unwrap();
    }

    #[test]
    fn batch_matches_sequential_and_amortizes_latency() {
        let (mut store, model, db, mid) = setup("tir", 48);
        store.disable_qc();
        let queries: Vec<Tensor> = (500..508).map(|i| model.random_feature(i)).collect();

        // Sequential baseline.
        let mut seq = Vec::new();
        for q in &queries {
            let qid = store
                .query(QueryRequest::new(q.clone(), mid, db).k(5))
                .unwrap();
            seq.push(store.results(qid).unwrap());
        }

        let reqs: Vec<QueryRequest> = queries
            .iter()
            .map(|q| QueryRequest::new(q.clone(), mid, db).k(5))
            .collect();
        let ids = store.query_batch(&reqs).unwrap();
        assert_eq!(ids.len(), 8);
        let total_seq: SimDuration = seq.iter().map(|s| s.elapsed).sum();
        for (id, s) in ids.iter().zip(&seq) {
            let b = store.results(*id).unwrap();
            assert_eq!(b.top_k, s.top_k, "batched ranking must be bit-identical");
            // The shared pass costs less than running the whole batch
            // back-to-back (one member's latency can exceed a lone
            // query's on a compute-bound micro-DB, but never the sum).
            assert!(
                b.elapsed < total_seq,
                "batched pass {} !< sequential total {}",
                b.elapsed,
                total_seq
            );
            assert!(
                b.elapsed >= s.elapsed,
                "a batch member never beats a lone query"
            );
        }
    }

    #[test]
    fn batch_groups_by_db_model_and_level() {
        let (mut store, model, db, mid) = setup("tir", 24);
        store.disable_qc();
        let other = zoo::tir().seeded(7);
        let features: Vec<Tensor> = (0..24).map(|i| other.random_feature(100 + i)).collect();
        let db2 = store.write_db(&features).unwrap();
        let mid2 = store.load_model(&ModelGraph::from_model(&other)).unwrap();

        // Interleave requests against two (db, model) pairs; each pair
        // still resolves correctly and in request order.
        let reqs: Vec<QueryRequest> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    QueryRequest::new(model.random_feature(900 + i), mid, db).k(3)
                } else {
                    QueryRequest::new(other.random_feature(900 + i), mid2, db2).k(3)
                }
            })
            .collect();
        let ids = store.query_batch(&reqs).unwrap();
        for (id, req) in ids.iter().zip(&reqs) {
            let r = store.results(*id).unwrap();
            assert_eq!(r.top_k.len(), 3);
            // Recompute the best hit against the right database.
            let best = store.read_db(req.db, r.top_k[0].feature_index, 1).unwrap();
            let m = if req.model == mid { &model } else { &other };
            let score = m.similarity(&req.qfv, &best[0]).unwrap();
            assert!((score - r.top_k[0].score).abs() < 1e-6);
        }
    }

    #[test]
    fn batch_cache_lookups_precede_fills() {
        let (mut store, model, db, mid) = setup("textqa", 16);
        let q = model.random_feature(3);
        // Two identical queries in one batch: both miss (lookups happen
        // before any fill), then a later query hits.
        let reqs = vec![
            QueryRequest::new(q.clone(), mid, db).k(2),
            QueryRequest::new(q.clone(), mid, db).k(2),
        ];
        let ids = store.query_batch(&reqs).unwrap();
        assert!(!store.results(ids[0]).unwrap().cache_hit);
        assert!(!store.results(ids[1]).unwrap().cache_hit);
        let later = store.query(QueryRequest::new(q, mid, db).k(2)).unwrap();
        assert!(store.results(later).unwrap().cache_hit);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (mut store, _, _, _) = setup("tir", 4);
        assert_eq!(store.query_batch(&[]).unwrap(), Vec::<QueryId>::new());
    }

    #[test]
    fn bad_request_fails_whole_batch_without_side_effects() {
        let (mut store, model, db, mid) = setup("tir", 8);
        store.disable_qc();
        let reads_before = store.flash_op_counts().reads;
        let reqs = vec![
            QueryRequest::new(model.random_feature(0), mid, db).k(2),
            QueryRequest::new(model.random_feature(1), ModelId(42), db).k(2),
        ];
        assert_eq!(
            store.query_batch(&reqs),
            Err(DeepStoreError::UnknownModel(ModelId(42)))
        );
        // Validation rejected the batch before any scan ran.
        let reads_after = store.flash_op_counts().reads;
        assert_eq!(reads_before, reads_after);
    }
}
