//! The in-storage runtime: multi-query scheduling on a simulated clock.
//!
//! The query engine "is responsible for consuming queries, managing the
//! QC, scheduling work on the DeepStore accelerators, and aggregating the
//! results" (§4.7.1). This module adds the scheduling dimension on top of
//! [`crate::api::DeepStore`]: queries arrive at timestamps, are queued,
//! and execute serially on the accelerator fabric (one query owns all the
//! accelerators of its level — the paper's map-reduce model parallelizes
//! *within* a query, not across queries). Regular block I/O issued while
//! a query holds the read path sees the §4.5 busy behaviour: "the SSD
//! controller responds to regular read/write operations with a busy
//! signal", modelled as queueing delay.
//!
//! The runtime produces per-query latency records (arrival, start,
//! completion, queueing) and aggregate statistics (throughput, mean/p50/
//! p95/p99 latency) used by the `throughput` experiment binary.

use crate::api::{DeepStore, ModelId};
use crate::config::AcceleratorLevel;
use crate::engine::DbId;
use deepstore_flash::{FlashError, Result, SimDuration};
use deepstore_nn::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A query waiting to run.
#[derive(Debug, Clone)]
struct PendingQuery {
    arrival: SimDuration,
    qfv: Tensor,
    k: usize,
    model: ModelId,
    db: DbId,
    level: AcceleratorLevel,
}

/// Completion record for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// When the query arrived (simulated).
    pub arrival: SimDuration,
    /// When it started executing.
    pub start: SimDuration,
    /// When its results were ready.
    pub completion: SimDuration,
    /// Whether the query cache served it.
    pub cache_hit: bool,
}

impl QueryRecord {
    /// Time spent waiting behind other queries.
    pub fn queueing(&self) -> SimDuration {
        self.start - self.arrival
    }

    /// End-to-end latency (arrival to completion).
    pub fn latency(&self) -> SimDuration {
        self.completion - self.arrival
    }

    /// Service time alone.
    pub fn service(&self) -> SimDuration {
        self.completion - self.start
    }
}

/// Aggregate latency/throughput statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Completed queries.
    pub completed: u64,
    /// Cache hits among them.
    pub cache_hits: u64,
    /// Makespan: first arrival to last completion.
    pub makespan: SimDuration,
    /// Queries per second over the makespan.
    pub throughput_qps: f64,
    /// Mean end-to-end latency.
    pub mean_latency: SimDuration,
    /// Median latency.
    pub p50_latency: SimDuration,
    /// 95th-percentile latency.
    pub p95_latency: SimDuration,
    /// 99th-percentile latency.
    pub p99_latency: SimDuration,
}

/// Serial query scheduler over a [`DeepStore`] device.
#[derive(Debug)]
pub struct Runtime {
    store: DeepStore,
    queue: VecDeque<PendingQuery>,
    /// When the accelerator fabric frees up.
    fabric_free: SimDuration,
    records: Vec<QueryRecord>,
    /// Regular (non-query) I/O requests deferred by the busy signal.
    deferred_io: u64,
}

impl Runtime {
    /// Wraps a device in a scheduler.
    pub fn new(store: DeepStore) -> Self {
        Runtime {
            store,
            queue: VecDeque::new(),
            fabric_free: SimDuration::ZERO,
            records: Vec::new(),
            deferred_io: 0,
        }
    }

    /// The wrapped device.
    pub fn store_mut(&mut self) -> &mut DeepStore {
        &mut self.store
    }

    /// Read-only view of the wrapped device (stats, config).
    pub fn store(&self) -> &DeepStore {
        &self.store
    }

    /// Queued (not yet executed) queries.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Regular I/O operations that hit the busy signal so far.
    pub fn deferred_io(&self) -> u64 {
        self.deferred_io
    }

    /// Completion records so far.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Enqueues a query arriving at simulated time `arrival`.
    ///
    /// Arrivals must be non-decreasing (the runtime is fed from a trace).
    ///
    /// # Panics
    ///
    /// Panics if `arrival` precedes the previous arrival.
    pub fn submit_at(
        &mut self,
        arrival: SimDuration,
        qfv: Tensor,
        k: usize,
        model: ModelId,
        db: DbId,
        level: AcceleratorLevel,
    ) {
        if let Some(last) = self.queue.back() {
            assert!(arrival >= last.arrival, "arrivals must be ordered");
        }
        self.queue.push_back(PendingQuery {
            arrival,
            qfv,
            k,
            model,
            db,
            level,
        });
    }

    /// A regular block read arriving at `now`: if a query holds the read
    /// path, the host sees a busy signal and the read is serviced when the
    /// fabric frees (§4.5). Returns the time the read can start.
    pub fn regular_read_at(&mut self, now: SimDuration) -> SimDuration {
        if now < self.fabric_free {
            self.deferred_io += 1;
            self.fabric_free
        } else {
            now
        }
    }

    /// Drains the queue, executing every pending query in arrival order.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (unknown handles, unsupported levels);
    /// queries before the failing one remain recorded.
    pub fn run_to_completion(&mut self) -> Result<()> {
        while let Some(p) = self.queue.pop_front() {
            let start = p.arrival.max(self.fabric_free);
            let qid = self.store.query(&p.qfv, p.k, p.model, p.db, p.level)?;
            let result = self.store.results(qid)?;
            let completion = start + result.elapsed;
            self.fabric_free = completion;
            self.records.push(QueryRecord {
                arrival: p.arrival,
                start,
                completion,
                cache_hit: result.cache_hit,
            });
        }
        Ok(())
    }

    /// Aggregate statistics over the completed queries.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::SizeMismatch`] if no queries have completed.
    pub fn stats(&self) -> Result<RuntimeStats> {
        if self.records.is_empty() {
            return Err(FlashError::SizeMismatch {
                expected: 1,
                found: 0,
            });
        }
        let mut latencies: Vec<SimDuration> = self.records.iter().map(|r| r.latency()).collect();
        latencies.sort_unstable();
        let pct = |p: f64| {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx]
        };
        let first = self
            .records
            .iter()
            .map(|r| r.arrival)
            .min()
            .expect("non-empty");
        let last = self
            .records
            .iter()
            .map(|r| r.completion)
            .max()
            .expect("non-empty");
        let makespan = last - first;
        let total: SimDuration = latencies.iter().copied().sum();
        Ok(RuntimeStats {
            completed: self.records.len() as u64,
            cache_hits: self.records.iter().filter(|r| r.cache_hit).count() as u64,
            makespan,
            throughput_qps: self.records.len() as f64 / makespan.as_secs_f64().max(1e-12),
            mean_latency: SimDuration::from_nanos(total.as_nanos() / latencies.len() as u64),
            p50_latency: pct(0.50),
            p95_latency: pct(0.95),
            p99_latency: pct(0.99),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepStoreConfig;
    use deepstore_nn::{zoo, ModelGraph};

    fn runtime_with(n: u64) -> (Runtime, deepstore_nn::Model, DbId, ModelId) {
        let model = zoo::textqa().seeded(3);
        let mut store = DeepStore::new(DeepStoreConfig::small());
        store.disable_qc();
        let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        (Runtime::new(store), model, db, mid)
    }

    #[test]
    fn serial_queries_queue_behind_each_other() {
        let (mut rt, model, db, mid) = runtime_with(32);
        // Two queries arriving at the same instant: the second queues.
        for i in 0..2 {
            rt.submit_at(
                SimDuration::ZERO,
                model.random_feature(100 + i),
                3,
                mid,
                db,
                AcceleratorLevel::Channel,
            );
        }
        rt.run_to_completion().unwrap();
        let r = rt.records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].queueing(), SimDuration::ZERO);
        assert_eq!(r[1].start, r[0].completion);
        assert!(r[1].queueing() > SimDuration::ZERO);
    }

    #[test]
    fn idle_arrivals_do_not_queue() {
        let (mut rt, model, db, mid) = runtime_with(32);
        rt.submit_at(
            SimDuration::ZERO,
            model.random_feature(1),
            2,
            mid,
            db,
            AcceleratorLevel::Channel,
        );
        rt.submit_at(
            SimDuration::from_millis(100), // long after the first finishes
            model.random_feature(2),
            2,
            mid,
            db,
            AcceleratorLevel::Channel,
        );
        rt.run_to_completion().unwrap();
        assert_eq!(rt.records()[1].queueing(), SimDuration::ZERO);
    }

    #[test]
    fn busy_signal_defers_regular_io() {
        let (mut rt, model, db, mid) = runtime_with(16);
        rt.submit_at(
            SimDuration::ZERO,
            model.random_feature(9),
            2,
            mid,
            db,
            AcceleratorLevel::Channel,
        );
        rt.run_to_completion().unwrap();
        let busy_until = rt.records()[0].completion;
        // A regular read mid-query is deferred to completion.
        let mid_query = SimDuration::from_nanos(busy_until.as_nanos() / 2);
        assert_eq!(rt.regular_read_at(mid_query), busy_until);
        assert_eq!(rt.deferred_io(), 1);
        // After the query, reads pass through.
        let later = busy_until + SimDuration::from_micros(1);
        assert_eq!(rt.regular_read_at(later), later);
        assert_eq!(rt.deferred_io(), 1);
    }

    #[test]
    fn stats_summarize_latencies() {
        let (mut rt, model, db, mid) = runtime_with(32);
        for i in 0..8 {
            rt.submit_at(
                SimDuration::from_micros(i * 10),
                model.random_feature(200 + i),
                2,
                mid,
                db,
                AcceleratorLevel::Channel,
            );
        }
        rt.run_to_completion().unwrap();
        let s = rt.stats().unwrap();
        assert_eq!(s.completed, 8);
        assert!(s.throughput_qps > 0.0);
        assert!(s.p50_latency <= s.p95_latency);
        assert!(s.p95_latency <= s.p99_latency);
        assert!(s.mean_latency >= rt.records()[0].latency().min(s.p50_latency));
        assert!(s.makespan >= s.p99_latency);
    }

    #[test]
    fn empty_stats_is_error() {
        let (rt, ..) = runtime_with(4);
        assert!(rt.stats().is_err());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn out_of_order_arrivals_panic() {
        let (mut rt, model, db, mid) = runtime_with(4);
        rt.submit_at(
            SimDuration::from_micros(10),
            model.random_feature(0),
            1,
            mid,
            db,
            AcceleratorLevel::Channel,
        );
        rt.submit_at(
            SimDuration::ZERO,
            model.random_feature(1),
            1,
            mid,
            db,
            AcceleratorLevel::Channel,
        );
    }

    #[test]
    fn cache_hits_recorded_in_stats() {
        let (mut rt, model, db, mid) = runtime_with(16);
        rt.store_mut().set_qc(crate::qcache::QueryCacheConfig {
            capacity: 4,
            threshold: 0.10,
            qcn_accuracy: 1.0,
        });
        let q = model.random_feature(5);
        for i in 0..3 {
            rt.submit_at(
                SimDuration::from_micros(i),
                q.clone(),
                2,
                mid,
                db,
                AcceleratorLevel::Channel,
            );
        }
        rt.run_to_completion().unwrap();
        let s = rt.stats().unwrap();
        assert_eq!(s.completed, 3);
        assert_eq!(s.cache_hits, 2);
    }
}
