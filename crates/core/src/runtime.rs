//! The in-storage runtime: multi-query scheduling on a simulated clock.
//!
//! The query engine "is responsible for consuming queries, managing the
//! QC, scheduling work on the DeepStore accelerators, and aggregating the
//! results" (§4.7.1). This module adds the scheduling dimension on top of
//! [`crate::api::DeepStore`]: queries arrive at timestamps, are queued,
//! and execute on the accelerator fabric (one batch owns all the
//! accelerators of its level — the paper's map-reduce model parallelizes
//! *within* a scan, not across scans). Regular block I/O issued while
//! a query holds the read path sees the §4.5 busy behaviour: "the SSD
//! controller responds to regular read/write operations with a busy
//! signal", modelled as queueing delay.
//!
//! # Batching window
//!
//! With [`Runtime::set_batch_window`] enabled, the scheduler holds the
//! fabric for `window` after a batch's nominal start and lets co-pending
//! queries against the same `(db, model, level)` join the same flash
//! pass via [`DeepStore::query_batch`] — trading a bounded added latency
//! on the lead query for amortized flash streaming across the group.
//! `None` (the default) preserves the serial one-query-at-a-time
//! schedule exactly.
//!
//! The runtime produces per-query latency records (arrival, start,
//! completion, queueing) and aggregate statistics (throughput, mean/p50/
//! p95/p99 latency) used by the `throughput` experiment binary.

use crate::api::{DeepStore, QueryRequest};
use crate::error::Result;
use deepstore_flash::{FlashError, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A query waiting to run.
#[derive(Debug, Clone)]
struct PendingQuery {
    arrival: SimDuration,
    request: QueryRequest,
}

/// Completion record for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// When the query arrived (simulated).
    pub arrival: SimDuration,
    /// When it started executing.
    pub start: SimDuration,
    /// When its results were ready.
    pub completion: SimDuration,
    /// Whether the query cache served it.
    pub cache_hit: bool,
    /// Whether the answer was degraded (scan coverage below 1.0).
    pub degraded: bool,
    /// How many queries shared the batch that served it.
    pub batch_size: usize,
}

impl QueryRecord {
    /// Time spent waiting behind other queries.
    pub fn queueing(&self) -> SimDuration {
        self.start - self.arrival
    }

    /// End-to-end latency (arrival to completion).
    pub fn latency(&self) -> SimDuration {
        self.completion - self.arrival
    }

    /// Service time alone.
    pub fn service(&self) -> SimDuration {
        self.completion - self.start
    }
}

/// Aggregate latency/throughput statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Completed queries.
    pub completed: u64,
    /// Cache hits among them.
    pub cache_hits: u64,
    /// Queries answered with degraded (partial-coverage) results.
    pub degraded: u64,
    /// Makespan: first arrival to last completion.
    pub makespan: SimDuration,
    /// Queries per second over the makespan.
    pub throughput_qps: f64,
    /// Mean end-to-end latency.
    pub mean_latency: SimDuration,
    /// Median latency.
    pub p50_latency: SimDuration,
    /// 95th-percentile latency.
    pub p95_latency: SimDuration,
    /// 99th-percentile latency.
    pub p99_latency: SimDuration,
}

/// Query scheduler over a [`DeepStore`] device.
#[derive(Debug)]
pub struct Runtime {
    store: DeepStore,
    queue: VecDeque<PendingQuery>,
    /// When the accelerator fabric frees up.
    fabric_free: SimDuration,
    /// Batching window (`None` = serial execution).
    batch_window: Option<SimDuration>,
    records: Vec<QueryRecord>,
    /// Regular (non-query) I/O requests deferred by the busy signal.
    deferred_io: u64,
}

impl Runtime {
    /// Wraps a device in a scheduler.
    pub fn new(store: DeepStore) -> Self {
        Runtime {
            store,
            queue: VecDeque::new(),
            fabric_free: SimDuration::ZERO,
            batch_window: None,
            records: Vec::new(),
            deferred_io: 0,
        }
    }

    /// The wrapped device.
    pub fn store_mut(&mut self) -> &mut DeepStore {
        &mut self.store
    }

    /// Read-only view of the wrapped device (stats, config).
    pub fn store(&self) -> &DeepStore {
        &self.store
    }

    /// The wrapped device's telemetry snapshot (pipeline counters,
    /// per-stage latency totals, flash event counts) — distinct from
    /// [`Runtime::stats`], which summarizes the *schedule* (queueing,
    /// latency percentiles) rather than the device pipeline.
    #[must_use]
    pub fn device_stats(&self) -> crate::telemetry::DeviceStats {
        self.store.stats()
    }

    /// Sets the batching window: when `Some(w)`, a batch nominally
    /// starting at `t` also admits queued queries against the same
    /// `(db, model, level)` whose arrival is at most `t + w`, and the
    /// whole group executes as one [`DeepStore::query_batch`] starting
    /// at `t + w`. `None` (the default) runs queries one at a time.
    pub fn set_batch_window(&mut self, window: Option<SimDuration>) {
        self.batch_window = window;
    }

    /// The configured batching window.
    pub fn batch_window(&self) -> Option<SimDuration> {
        self.batch_window
    }

    /// Queued (not yet executed) queries.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Regular I/O operations that hit the busy signal so far.
    pub fn deferred_io(&self) -> u64 {
        self.deferred_io
    }

    /// Completion records so far.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Enqueues a query arriving at simulated time `arrival`.
    ///
    /// Arrivals must be non-decreasing (the runtime is fed from a trace).
    ///
    /// # Panics
    ///
    /// Panics if `arrival` precedes the previous arrival.
    pub fn submit_at(&mut self, arrival: SimDuration, request: QueryRequest) {
        if let Some(last) = self.queue.back() {
            assert!(arrival >= last.arrival, "arrivals must be ordered");
        }
        self.queue.push_back(PendingQuery { arrival, request });
    }

    /// A regular block read arriving at `now`: if a query holds the read
    /// path, the host sees a busy signal and the read is serviced when the
    /// fabric frees (§4.5). Returns the time the read can start.
    pub fn regular_read_at(&mut self, now: SimDuration) -> SimDuration {
        if now < self.fabric_free {
            self.deferred_io += 1;
            self.fabric_free
        } else {
            now
        }
    }

    /// Drains the queue, executing every pending query in arrival order
    /// (coalescing same-`(db, model, level)` neighbours when a batching
    /// window is set).
    ///
    /// # Errors
    ///
    /// Propagates engine errors (unknown handles, unsupported levels);
    /// queries before the failing batch remain recorded.
    pub fn run_to_completion(&mut self) -> Result<()> {
        while let Some(front) = self.queue.pop_front() {
            let nominal_start = front.arrival.max(self.fabric_free);
            let (batch_start, members) = match self.batch_window {
                None => (nominal_start, vec![front]),
                Some(window) => {
                    let batch_start = nominal_start + window;
                    let key = (front.request.db, front.request.model, front.request.level);
                    let mut members = vec![front];
                    // The queue is arrival-ordered, so stop at the first
                    // arrival past the window; non-matching queries keep
                    // their place in line.
                    let mut i = 0;
                    while i < self.queue.len() {
                        let p = &self.queue[i];
                        if p.arrival > batch_start {
                            break;
                        }
                        if (p.request.db, p.request.model, p.request.level) == key {
                            members.push(self.queue.remove(i).expect("index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                    (batch_start, members)
                }
            };

            let requests: Vec<QueryRequest> = members.iter().map(|m| m.request.clone()).collect();
            let ids = self.store.query_batch(&requests)?;
            let mut fabric_free = self.fabric_free;
            for (m, id) in members.iter().zip(ids) {
                let result = self.store.results(id)?;
                let completion = batch_start + result.elapsed;
                fabric_free = fabric_free.max(completion);
                self.records.push(QueryRecord {
                    arrival: m.arrival,
                    start: batch_start,
                    completion,
                    cache_hit: result.cache_hit,
                    degraded: result.degraded,
                    batch_size: members.len(),
                });
            }
            self.fabric_free = fabric_free;
        }
        Ok(())
    }

    /// Aggregate statistics over the completed queries.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::SizeMismatch`] if no queries have completed.
    pub fn stats(&self) -> Result<RuntimeStats> {
        if self.records.is_empty() {
            return Err(FlashError::SizeMismatch {
                expected: 1,
                found: 0,
            }
            .into());
        }
        let mut latencies: Vec<SimDuration> = self.records.iter().map(|r| r.latency()).collect();
        latencies.sort_unstable();
        let pct = |p: f64| {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx]
        };
        let first = self
            .records
            .iter()
            .map(|r| r.arrival)
            .min()
            .expect("non-empty");
        let last = self
            .records
            .iter()
            .map(|r| r.completion)
            .max()
            .expect("non-empty");
        let makespan = last - first;
        let total: SimDuration = latencies.iter().copied().sum();
        Ok(RuntimeStats {
            completed: self.records.len() as u64,
            cache_hits: self.records.iter().filter(|r| r.cache_hit).count() as u64,
            degraded: self.records.iter().filter(|r| r.degraded).count() as u64,
            makespan,
            throughput_qps: self.records.len() as f64 / makespan.as_secs_f64().max(1e-12),
            mean_latency: SimDuration::from_nanos(total.as_nanos() / latencies.len() as u64),
            p50_latency: pct(0.50),
            p95_latency: pct(0.95),
            p99_latency: pct(0.99),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ModelId;
    use crate::config::DeepStoreConfig;
    use crate::engine::DbId;
    use deepstore_nn::{zoo, ModelGraph, Tensor};

    fn runtime_with(n: u64) -> (Runtime, deepstore_nn::Model, DbId, ModelId) {
        let model = zoo::textqa().seeded(3);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        (Runtime::new(store), model, db, mid)
    }

    fn req(
        model: &deepstore_nn::Model,
        seed: u64,
        mid: ModelId,
        db: DbId,
        k: usize,
    ) -> QueryRequest {
        QueryRequest::new(model.random_feature(seed), mid, db).k(k)
    }

    #[test]
    fn serial_queries_queue_behind_each_other() {
        let (mut rt, model, db, mid) = runtime_with(32);
        // Two queries arriving at the same instant: the second queues.
        for i in 0..2 {
            rt.submit_at(SimDuration::ZERO, req(&model, 100 + i, mid, db, 3));
        }
        rt.run_to_completion().unwrap();
        let r = rt.records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].queueing(), SimDuration::ZERO);
        assert_eq!(r[1].start, r[0].completion);
        assert!(r[1].queueing() > SimDuration::ZERO);
        assert!(r.iter().all(|rec| rec.batch_size == 1));
    }

    #[test]
    fn idle_arrivals_do_not_queue() {
        let (mut rt, model, db, mid) = runtime_with(32);
        rt.submit_at(SimDuration::ZERO, req(&model, 1, mid, db, 2));
        // Long after the first finishes.
        rt.submit_at(SimDuration::from_millis(100), req(&model, 2, mid, db, 2));
        rt.run_to_completion().unwrap();
        assert_eq!(rt.records()[1].queueing(), SimDuration::ZERO);
    }

    #[test]
    fn batch_window_coalesces_co_pending_queries() {
        let window = SimDuration::from_micros(50);
        // Serial baseline.
        let (mut serial, model, db, mid) = runtime_with(32);
        for i in 0..4 {
            serial.submit_at(
                SimDuration::from_micros(i),
                req(&model, 300 + i, mid, db, 3),
            );
        }
        serial.run_to_completion().unwrap();

        let (mut rt, model, db, mid) = runtime_with(32);
        rt.set_batch_window(Some(window));
        for i in 0..4 {
            rt.submit_at(
                SimDuration::from_micros(i),
                req(&model, 300 + i, mid, db, 3),
            );
        }
        rt.run_to_completion().unwrap();
        let r = rt.records();
        assert_eq!(r.len(), 4);
        // All four joined one batch starting window after the lead's
        // arrival.
        assert!(r.iter().all(|rec| rec.batch_size == 4));
        assert!(r.iter().all(|rec| rec.start == window));
        // The shared pass occupies the fabric for less time than four
        // back-to-back scans (the window itself is added latency, so
        // compare fabric time, not wall-clock makespan).
        let batch_last = r.iter().map(|rec| rec.completion).max().unwrap();
        let batch_fabric = batch_last - window;
        let serial_last = serial
            .records()
            .iter()
            .map(|rec| rec.completion)
            .max()
            .unwrap();
        assert!(
            batch_fabric < serial_last,
            "batched fabric time {batch_fabric} !< serial {serial_last}"
        );
        // Ranking equality between batched and sequential execution is
        // covered by the api-level batch tests; this test checks the
        // schedule.
    }

    #[test]
    fn batch_window_respects_grouping_key() {
        let (mut rt, model, db, mid) = runtime_with(24);
        // A second database: same model, different db → different group.
        let features: Vec<Tensor> = (50..74).map(|i| model.random_feature(i)).collect();
        let db2 = rt.store_mut().write_db(&features).unwrap();
        rt.set_batch_window(Some(SimDuration::from_micros(100)));
        rt.submit_at(SimDuration::ZERO, req(&model, 400, mid, db, 2));
        rt.submit_at(SimDuration::ZERO, req(&model, 401, mid, db2, 2));
        rt.submit_at(SimDuration::from_micros(1), req(&model, 402, mid, db, 2));
        rt.run_to_completion().unwrap();
        let r = rt.records();
        assert_eq!(r.len(), 3);
        // Queries 0 and 2 coalesce (same db); query 1 runs alone after.
        let sizes: Vec<usize> = r.iter().map(|rec| rec.batch_size).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
    }

    #[test]
    fn disabled_window_matches_serial_schedule() {
        let (mut rt, model, db, mid) = runtime_with(16);
        assert_eq!(rt.batch_window(), None);
        for i in 0..3 {
            rt.submit_at(SimDuration::ZERO, req(&model, 500 + i, mid, db, 2));
        }
        rt.run_to_completion().unwrap();
        let r = rt.records();
        // Strictly serial: each starts when the previous completes.
        assert_eq!(r[1].start, r[0].completion);
        assert_eq!(r[2].start, r[1].completion);
    }

    #[test]
    fn busy_signal_defers_regular_io() {
        let (mut rt, model, db, mid) = runtime_with(16);
        rt.submit_at(SimDuration::ZERO, req(&model, 9, mid, db, 2));
        rt.run_to_completion().unwrap();
        let busy_until = rt.records()[0].completion;
        // A regular read mid-query is deferred to completion.
        let mid_query = SimDuration::from_nanos(busy_until.as_nanos() / 2);
        assert_eq!(rt.regular_read_at(mid_query), busy_until);
        assert_eq!(rt.deferred_io(), 1);
        // After the query, reads pass through.
        let later = busy_until + SimDuration::from_micros(1);
        assert_eq!(rt.regular_read_at(later), later);
        assert_eq!(rt.deferred_io(), 1);
    }

    #[test]
    fn stats_summarize_latencies() {
        let (mut rt, model, db, mid) = runtime_with(32);
        for i in 0..8 {
            rt.submit_at(
                SimDuration::from_micros(i * 10),
                req(&model, 200 + i, mid, db, 2),
            );
        }
        rt.run_to_completion().unwrap();
        let s = rt.stats().unwrap();
        assert_eq!(s.completed, 8);
        assert!(s.throughput_qps > 0.0);
        assert!(s.p50_latency <= s.p95_latency);
        assert!(s.p95_latency <= s.p99_latency);
        assert!(s.mean_latency >= rt.records()[0].latency().min(s.p50_latency));
        assert!(s.makespan >= s.p99_latency);
    }

    #[test]
    fn device_stats_cover_scheduled_queries() {
        let (mut rt, model, db, mid) = runtime_with(16);
        for i in 0..3 {
            rt.submit_at(
                SimDuration::from_micros(i),
                req(&model, 600 + i, mid, db, 2),
            );
        }
        rt.run_to_completion().unwrap();
        let ds = rt.device_stats();
        assert!(ds.flash.page_reads > 0);
        if cfg!(feature = "obs") {
            assert_eq!(ds.queries, 3);
            assert_eq!(ds.batches, 3);
            assert!(ds.stages.scan_ns > 0);
        }
    }

    #[test]
    fn degraded_queries_are_recorded_in_schedule_stats() {
        use deepstore_flash::fault::FaultPlan;
        let model = zoo::tir().seeded(3);
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        // Two blocks on two channels: one dead channel halves coverage.
        let features: Vec<Tensor> = (0..256).map(|i| model.random_feature(i)).collect();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        store.inject_faults(FaultPlan::none().dead_channel(0));
        let mut rt = Runtime::new(store);
        for i in 0..3 {
            rt.submit_at(
                SimDuration::from_micros(i),
                req(&model, 700 + i, mid, db, 2),
            );
        }
        rt.run_to_completion().unwrap();
        assert!(rt.records().iter().all(|r| r.degraded));
        assert_eq!(rt.stats().unwrap().degraded, 3);
    }

    #[test]
    fn empty_stats_is_error() {
        let (rt, ..) = runtime_with(4);
        assert!(rt.stats().is_err());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn out_of_order_arrivals_panic() {
        let (mut rt, model, db, mid) = runtime_with(4);
        rt.submit_at(SimDuration::from_micros(10), req(&model, 0, mid, db, 1));
        rt.submit_at(SimDuration::ZERO, req(&model, 1, mid, db, 1));
    }

    #[test]
    fn cache_hits_recorded_in_stats() {
        let (mut rt, model, db, mid) = runtime_with(16);
        rt.store_mut().set_qc(crate::qcache::QueryCacheConfig {
            capacity: 4,
            threshold: 0.10,
            qcn_accuracy: 1.0,
        });
        let q = model.random_feature(5);
        for i in 0..3 {
            rt.submit_at(
                SimDuration::from_micros(i),
                QueryRequest::new(q.clone(), mid, db).k(2),
            );
        }
        rt.run_to_completion().unwrap();
        let s = rt.stats().unwrap();
        assert_eq!(s.completed, 3);
        assert_eq!(s.cache_hits, 2);
    }
}
