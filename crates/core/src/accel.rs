//! In-storage accelerator timing and access-count models.
//!
//! For each accelerator placement (§4.5) this module computes the time and
//! the event counts of a full-database scan:
//!
//! * **SSD-level** — one 32×64 OS accelerator beside the controller. It
//!   enjoys the full internal bandwidth (flash stream capped by the
//!   20 GB/s DRAM path) but processes one feature vector at a time, so it
//!   is limited by single-vector SCN latency and "the lack of parallelism"
//!   (§6.2).
//! * **Channel-level** — one 16×64 OS accelerator per channel, fed by its
//!   own 800 MB/s channel stream through the FLASH_DFV prefetch queue
//!   (§4.4), with model weights multicast from the shared 8 MB SSD-level
//!   scratchpad (the "32× weight reuse" of §6.2).
//! * **Chip-level** — one 4×32 WS accelerator per chip, draining its own
//!   chip directly; the channel-level hierarchy broadcasts weight tiles
//!   over the channel bus in lockstep across the chips (§4.5), so models
//!   whose weights do not stay resident pay a per-pass broadcast.
//!
//! The compute side uses the single-feature cycle models of
//! `deepstore_systolic::cycles`; prefetching overlaps flash streaming with
//! compute, so each shard's time is the max of its compute and stream
//! terms (§4.4: "the FLASH_DFV queue isolates the computation in the
//! accelerator and the data loading from the flash chip").

use crate::config::{AcceleratorConfig, AcceleratorLevel, DeepStoreConfig};
use deepstore_flash::layout::DbLayout;
use deepstore_flash::stream::{stripe_pages, ChannelStream};
use deepstore_flash::SimDuration;
use deepstore_nn::{LayerShape, Model};
use deepstore_systolic::counts::scn_counts_per_feature;
use deepstore_systolic::cycles::{scn_cycles_per_feature, ws_plan, ws_tile_cycles_per_feature};
use deepstore_systolic::AccessCounts;
use serde::{Deserialize, Serialize};

/// FLASH_DFV prefetch-queue capacity in pages (§4.4, Figure 5): the
/// channel accelerator's 512 KB scratchpad reserves ~160 KB (ten 16 KB
/// pages) for the DFV staging region, bounding how far flash reads can
/// run ahead of the SCN. This is what gives the channel level its mild
/// (~10% at 4x) sensitivity to flash read latency in Figure 9c.
pub const DFV_QUEUE_PAGES: usize = 10;

/// A full-database scan workload, as seen by the in-storage accelerators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanWorkload {
    /// SCN layer shapes (including the element-wise merge pseudo-layer).
    pub shapes: Vec<LayerShape>,
    /// Total SCN weight bytes.
    pub weight_bytes: u64,
    /// Bytes per feature vector.
    pub feature_bytes: usize,
    /// Database layout on flash.
    pub layout: DbLayout,
}

impl ScanWorkload {
    /// Builds the workload for scanning `db_bytes` of features with a
    /// model, using the configuration's placement and page size.
    pub fn from_model(model: &Model, db_bytes: u64, cfg: &DeepStoreConfig) -> Self {
        let layout = DbLayout::for_payload(
            model.feature_bytes(),
            db_bytes,
            cfg.ssd.geometry.page_bytes,
            cfg.placement,
        );
        ScanWorkload {
            shapes: model.layer_shapes(),
            weight_bytes: model.weight_bytes(),
            feature_bytes: model.feature_bytes(),
            layout,
        }
    }

    /// Feature vectors in the database.
    pub fn num_features(&self) -> u64 {
        self.layout.num_features
    }

    /// MACs per comparison.
    pub fn macs_per_cmp(&self) -> u64 {
        self.shapes.iter().map(|s| s.macs()).sum()
    }
}

/// Result of the scan timing model for one accelerator level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanTiming {
    /// End-to-end scan time.
    pub elapsed: SimDuration,
    /// Compute time of the slowest accelerator shard.
    pub compute: SimDuration,
    /// Flash streaming time of the slowest shard.
    pub flash: SimDuration,
    /// Weight distribution time (DRAM load, L2 multicast or channel-bus
    /// broadcast, depending on the level).
    pub weights: SimDuration,
    /// Total event counts across all accelerators (for the energy model).
    pub counts: AccessCounts,
    /// Accelerator instances participating.
    pub accelerators: usize,
}

/// Per-shard flash timing detail: how long one parallel unit (channel,
/// or chip at the chip level) streams its share of the scan, and how
/// much of that its pages spent waiting for the shared channel bus.
/// Recomputed from the same deterministic stream model as [`scan`], so
/// trace timelines built from it agree with the scan's `flash` term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTiming {
    /// Channel index (or chip index at the chip level).
    pub unit: usize,
    /// Pages this unit streams.
    pub pages: u64,
    /// Total stream time for this unit.
    pub stream: SimDuration,
    /// Summed channel-bus arbitration wait across this unit's pages.
    pub bus_wait: SimDuration,
}

/// Per-shard flash stream timings for a scan at `level`: one entry per
/// parallel unit, in unit order. The maximum `stream` over all entries
/// equals the `flash` term of [`scan`]'s [`ScanTiming`] at the channel
/// and chip levels; at the SSD level it equals the internal-stream
/// component (the `flash` term also folds in the controller DRAM path).
pub fn shard_timings(
    level: AcceleratorLevel,
    workload: &ScanWorkload,
    cfg: &DeepStoreConfig,
) -> Vec<ShardTiming> {
    let pages = workload.layout.total_pages();
    let (per_unit, model) = match level {
        AcceleratorLevel::Ssd => (
            stripe_pages(pages, cfg.ssd.geometry.channels),
            ChannelStream::new(&cfg.ssd),
        ),
        AcceleratorLevel::Channel => (
            stripe_pages(pages, cfg.ssd.geometry.channels),
            ChannelStream::new(&cfg.ssd).with_dfv_queue(DFV_QUEUE_PAGES),
        ),
        AcceleratorLevel::Chip => (
            stripe_pages(pages, cfg.ssd.geometry.total_chips()),
            ChannelStream::for_chip_direct(&cfg.ssd),
        ),
    };
    per_unit
        .iter()
        .enumerate()
        .map(|(unit, &p)| {
            let stats = model.stream_pages_detailed(p);
            ShardTiming {
                unit,
                pages: p,
                stream: stats.total,
                bus_wait: stats.bus_wait,
            }
        })
        .collect()
}

/// Computes the scan timing at a given level.
///
/// Returns `None` when the level cannot execute the workload — the paper's
/// chip-level accelerator "can not execute ReId due to limited compute and
/// on-chip memory resources" (Table 4, note 1).
pub fn scan(
    level: AcceleratorLevel,
    workload: &ScanWorkload,
    cfg: &DeepStoreConfig,
) -> Option<ScanTiming> {
    match level {
        AcceleratorLevel::Ssd => Some(ssd_level_scan(workload, cfg)),
        AcceleratorLevel::Channel => Some(channel_level_scan(workload, cfg)),
        AcceleratorLevel::Chip => chip_level_scan(workload, cfg),
    }
}

fn per_feature_counts(shapes: &[LayerShape], acc: &AcceleratorConfig) -> AccessCounts {
    scn_counts_per_feature(shapes, &acc.array)
}

/// Computes the scan timing for a batch of queries sharing one flash pass.
///
/// A batched scan streams the database and distributes the model weights
/// exactly once while scoring every feature against all `batch` query
/// feature vectors, so the compute term scales with the batch while the
/// flash and weight terms do not. For flash-bound workloads the batch
/// rides along for free until compute catches up with the stream.
/// `scan_batch(level, w, cfg, 1)` is identical to `scan(level, w, cfg)`.
///
/// Returns `None` exactly when [`scan`] does (no mapping at this level).
pub fn scan_batch(
    level: AcceleratorLevel,
    workload: &ScanWorkload,
    cfg: &DeepStoreConfig,
    batch: usize,
) -> Option<ScanTiming> {
    let single = scan(level, workload, cfg)?;
    if batch <= 1 {
        return Some(single);
    }
    let acc = match level {
        AcceleratorLevel::Ssd => AcceleratorConfig::ssd_level(),
        AcceleratorLevel::Channel => AcceleratorConfig::channel_level(),
        AcceleratorLevel::Chip => AcceleratorConfig::chip_level(),
    };
    let compute = SimDuration::from_secs_f64(single.compute.as_secs_f64() * batch as f64);
    // The extra batch members re-run the SCN on every feature but add no
    // flash-page or weight-distribution traffic.
    let extra = per_feature_counts(&workload.shapes, &acc)
        .scaled(workload.num_features() * (batch as u64 - 1));
    let elapsed = match level {
        AcceleratorLevel::Ssd | AcceleratorLevel::Channel => {
            compute.max(single.flash) + single.weights
        }
        // The chip-level lockstep pipeline is paced by the slowest of
        // compute, flash and broadcast, plus the trailing bus transfer
        // (same composition as `chip_level_scan`).
        AcceleratorLevel::Chip => {
            compute.max(single.flash).max(single.weights)
                + SimDuration::for_transfer(
                    workload.weight_bytes,
                    cfg.ssd.timing.channel_bus_bytes_per_sec,
                )
        }
    };
    Some(ScanTiming {
        elapsed,
        compute,
        counts: single.counts + extra,
        ..single
    })
}

/// SSD-level scan: one accelerator, full internal bandwidth through DRAM.
pub fn ssd_level_scan(workload: &ScanWorkload, cfg: &DeepStoreConfig) -> ScanTiming {
    let acc = AcceleratorConfig::ssd_level();
    let n = workload.num_features();
    let cycles_per_feature =
        scn_cycles_per_feature(&workload.shapes, &acc.array) + cfg.controller_overhead_cycles;
    let compute =
        SimDuration::from_secs_f64(acc.array.cycles_to_secs(cycles_per_feature) * n as f64);

    // Flash streams from all channels; the single accelerator ingests via
    // the controller DRAM path.
    let pages = workload.layout.total_pages();
    let per_channel = stripe_pages(pages, cfg.ssd.geometry.channels);
    let internal = deepstore_flash::stream::all_channels_stream(&cfg.ssd, &per_channel);
    let dram_path = SimDuration::for_transfer(
        pages * cfg.ssd.geometry.page_bytes as u64,
        cfg.ssd.timing.dram_bytes_per_sec,
    );
    let flash = internal.max(dram_path);

    // Weights: loaded from DRAM; if they do not fit the 8 MB scratchpad
    // the stream repeats per feature batch, fully pipelined with compute
    // (§4.5: "fetching weights in DRAM and computing ... can be fully
    // pipelined"), so it costs bandwidth/energy but only one load of
    // latency.
    let plan = ws_plan(
        workload.weight_bytes,
        workload.feature_bytes as u64,
        &acc.array,
    );
    let weight_passes = if plan.weights_resident {
        1
    } else {
        n.div_ceil(plan.batch_per_pass).max(1)
    };
    let weights =
        SimDuration::for_transfer(workload.weight_bytes, cfg.ssd.timing.dram_bytes_per_sec);

    let mut counts = per_feature_counts(&workload.shapes, &acc).scaled(n);
    counts.flash_pages += pages;
    counts.dram_bytes +=
        workload.weight_bytes * weight_passes + pages * cfg.ssd.geometry.page_bytes as u64; // DFVs staged via DRAM

    ScanTiming {
        elapsed: compute.max(flash) + weights,
        compute,
        flash,
        weights,
        counts,
        accelerators: 1,
    }
}

/// Channel-level scan: one accelerator per channel, weights multicast from
/// the shared L2.
pub fn channel_level_scan(workload: &ScanWorkload, cfg: &DeepStoreConfig) -> ScanTiming {
    let acc = AcceleratorConfig::channel_level();
    let channels = cfg.ssd.geometry.channels;
    let n = workload.num_features();
    let shard = n.div_ceil(channels as u64);
    let cycles_per_feature =
        scn_cycles_per_feature(&workload.shapes, &acc.array) + cfg.controller_overhead_cycles;
    let compute =
        SimDuration::from_secs_f64(acc.array.cycles_to_secs(cycles_per_feature) * shard as f64);

    let pages = workload.layout.total_pages();
    let per_channel = stripe_pages(pages, channels);
    let stream = ChannelStream::new(&cfg.ssd).with_dfv_queue(DFV_QUEUE_PAGES);
    let flash = per_channel
        .iter()
        .map(|&p| stream.stream_pages(p))
        .fold(SimDuration::ZERO, SimDuration::max);

    // Weights: DRAM -> L2 once, then multicast to the channel accelerators
    // over the internal bus, re-streamed once per feature batch.
    let plan = ws_plan(
        workload.weight_bytes,
        workload.feature_bytes as u64,
        &acc.array,
    );
    let passes = if plan.weights_resident {
        1
    } else {
        shard.div_ceil(plan.batch_per_pass).max(1)
    };
    let weights =
        SimDuration::for_transfer(workload.weight_bytes, cfg.ssd.timing.dram_bytes_per_sec);

    let mut counts = per_feature_counts(&workload.shapes, &acc).scaled(n);
    counts.flash_pages += pages;
    counts.dram_bytes += workload.weight_bytes;
    // One L2 read per multicast pass; the broadcast reaches `channels`
    // accelerators over the NoC.
    counts.l2_read_bytes += workload.weight_bytes * passes;
    counts.noc_bytes += workload.weight_bytes * passes * channels as u64;

    ScanTiming {
        elapsed: compute.max(flash) + weights,
        compute,
        flash,
        weights,
        counts,
        accelerators: channels,
    }
}

/// Chip-level scan: one WS accelerator per chip, weight tiles broadcast in
/// lockstep over each channel bus.
///
/// Returns `None` when the model has no chip-level mapping (convolutions
/// whose reduction exceeds the 128-PE array — ReId).
pub fn chip_level_scan(workload: &ScanWorkload, cfg: &DeepStoreConfig) -> Option<ScanTiming> {
    let acc = AcceleratorConfig::chip_level();
    let chips = cfg.ssd.geometry.total_chips();
    let n = workload.num_features();
    let shard = n.div_ceil(chips as u64);
    let cycles_per_feature =
        ws_tile_cycles_per_feature(&workload.shapes, &acc.array)? + cfg.controller_overhead_cycles;
    let compute =
        SimDuration::from_secs_f64(acc.array.cycles_to_secs(cycles_per_feature) * shard as f64);

    // Each chip drains its own planes directly (no channel-bus contention
    // for DFVs).
    let pages = workload.layout.total_pages();
    let pages_per_chip = stripe_pages(pages, chips);
    let chip_stream = ChannelStream::for_chip_direct(&cfg.ssd);
    let flash = pages_per_chip
        .iter()
        .map(|&p| chip_stream.stream_pages(p))
        .fold(SimDuration::ZERO, SimDuration::max);

    // Weight-tile broadcast over the channel bus, shared by the channel's
    // chips in lockstep (§4.5). Non-resident models re-broadcast the whole
    // weight set once per feature batch.
    let plan = ws_plan(
        workload.weight_bytes,
        workload.feature_bytes as u64,
        &acc.array,
    );
    let passes = if plan.weights_resident {
        1
    } else {
        shard.div_ceil(plan.batch_per_pass).max(1)
    };
    let broadcast = SimDuration::for_transfer(
        workload.weight_bytes * passes,
        cfg.ssd.timing.channel_bus_bytes_per_sec,
    );

    let mut counts = per_feature_counts(&workload.shapes, &acc).scaled(n);
    counts.flash_pages += pages;
    counts.dram_bytes += workload.weight_bytes * passes;
    counts.noc_bytes += workload.weight_bytes * passes * cfg.ssd.geometry.channels as u64;

    Some(ScanTiming {
        // The broadcast paces the lockstep pipeline: it overlaps compute
        // only up to the slower of the two.
        elapsed: compute.max(flash).max(broadcast)
            + SimDuration::for_transfer(
                workload.weight_bytes,
                cfg.ssd.timing.channel_bus_bytes_per_sec,
            ),
        compute,
        flash,
        weights: broadcast,
        counts,
        accelerators: chips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    const DB: u64 = 25 * (1 << 30);

    fn cfg() -> DeepStoreConfig {
        DeepStoreConfig::paper_default()
    }

    fn workload(app: &str) -> ScanWorkload {
        ScanWorkload::from_model(&zoo::by_name(app).unwrap(), DB, &cfg())
    }

    #[test]
    fn channel_level_is_fastest_for_every_app() {
        for app in ["reid", "mir", "estp", "tir", "textqa"] {
            let w = workload(app);
            let ssd = scan(AcceleratorLevel::Ssd, &w, &cfg()).unwrap();
            let ch = scan(AcceleratorLevel::Channel, &w, &cfg()).unwrap();
            assert!(
                ch.elapsed < ssd.elapsed,
                "{app}: channel {} !< ssd {}",
                ch.elapsed,
                ssd.elapsed
            );
            if let Some(chip) = scan(AcceleratorLevel::Chip, &w, &cfg()) {
                assert!(ch.elapsed < chip.elapsed, "{app}: channel !< chip");
            }
        }
    }

    #[test]
    fn shard_timings_agree_with_scan_flash_term() {
        let w = workload("textqa");
        for level in [AcceleratorLevel::Channel, AcceleratorLevel::Chip] {
            let timing = scan(level, &w, &cfg()).unwrap();
            let shards = shard_timings(level, &w, &cfg());
            let units = match level {
                AcceleratorLevel::Chip => cfg().ssd.geometry.total_chips(),
                _ => cfg().ssd.geometry.channels,
            };
            assert_eq!(shards.len(), units);
            assert_eq!(
                shards.iter().map(|s| s.pages).sum::<u64>(),
                w.layout.total_pages(),
                "{level:?}: shard pages must cover the whole database"
            );
            let slowest = shards
                .iter()
                .map(|s| s.stream)
                .fold(SimDuration::ZERO, SimDuration::max);
            assert_eq!(
                slowest, timing.flash,
                "{level:?}: slowest shard stream must equal the scan flash term"
            );
        }
        // SSD level: the scan's flash term folds in the controller DRAM
        // path, so the slowest shard only bounds it from below.
        let ssd = scan(AcceleratorLevel::Ssd, &w, &cfg()).unwrap();
        let shards = shard_timings(AcceleratorLevel::Ssd, &w, &cfg());
        let slowest = shards
            .iter()
            .map(|s| s.stream)
            .fold(SimDuration::ZERO, SimDuration::max);
        assert!(slowest <= ssd.flash);
        // Pages contending for a shared channel bus must report waits.
        assert!(shards.iter().any(|s| s.bus_wait > SimDuration::ZERO));
    }

    #[test]
    fn chip_level_rejects_reid() {
        // Table 4, note 1.
        assert!(scan(AcceleratorLevel::Chip, &workload("reid"), &cfg()).is_none());
        assert!(scan(AcceleratorLevel::Chip, &workload("mir"), &cfg()).is_some());
    }

    #[test]
    fn small_models_are_flash_bound_at_channel_level() {
        // §4.5: "for applications with smaller layers, such as TextQA, the
        // flash channel bandwidth becomes the bottleneck".
        let t = channel_level_scan(&workload("textqa"), &cfg());
        assert!(t.flash > t.compute, "{t:?}");
        // 25 GiB over 32 channels at ~775 MB/s effective: ~1.0-1.1 s.
        assert!(t.elapsed.as_secs_f64() > 0.9 && t.elapsed.as_secs_f64() < 1.3);
    }

    #[test]
    fn reid_is_compute_bound_at_channel_level() {
        // §6.2: the channel-level accelerator is "limited by the
        // performance of executing SCN with one input feature vector" for
        // large models like ReId.
        let t = channel_level_scan(&workload("reid"), &cfg());
        assert!(t.compute > t.flash, "{t:?}");
    }

    #[test]
    fn ssd_level_is_compute_bound_everywhere() {
        for app in ["reid", "mir", "estp", "tir", "textqa"] {
            let t = ssd_level_scan(&workload(app), &cfg());
            assert!(t.compute > t.flash, "{app}: {t:?}");
        }
    }

    #[test]
    fn counts_cover_all_macs_and_pages() {
        let w = workload("tir");
        let t = channel_level_scan(&w, &cfg());
        assert_eq!(t.counts.macs, w.num_features() * w.macs_per_cmp());
        assert_eq!(t.counts.flash_pages, w.layout.total_pages());
        assert!(t.counts.l2_read_bytes > 0);
    }

    #[test]
    fn chip_level_textqa_weights_stay_resident() {
        // TextQA's 0.157 MB of weights fit the 512 KB chip scratchpad, so
        // the broadcast happens once — one reason TextQA gets the best
        // chip-level speedup (§6.2).
        let t = chip_level_scan(&workload("textqa"), &cfg()).unwrap();
        assert!(t.weights.as_secs_f64() < 0.01, "{}", t.weights);
        let mir = chip_level_scan(&workload("mir"), &cfg()).unwrap();
        assert!(mir.weights > t.weights);
    }

    #[test]
    fn scan_times_match_calibration_targets() {
        // Derived in DESIGN.md §3: channel-level times of ~1.04 s for
        // flash-bound apps and ~3.3 s for compute-bound ReId.
        let ch_mir = channel_level_scan(&workload("mir"), &cfg())
            .elapsed
            .as_secs_f64();
        assert!((0.9..1.3).contains(&ch_mir), "mir channel = {ch_mir}");
        let ch_reid = channel_level_scan(&workload("reid"), &cfg())
            .elapsed
            .as_secs_f64();
        assert!((2.5..4.5).contains(&ch_reid), "reid channel = {ch_reid}");
    }

    #[test]
    fn batch_of_one_is_the_single_query_scan() {
        for app in ["reid", "tir", "textqa"] {
            let w = workload(app);
            for level in [
                AcceleratorLevel::Ssd,
                AcceleratorLevel::Channel,
                AcceleratorLevel::Chip,
            ] {
                assert_eq!(scan_batch(level, &w, &cfg(), 1), scan(level, &w, &cfg()));
            }
        }
    }

    #[test]
    fn batched_scan_amortizes_flash_and_weights() {
        let w = workload("tir");
        let one = scan(AcceleratorLevel::Channel, &w, &cfg()).unwrap();
        let eight = scan_batch(AcceleratorLevel::Channel, &w, &cfg(), 8).unwrap();
        // Flash and weight terms are shared across the batch; only compute
        // (and its counts) scale.
        assert_eq!(eight.flash, one.flash);
        assert_eq!(eight.weights, one.weights);
        assert_eq!(eight.counts.flash_pages, one.counts.flash_pages);
        assert_eq!(eight.counts.macs, one.counts.macs * 8);
        assert!((eight.compute.as_secs_f64() / one.compute.as_secs_f64() - 8.0).abs() < 1e-9);
        // Sharing the pass beats eight sequential scans.
        assert!(eight.elapsed.as_secs_f64() < 8.0 * one.elapsed.as_secs_f64());
        // For flash-bound TIR at channel level, a small batch rides the
        // stream almost for free.
        let two = scan_batch(AcceleratorLevel::Channel, &w, &cfg(), 2).unwrap();
        if 2.0 * one.compute.as_secs_f64() <= one.flash.as_secs_f64() {
            assert_eq!(two.elapsed, one.elapsed);
        }
    }

    #[test]
    fn batched_scan_respects_level_support() {
        assert!(scan_batch(AcceleratorLevel::Chip, &workload("reid"), &cfg(), 4).is_none());
        assert!(scan_batch(AcceleratorLevel::Channel, &workload("reid"), &cfg(), 4).is_some());
    }

    #[test]
    fn accelerator_counts_match_level() {
        let w = workload("mir");
        assert_eq!(ssd_level_scan(&w, &cfg()).accelerators, 1);
        assert_eq!(channel_level_scan(&w, &cfg()).accelerators, 32);
        assert_eq!(chip_level_scan(&w, &cfg()).unwrap().accelerators, 128);
    }
}
