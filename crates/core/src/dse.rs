//! Power- and bandwidth-constrained design-space exploration (§4.5).
//!
//! The paper sizes each accelerator level by (1) sweeping PE counts and
//! aspect ratios under an infinite-bandwidth assumption (Figure 6 — see
//! `deepstore_systolic::dse`), then (2) re-introducing the memory
//! bandwidth constraints and eliminating every candidate that exceeds the
//! level's power budget. This module implements step (2): a simple power
//! estimator for a candidate array and the budget-constrained search that
//! lands on the Table 3 configurations.

use crate::config::{AcceleratorConfig, AcceleratorLevel};
use deepstore_energy::{sram_pj_per_byte, SramVariant};
use deepstore_nn::Model;
use deepstore_systolic::cycles::scn_cycles_per_feature;
use deepstore_systolic::ArrayConfig;

/// Estimated sustained power of an accelerator candidate, watts.
///
/// Dynamic power = PEs × frequency × (energy per PE-cycle at a typical
/// ~40% switching utilization) plus scratchpad access power and leakage.
pub fn estimate_power_w(array: &ArrayConfig, sram: SramVariant) -> f64 {
    const PE_PJ_PER_CYCLE: f64 = 1.6; // 4 pJ/MAC x ~0.4 utilization
    let dynamic = array.pes() as f64 * array.freq_hz * PE_PJ_PER_CYCLE * 1e-12;
    // Scratchpad: assume ~8 bytes/cycle of sustained access.
    let sram_access = 8.0 * array.freq_hz * sram_pj_per_byte(array.scratchpad_bytes, sram) * 1e-12;
    // Leakage scales with SRAM capacity (dominant leaker).
    let leak_per_mb = match sram {
        SramVariant::ItrsHp => 0.04,
        SramVariant::ItrsLow => 0.008,
    };
    let leakage = array.scratchpad_bytes as f64 / (1024.0 * 1024.0) * leak_per_mb;
    dynamic + sram_access + leakage
}

/// Estimated die area of an accelerator candidate at 32 nm, mm².
///
/// Calibrated against the three Table 3 configurations (which it
/// reproduces to within 0.2 mm²): ~5.5e-3 mm² per PE (fp32 MAC + control),
/// ~2.5 mm² per MB of scratchpad, plus a fixed ~0.55 mm² controller.
pub fn estimate_area_mm2(array: &ArrayConfig) -> f64 {
    const MM2_PER_PE: f64 = 5.47e-3;
    const MM2_PER_MB: f64 = 2.49;
    const CONTROLLER_MM2: f64 = 0.55;
    array.pes() as f64 * MM2_PER_PE
        + array.scratchpad_bytes as f64 / (1024.0 * 1024.0) * MM2_PER_MB
        + CONTROLLER_MM2
}

/// The SRAM flavor each level uses (§6.1).
pub fn sram_variant(level: AcceleratorLevel) -> SramVariant {
    match level {
        AcceleratorLevel::Chip => SramVariant::ItrsLow,
        _ => SramVariant::ItrsHp,
    }
}

/// Whether a candidate array fits a level's per-accelerator power *and*
/// area budgets (§4.1: "the SSD controllers have limited power budget,
/// memory capacity, and area sizes"). The Table 3 areas serve as each
/// level's area allowance; area turns out to be the binding constraint at
/// every level.
pub fn fits_budget(level: AcceleratorLevel, array: &ArrayConfig) -> bool {
    let reference = AcceleratorConfig::for_level(level);
    estimate_power_w(array, sram_variant(level)) <= reference.power_budget_w
        && estimate_area_mm2(array) <= reference.area_mm2 * 1.01
}

/// One step of the constrained search: the largest power-of-two PE count
/// (at the level's frequency/scratchpad) that fits the budget.
pub fn max_feasible_pes(level: AcceleratorLevel) -> usize {
    let reference = AcceleratorConfig::for_level(level).array;
    let mut best = 0;
    let mut pes = 32;
    while pes <= 32_768 {
        // Evaluate at the widest aspect (aspect does not change power in
        // this model).
        let candidate = ArrayConfig::new(
            1,
            pes,
            reference.freq_hz,
            reference.dataflow,
            reference.scratchpad_bytes,
        );
        if fits_budget(level, &candidate) {
            best = pes;
        }
        pes *= 2;
    }
    best
}

/// Mean per-feature SCN cycles across a model mix — the metric the search
/// optimizes (lower is better).
pub fn mix_cycles(models: &[Model], array: &ArrayConfig) -> f64 {
    let total: u64 = models
        .iter()
        .map(|m| scn_cycles_per_feature(&m.layer_shapes(), array))
        .sum();
    total as f64 / models.len().max(1) as f64
}

/// Verdict of the constrained DSE for one level.
#[derive(Debug, Clone, PartialEq)]
pub struct DseVerdict {
    /// The Table 3 configuration.
    pub chosen: AcceleratorConfig,
    /// Estimated power of the chosen config, watts.
    pub power_w: f64,
    /// Largest feasible power-of-two PE count under the budget.
    pub max_feasible_pes: usize,
    /// Mean per-feature cycles of the chosen config on the Table 1 mix.
    pub mix_cycles: f64,
}

/// Runs the constrained check for a level against the Table 1 model mix.
pub fn evaluate(level: AcceleratorLevel, models: &[Model]) -> DseVerdict {
    let chosen = AcceleratorConfig::for_level(level);
    DseVerdict {
        power_w: estimate_power_w(&chosen.array, sram_variant(level)),
        max_feasible_pes: max_feasible_pes(level),
        mix_cycles: mix_cycles(models, &chosen.array),
        chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;
    use deepstore_systolic::Dataflow;

    #[test]
    fn table3_configs_fit_their_budgets() {
        for level in AcceleratorLevel::ALL {
            let cfg = AcceleratorConfig::for_level(level);
            assert!(
                fits_budget(level, &cfg.array),
                "{level}: {} W > {} W",
                estimate_power_w(&cfg.array, sram_variant(level)),
                cfg.power_budget_w
            );
        }
    }

    #[test]
    fn channel_budget_rejects_doubling() {
        // 2048 PEs exceed both the 1.71 W power budget and the 7.4 mm2
        // area allowance of a channel-level accelerator.
        let double = ArrayConfig::new(32, 64, 800e6, Dataflow::OutputStationary, 512 * 1024);
        assert!(!fits_budget(AcceleratorLevel::Channel, &double));
    }

    #[test]
    fn chip_budget_rejects_doubling() {
        let double = ArrayConfig::new(8, 32, 400e6, Dataflow::WeightStationary, 512 * 1024);
        assert!(!fits_budget(AcceleratorLevel::Chip, &double));
    }

    #[test]
    fn area_model_reproduces_table3() {
        for level in AcceleratorLevel::ALL {
            let cfg = AcceleratorConfig::for_level(level);
            let est = estimate_area_mm2(&cfg.array);
            assert!(
                (est - cfg.area_mm2).abs() < 0.3,
                "{level}: {est} vs {}",
                cfg.area_mm2
            );
        }
    }

    #[test]
    fn feasible_pe_ceilings_equal_table3() {
        // Under the combined power+area budgets, the largest feasible
        // power-of-two PE count at each level is exactly the Table 3
        // choice.
        assert_eq!(max_feasible_pes(AcceleratorLevel::Ssd), 2048);
        assert_eq!(max_feasible_pes(AcceleratorLevel::Channel), 1024);
        assert_eq!(max_feasible_pes(AcceleratorLevel::Chip), 128);
    }

    #[test]
    fn verdicts_are_consistent() {
        let models = zoo::all();
        for level in AcceleratorLevel::ALL {
            let v = evaluate(level, &models);
            assert!(v.power_w <= v.chosen.power_budget_w);
            assert!(v.mix_cycles > 0.0);
            assert!(v.max_feasible_pes >= v.chosen.array.pes());
        }
    }

    #[test]
    fn itrs_low_buys_power_headroom() {
        let arr = AcceleratorConfig::chip_level().array;
        let hp = estimate_power_w(&arr, SramVariant::ItrsHp);
        let low = estimate_power_w(&arr, SramVariant::ItrsLow);
        assert!(low < hp);
    }
}
