//! The crate-wide error type for DeepStore device operations.
//!
//! Device-level failures used to be smuggled through
//! [`FlashError`] — an unknown model id surfaced as
//! `FlashError::UnknownDb`, an accelerator level that cannot run a
//! model as `FlashError::AddressOutOfRange` with a prose payload.
//! [`DeepStoreError`] gives each failure its own variant so callers can
//! match on what actually went wrong, and wraps genuine flash/FTL
//! failures as [`DeepStoreError::Flash`] (with a `From` impl, so `?`
//! propagates them unchanged through the device layers).

use crate::api::{ModelId, QueryId};
use crate::config::AcceleratorLevel;
use deepstore_flash::FlashError;
use std::fmt;

/// Errors surfaced by the DeepStore device API.
#[derive(Debug, Clone, PartialEq)]
pub enum DeepStoreError {
    /// A [`ModelId`] that was never returned by `loadModel` (or whose
    /// model was since unloaded).
    UnknownModel(ModelId),
    /// A [`QueryId`] that was never issued, or whose results were
    /// already consumed by `getResults`.
    UnknownQuery(QueryId),
    /// The requested accelerator level cannot execute the model (e.g.
    /// chip-level accelerators lack the on-chip SRAM for ReId's
    /// convolutional working set, §4.5).
    LevelUnsupported {
        /// Name of the model that has no mapping at this level.
        model: String,
        /// The accelerator level that was requested.
        level: AcceleratorLevel,
    },
    /// A scan could not read enough of the database to satisfy the
    /// request's `min_coverage` policy: too many features were lost to
    /// uncorrectable reads even after retry and remap.
    InsufficientCoverage {
        /// The coverage fraction the request demanded.
        required: f64,
        /// The coverage fraction the scan actually achieved.
        achieved: f64,
    },
    /// A flash/FTL-level failure (bad address, ECC, capacity, …).
    Flash(FlashError),
    /// A persisted image or a wire peer speaks a different
    /// format/protocol version than this build. Surfaced by
    /// `DeepStore::open` for on-disk images and by the `hello`
    /// handshake for remote connections; promoted out of
    /// [`FlashError::VersionMismatch`] by the `From` impl so callers
    /// match one variant for both paths.
    VersionMismatch {
        /// The version this build understands.
        expected: u32,
        /// The version found on disk or announced by the peer.
        found: u32,
    },
    /// The serving front end's bounded pending queue was full; the
    /// request was rejected without being enqueued. Retry after
    /// backing off.
    Overloaded {
        /// Capacity of the pending queue that was full.
        queue_depth: u64,
    },
    /// The per-tenant token bucket for `client` had no tokens left;
    /// the request was rejected before admission.
    QuotaExceeded {
        /// The client id (from the `hello` handshake) whose quota ran
        /// out.
        client: String,
    },
    /// A device-side failure reported over the wire that has no
    /// structured local counterpart (e.g. a flash error carried as
    /// prose in a response frame).
    Remote(String),
}

impl fmt::Display for DeepStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepStoreError::UnknownModel(id) => write!(f, "unknown model id {}", id.0),
            DeepStoreError::UnknownQuery(id) => write!(f, "unknown query id {}", id.0),
            DeepStoreError::LevelUnsupported { model, level } => {
                write!(f, "model `{model}` has no {level}-level mapping")
            }
            DeepStoreError::InsufficientCoverage { required, achieved } => {
                write!(
                    f,
                    "insufficient coverage: scan reached {achieved:.4} of the \
                     database, request requires {required:.4}"
                )
            }
            DeepStoreError::Flash(e) => write!(f, "{e}"),
            DeepStoreError::VersionMismatch { expected, found } => {
                write!(f, "version mismatch: expected {expected}, found {found}")
            }
            DeepStoreError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "server overloaded: pending queue (depth {queue_depth}) is full"
                )
            }
            DeepStoreError::QuotaExceeded { client } => {
                write!(f, "quota exceeded for client `{client}`")
            }
            DeepStoreError::Remote(e) => write!(f, "remote device error: {e}"),
        }
    }
}

impl std::error::Error for DeepStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeepStoreError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for DeepStoreError {
    fn from(e: FlashError) -> Self {
        match e {
            // Promote version skew to the device-level variant so image
            // and wire mismatches are matched uniformly.
            FlashError::VersionMismatch { expected, found } => {
                DeepStoreError::VersionMismatch { expected, found }
            }
            e => DeepStoreError::Flash(e),
        }
    }
}

/// Convenient result alias for the device API.
pub type Result<T> = std::result::Result<T, DeepStoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_distinguishable_and_display() {
        let m = DeepStoreError::UnknownModel(ModelId(3));
        let q = DeepStoreError::UnknownQuery(QueryId(3));
        assert_ne!(m, q);
        assert!(m.to_string().contains("model id 3"));
        assert!(q.to_string().contains("query id 3"));
        let l = DeepStoreError::LevelUnsupported {
            model: "reid".into(),
            level: AcceleratorLevel::Chip,
        };
        assert!(l.to_string().contains("reid"));
        let c = DeepStoreError::InsufficientCoverage {
            required: 0.9,
            achieved: 0.5,
        };
        assert!(c.to_string().contains("insufficient coverage"));
        assert!(c.to_string().contains("0.9"));
        assert!(c.to_string().contains("0.5"));
        assert_ne!(
            c,
            DeepStoreError::InsufficientCoverage {
                required: 0.9,
                achieved: 0.6,
            }
        );
    }

    #[test]
    fn flash_errors_convert_and_chain() {
        use std::error::Error;
        let e: DeepStoreError = FlashError::UnknownDb(9).into();
        assert_eq!(e, DeepStoreError::Flash(FlashError::UnknownDb(9)));
        assert!(e.source().is_some());
        assert!(DeepStoreError::UnknownQuery(QueryId(1)).source().is_none());
    }

    #[test]
    fn version_mismatch_promotes_from_flash() {
        let e: DeepStoreError = FlashError::VersionMismatch {
            expected: 1,
            found: 3,
        }
        .into();
        assert_eq!(
            e,
            DeepStoreError::VersionMismatch {
                expected: 1,
                found: 3,
            }
        );
        assert!(e.to_string().contains("expected 1"));
        assert!(e.to_string().contains("found 3"));
    }

    #[test]
    fn serving_rejections_display() {
        let o = DeepStoreError::Overloaded { queue_depth: 8 };
        assert!(o.to_string().contains("overloaded"));
        assert!(o.to_string().contains('8'));
        let q = DeepStoreError::QuotaExceeded {
            client: "tenant-a".into(),
        };
        assert!(q.to_string().contains("tenant-a"));
        let r = DeepStoreError::Remote("ecc storm".into());
        assert!(r.to_string().contains("ecc storm"));
        assert_ne!(o, q);
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeepStoreError>();
    }
}
