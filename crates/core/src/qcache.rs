//! The similarity-based in-storage Query Cache (§4.6, Algorithm 1).
//!
//! Unlike a conventional result cache that needs exact key matches, the
//! Query Cache exploits the error tolerance of DNN-based queries: a new
//! query that is *semantically similar* to a cached query can reuse the
//! cached top-K results without scanning the feature database. Each entry
//! holds the cached query feature vector (the tag), a valid bit, the top-K
//! feature vectors and their `ObjectID`s.
//!
//! Lookup follows Algorithm 1: the Query Comparison Network (QCN) scores
//! the new query against every cached entry on the channel-level
//! accelerators; the best score is multiplied by the QCN's accuracy, and
//! the entry hits when the complement of that confidence-weighted score is
//! within the configured threshold. Hits promote the entry (LRU);
//! misses trigger a full scan and insert the new query.

use crate::config::AcceleratorConfig;
use deepstore_flash::SimDuration;
use deepstore_nn::LayerShape;
use deepstore_nn::Tensor;
use deepstore_systolic::cycles::scn_cycles_per_feature;
use deepstore_systolic::topk::ScoredFeature;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Replacement policy for the query cache. The paper uses LRU (§4.6);
/// FIFO and random are provided for the `ablation_qc_policy` study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least-recently-used: hits promote entries (paper default).
    #[default]
    Lru,
    /// Insertion order only: hits do not promote.
    Fifo,
    /// Evict a pseudo-random entry.
    Random,
}

/// Query Cache configuration (the `setQC` API, Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryCacheConfig {
    /// Maximum entries.
    pub capacity: usize,
    /// Error threshold: a lookup hits when `1 - score <= threshold`
    /// (Algorithm 1, line 11). "A hyper-parameter that depends on the
    /// model and can be tuned during deployment."
    pub threshold: f64,
    /// The QCN's published accuracy, multiplied into every comparison
    /// score (Algorithm 1, line 7).
    pub qcn_accuracy: f64,
}

impl QueryCacheConfig {
    /// The §6.5 evaluation setup: 1000 entries, 10% threshold, and the
    /// Universal Sentence Encoder's ~0.92 test accuracy as the QCN
    /// accuracy.
    pub fn paper_default() -> Self {
        QueryCacheConfig {
            capacity: 1000,
            threshold: 0.10,
            qcn_accuracy: 0.92,
        }
    }
}

/// One cached query with its results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QcEntry {
    /// The cached query feature vector (the tag).
    pub qfv: Tensor,
    /// Valid bit.
    pub valid: bool,
    /// Cached top-K results (scores + ObjectIDs).
    pub top_k: Vec<ScoredFeature>,
}

/// Statistics accumulated by the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QcStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Hits.
    pub hits: u64,
    /// Insertions.
    pub inserts: u64,
    /// Evictions (LRU).
    pub evictions: u64,
}

impl QcStats {
    /// Miss rate in [0, 1]; 1.0 when no lookups have happened.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            1.0 - self.hits as f64 / self.lookups as f64
        }
    }
}

/// The similarity-based query cache.
///
/// The QCN here is a radial-basis similarity network over the two query
/// feature vectors: `score = exp(-||q1 - q2||² / d)`. It stands in for the
/// paper's Universal Sentence Encoder (see DESIGN.md, substitutions): what
/// Figures 13–14 measure is hit/miss statistics as a function of the
/// threshold and the query distribution, which depend only on the QCN
/// ranking near-duplicates above unrelated queries — exactly what the RBF
/// network provides. Its *cost* model uses the application's QCN layer
/// shapes, executed on the channel-level accelerators (§4.6).
#[derive(Debug, Clone)]
pub struct QueryCache {
    config: QueryCacheConfig,
    /// Entries in recency order: front = most recent (LRU) / newest
    /// (FIFO).
    entries: VecDeque<QcEntry>,
    policy: ReplacementPolicy,
    /// xorshift state for the random policy.
    rng_state: u64,
    stats: QcStats,
}

impl QueryCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or the threshold is outside [0, 1].
    pub fn new(config: QueryCacheConfig) -> Self {
        assert!(config.capacity > 0, "capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&config.threshold),
            "threshold must be in [0, 1]"
        );
        QueryCache {
            config,
            entries: VecDeque::new(),
            policy: ReplacementPolicy::Lru,
            rng_state: 0x243F_6A88_85A3_08D3,
            stats: QcStats::default(),
        }
    }

    /// Switches the replacement policy (builder-style).
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The active configuration.
    pub fn config(&self) -> &QueryCacheConfig {
        &self.config
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> QcStats {
        self.stats
    }

    /// The QCN similarity score between two query feature vectors.
    pub fn qcn_score(a: &Tensor, b: &Tensor) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d2: f64 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| {
                let d = (x - y) as f64;
                d * d
            })
            .sum();
        (-d2 / a.len().max(1) as f64).exp()
    }

    /// Algorithm 1: finds the best-matching valid entry; on a hit,
    /// promotes it and returns its cached top-K.
    pub fn lookup(&mut self, qfv: &Tensor) -> Option<Vec<ScoredFeature>> {
        self.stats.lookups += 1;
        let mut max_index = None;
        let mut max_score = 0.0f64;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.valid || e.qfv.len() != qfv.len() {
                continue;
            }
            let score = Self::qcn_score(qfv, &e.qfv) * self.config.qcn_accuracy;
            if score > max_score {
                max_score = score;
                max_index = Some(i);
            }
        }
        match max_index {
            Some(i) if 1.0 - max_score <= self.config.threshold => {
                self.stats.hits += 1;
                if self.policy == ReplacementPolicy::Lru {
                    let entry = self.entries.remove(i).expect("index in range");
                    let result = entry.top_k.clone();
                    self.entries.push_front(entry); // LRU promote
                    Some(result)
                } else {
                    Some(self.entries[i].top_k.clone())
                }
            }
            _ => None,
        }
    }

    /// Inserts a query with its scan results, evicting per the active
    /// replacement policy when full.
    pub fn insert(&mut self, qfv: Tensor, top_k: Vec<ScoredFeature>) {
        self.stats.inserts += 1;
        if self.entries.len() == self.config.capacity {
            match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    self.entries.pop_back();
                }
                ReplacementPolicy::Random => {
                    // xorshift64*
                    self.rng_state ^= self.rng_state << 13;
                    self.rng_state ^= self.rng_state >> 7;
                    self.rng_state ^= self.rng_state << 17;
                    let victim = (self.rng_state % self.entries.len() as u64) as usize;
                    self.entries.remove(victim);
                }
            }
            self.stats.evictions += 1;
        }
        self.entries.push_front(QcEntry {
            qfv,
            valid: true,
            top_k,
        });
    }

    /// Invalidates every entry (e.g. after `writeDB`/`appendDB` changes
    /// the database the results were computed against).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Time to search the cache: one QCN execution per entry, spread over
    /// the channel-level accelerators (§4.6: "the query engine offloads
    /// the execution of the QCN to the DeepStore channel-level
    /// accelerators").
    pub fn lookup_time(
        &self,
        qcn_shapes: &[LayerShape],
        channels: usize,
        overhead_cycles: u64,
    ) -> SimDuration {
        lookup_time_for(self.entries.len(), qcn_shapes, channels, overhead_cycles)
    }
}

/// Lookup-time model for a cache of `entries` entries (standalone so the
/// benches can sweep sizes without building caches).
pub fn lookup_time_for(
    entries: usize,
    qcn_shapes: &[LayerShape],
    channels: usize,
    overhead_cycles: u64,
) -> SimDuration {
    let acc = AcceleratorConfig::channel_level();
    let per_entry = scn_cycles_per_feature(qcn_shapes, &acc.array) + overhead_cycles;
    let shard = (entries as u64).div_ceil(channels.max(1) as u64);
    SimDuration::from_secs_f64(acc.array.cycles_to_secs(per_entry * shard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    fn qfv(seed: u64) -> Tensor {
        Tensor::random(vec![64], 1.0, seed)
    }

    fn perturbed(base: &Tensor, eps: f32, seed: u64) -> Tensor {
        let noise = Tensor::random(vec![base.len()], eps, seed);
        base.add(&noise).unwrap()
    }

    fn results(n: u64) -> Vec<ScoredFeature> {
        (0..n)
            .map(|i| ScoredFeature {
                score: 1.0 - i as f32 * 0.1,
                feature_id: i,
            })
            .collect()
    }

    fn cache(threshold: f64) -> QueryCache {
        QueryCache::new(QueryCacheConfig {
            capacity: 4,
            threshold,
            qcn_accuracy: 0.95,
        })
    }

    #[test]
    fn exact_repeat_hits() {
        let mut qc = cache(0.10);
        let q = qfv(1);
        assert!(qc.lookup(&q).is_none());
        qc.insert(q.clone(), results(3));
        let hit = qc.lookup(&q).unwrap();
        assert_eq!(hit.len(), 3);
        assert_eq!(qc.stats().hits, 1);
        assert_eq!(qc.stats().lookups, 2);
    }

    #[test]
    fn near_duplicate_hits_unrelated_misses() {
        let mut qc = cache(0.15);
        let q = qfv(1);
        qc.insert(q.clone(), results(2));
        // Small perturbation: should hit.
        let near = perturbed(&q, 0.05, 2);
        assert!(qc.lookup(&near).is_some());
        // Unrelated query: should miss.
        let far = qfv(99);
        assert!(qc.lookup(&far).is_none());
    }

    #[test]
    fn tighter_threshold_rejects_more() {
        let q = qfv(1);
        let near = perturbed(&q, 0.15, 2);
        let mut strict = cache(0.051); // qcn_accuracy alone costs 0.05
        strict.insert(q.clone(), results(1));
        let mut loose = cache(0.30);
        loose.insert(q, results(1));
        assert!(strict.lookup(&near).is_none());
        assert!(loose.lookup(&near).is_some());
    }

    #[test]
    fn qcn_score_properties() {
        let a = qfv(5);
        assert!((QueryCache::qcn_score(&a, &a) - 1.0).abs() < 1e-12);
        let b = qfv(6);
        let s = QueryCache::qcn_score(&a, &b);
        assert!(s > 0.0 && s < 0.9);
        // Symmetry.
        assert_eq!(s, QueryCache::qcn_score(&b, &a));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut qc = cache(0.06);
        let queries: Vec<Tensor> = (0..5).map(qfv).collect();
        for q in &queries {
            qc.insert(q.clone(), results(1));
        }
        assert_eq!(qc.len(), 4);
        assert_eq!(qc.stats().evictions, 1);
        // queries[0] was evicted; queries[1] survives.
        assert!(qc.lookup(&queries[0]).is_none());
        assert!(qc.lookup(&queries[1]).is_some());
    }

    #[test]
    fn hit_promotes_entry() {
        let mut qc = cache(0.06);
        let queries: Vec<Tensor> = (0..4).map(qfv).collect();
        for q in &queries {
            qc.insert(q.clone(), results(1));
        }
        // Touch the oldest, then insert one more: the second-oldest gets
        // evicted instead.
        assert!(qc.lookup(&queries[0]).is_some());
        qc.insert(qfv(100), results(1));
        assert!(qc.lookup(&queries[0]).is_some());
        assert!(qc.lookup(&queries[1]).is_none());
    }

    #[test]
    fn invalidate_clears() {
        let mut qc = cache(0.05);
        qc.insert(qfv(1), results(1));
        qc.invalidate_all();
        assert!(qc.is_empty());
        assert!(qc.lookup(&qfv(1)).is_none());
    }

    #[test]
    fn lookup_time_scales_with_entries_and_is_far_below_scan() {
        // §6.5: searching 1K entries costs ~0.3 ms, "significantly less
        // than the cost of scanning the entire feature database".
        let shapes = zoo::tir().layer_shapes();
        let t1k = lookup_time_for(1000, &shapes, 32, 150);
        let t100 = lookup_time_for(100, &shapes, 32, 150);
        assert!(t1k > t100);
        let ms = t1k.as_millis_f64();
        assert!((0.01..2.0).contains(&ms), "1K-entry lookup = {ms} ms");
    }

    #[test]
    fn miss_rate_reporting() {
        let mut qc = cache(0.06);
        assert_eq!(qc.stats().miss_rate(), 1.0);
        let q = qfv(1);
        qc.lookup(&q);
        qc.insert(q.clone(), results(1));
        qc.lookup(&q);
        assert!((qc.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_does_not_promote() {
        let mut qc = cache(0.06).with_policy(ReplacementPolicy::Fifo);
        let queries: Vec<Tensor> = (0..4).map(qfv).collect();
        for q in &queries {
            qc.insert(q.clone(), results(1));
        }
        // Touch the oldest (queries[0]); under FIFO it is still evicted by
        // the next insert.
        assert!(qc.lookup(&queries[0]).is_some());
        qc.insert(qfv(100), results(1));
        assert!(qc.lookup(&queries[0]).is_none());
    }

    #[test]
    fn random_policy_keeps_capacity_bound() {
        let mut qc = cache(0.06).with_policy(ReplacementPolicy::Random);
        for i in 0..50 {
            qc.insert(qfv(i), results(1));
            assert!(qc.len() <= 4);
        }
        assert_eq!(qc.stats().evictions, 46);
        assert_eq!(qc.policy(), ReplacementPolicy::Random);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = QueryCache::new(QueryCacheConfig {
            capacity: 0,
            threshold: 0.1,
            qcn_accuracy: 0.9,
        });
    }
}
