//! The device manifest persisted inside a single-file flash image.
//!
//! A persistent DeepStore device lives in one file (see
//! [`deepstore_flash::image`]): a versioned header, the raw page region
//! (the flash array's payload bytes, memory-mapped at runtime), and this
//! manifest — everything *semantic* the device needs to come back after
//! a reopen with bit-identical behavior: the configuration, the flash
//! array's programmed-page/erase-count/op-counter state, the FTL's
//! allocation state, every database's metadata and unsealed write
//! buffer, the loaded models, and the id counters.
//!
//! The manifest is serialized as JSON. All map-like state is encoded as
//! sorted `Vec<(key, value)>` pairs, which keeps the encoding
//! deterministic (two flushes of the same state produce byte-identical
//! manifests) and the format self-describing.
//!
//! What is deliberately **not** persisted:
//!
//! * int8 quantized sidecars — rebuilt on open by decoding features
//!   straight from the mapped page region ([`crate::engine`]'s restore
//!   path), which costs one pass over the database and no flash-counter
//!   movement.
//! * the query cache — it starts cold; cached answers are a pure
//!   performance artifact.
//! * pending query results and telemetry — results are consumed by
//!   `getResults` within a session; counters restart at zero except the
//!   flash op counters, which are part of the flash state proper.
//! * fault plans and retry policy — injected faults are a per-session
//!   experiment; the retry policy is re-derived from the persisted
//!   configuration.

use crate::config::DeepStoreConfig;
use crate::engine::DbMeta;
use crate::error::Result;
use deepstore_flash::ftl::FtlSnapshot;
use deepstore_flash::{FlashError, FlashStateSnapshot};
use deepstore_nn::Model;
use serde::{Deserialize, Serialize};

/// Version of the manifest encoding. Bumped on any incompatible change;
/// [`ImageManifest::decode`] rejects other versions with
/// [`crate::DeepStoreError::VersionMismatch`]. Independent of the image
/// *container* version ([`deepstore_flash::IMAGE_FORMAT_VERSION`]),
/// which covers the header/page-region layout underneath.
pub const MANIFEST_VERSION: u32 = 1;

/// Everything the device persists besides raw page payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageManifest {
    /// Encoding version ([`MANIFEST_VERSION`]).
    pub manifest_version: u32,
    /// The device configuration the image was created with.
    pub cfg: DeepStoreConfig,
    /// Flash-array semantic state (programmed pages, erase counts,
    /// retirement queue, op counters).
    pub flash: FlashStateSnapshot,
    /// FTL allocation state (map, free list in pop order, wear,
    /// invalidated and retired blocks, counters).
    pub ftl: FtlSnapshot,
    /// Per-database metadata, sorted by database id.
    pub dbs: Vec<DbMeta>,
    /// Unsealed per-database write buffers as sorted
    /// `(db_id, buffered_bytes)` pairs; empty buffers are omitted.
    pub write_buffers: Vec<(u64, Vec<u8>)>,
    /// Next database id to hand out.
    pub next_db: u64,
    /// Loaded models as sorted `(model_id, model)` pairs.
    pub models: Vec<(u64, Model)>,
    /// Next model id to hand out.
    pub next_model: u64,
    /// Next query id to hand out.
    pub next_query: u64,
}

impl ImageManifest {
    /// Serializes the manifest for [`deepstore_flash::PageStore::commit`].
    ///
    /// Deterministic: the same device state always encodes to the same
    /// bytes (all collections are pre-sorted and structs serialize in
    /// field order).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("manifest types serialize infallibly")
    }

    /// Parses a manifest previously produced by [`ImageManifest::encode`].
    ///
    /// # Errors
    ///
    /// * [`crate::DeepStoreError::VersionMismatch`] if the manifest was
    ///   written by a different encoding version.
    /// * [`crate::DeepStoreError::Flash`] wrapping [`FlashError::Image`]
    ///   if the bytes do not parse.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let manifest: ImageManifest = serde_json::from_slice(bytes)
            .map_err(|e| FlashError::Image(format!("manifest parse: {e}")))?;
        if manifest.manifest_version != MANIFEST_VERSION {
            return Err(FlashError::VersionMismatch {
                expected: MANIFEST_VERSION,
                found: manifest.manifest_version,
            }
            .into());
        }
        Ok(manifest)
    }
}

/// Version of the cluster layout encoding. Bumped on any incompatible
/// change; [`ClusterManifest::decode`] rejects other versions.
pub const CLUSTER_MANIFEST_VERSION: u32 = 1;

/// One partition's layout inside a [`ClusterDbLayout`]: the global
/// index ranges it holds (in local append order) and the drives
/// hosting its replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionLayout {
    /// `(global_start, len)` extents in local order.
    pub extents: Vec<(u64, u64)>,
    /// `(drive index, per-drive db id)` replicas in placement order.
    pub replicas: Vec<(u32, u64)>,
}

/// One partitioned database's layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterDbLayout {
    /// Bytes per feature (for hosted-bytes accounting on reopen).
    pub feature_bytes: u64,
    /// Partitions in index order.
    pub partitions: Vec<PartitionLayout>,
}

/// The cluster-level layout manifest, stored as `cluster.json` next to
/// the per-drive images. Everything the cluster needs *above* the
/// drives: partition extents (the global-index mapping), replica
/// placement, model-id fan-out, and which drives are administratively
/// down. Per-drive state lives in each drive's own image manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterManifest {
    /// Encoding version ([`CLUSTER_MANIFEST_VERSION`]).
    pub manifest_version: u32,
    /// Drive count; images are `drive-0.img … drive-{n-1}.img`.
    pub drives: u32,
    /// Target replication factor.
    pub replicas: u32,
    /// Administrative down flags, one per drive.
    pub down: Vec<bool>,
    /// Databases in cluster-id order.
    pub dbs: Vec<ClusterDbLayout>,
    /// Per cluster model: the per-drive model ids, in drive order.
    pub models: Vec<Vec<u64>>,
}

impl ClusterManifest {
    /// Serializes the manifest. Deterministic: same layout, same bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("manifest types serialize infallibly")
    }

    /// Parses a manifest previously produced by
    /// [`ClusterManifest::encode`].
    ///
    /// # Errors
    ///
    /// * [`crate::DeepStoreError::Flash`] wrapping
    ///   [`FlashError::VersionMismatch`] for a different encoding
    ///   version.
    /// * [`crate::DeepStoreError::Flash`] wrapping [`FlashError::Image`]
    ///   if the bytes do not parse or the layout is inconsistent.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let manifest: ClusterManifest = serde_json::from_slice(bytes)
            .map_err(|e| FlashError::Image(format!("cluster manifest parse: {e}")))?;
        if manifest.manifest_version != CLUSTER_MANIFEST_VERSION {
            return Err(FlashError::VersionMismatch {
                expected: CLUSTER_MANIFEST_VERSION,
                found: manifest.manifest_version,
            }
            .into());
        }
        if manifest.down.len() != manifest.drives as usize {
            return Err(FlashError::Image(format!(
                "cluster manifest lists {} down flags for {} drives",
                manifest.down.len(),
                manifest.drives
            ))
            .into());
        }
        for (dbi, db) in manifest.dbs.iter().enumerate() {
            for (pi, p) in db.partitions.iter().enumerate() {
                if let Some(&(drive, _)) = p.replicas.iter().find(|&&(d, _)| d >= manifest.drives) {
                    return Err(FlashError::Image(format!(
                        "db {dbi} partition {pi} places a replica on drive {drive} of {}",
                        manifest.drives
                    ))
                    .into());
                }
            }
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DeepStoreError;
    use deepstore_flash::FlashOpCounts;

    fn sample() -> ImageManifest {
        ImageManifest {
            manifest_version: MANIFEST_VERSION,
            cfg: DeepStoreConfig::small(),
            flash: FlashStateSnapshot {
                programmed_runs: vec![(0, 16), (64, 8)],
                erase_counts: vec![(0, 1), (4, 2)],
                pending_retire: vec![7],
                op_counts: FlashOpCounts {
                    reads: 10,
                    programs: 24,
                    erases: 3,
                },
            },
            ftl: FtlSnapshot {
                map: Vec::new(),
                free: Vec::new(),
                wear: Vec::new(),
                invalidated: Vec::new(),
                retired: Vec::new(),
                next_logical: 5,
                gc_runs: 1,
            },
            dbs: Vec::new(),
            write_buffers: vec![(1, vec![1, 2, 3])],
            next_db: 2,
            models: Vec::new(),
            next_model: 1,
            next_query: 9,
        }
    }

    #[test]
    fn roundtrips_losslessly_and_deterministically() {
        let m = sample();
        let bytes = m.encode();
        assert_eq!(bytes, m.encode(), "encoding must be deterministic");
        let back = ImageManifest::decode(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_future_versions_with_typed_error() {
        let mut m = sample();
        m.manifest_version = MANIFEST_VERSION + 7;
        let err = ImageManifest::decode(&m.encode()).unwrap_err();
        assert_eq!(
            err,
            DeepStoreError::VersionMismatch {
                expected: MANIFEST_VERSION,
                found: MANIFEST_VERSION + 7,
            }
        );
    }

    #[test]
    fn rejects_garbage_with_image_error() {
        let err = ImageManifest::decode(b"not json at all").unwrap_err();
        assert!(matches!(err, DeepStoreError::Flash(FlashError::Image(_))));
    }

    fn cluster_sample() -> ClusterManifest {
        ClusterManifest {
            manifest_version: CLUSTER_MANIFEST_VERSION,
            drives: 3,
            replicas: 2,
            down: vec![false, true, false],
            dbs: vec![ClusterDbLayout {
                feature_bytes: 3072,
                partitions: vec![
                    PartitionLayout {
                        extents: vec![(0, 3), (7, 2)],
                        replicas: vec![(0, 0), (1, 0)],
                    },
                    PartitionLayout {
                        extents: vec![(3, 2), (9, 2)],
                        replicas: vec![(1, 1), (2, 0)],
                    },
                    PartitionLayout {
                        extents: vec![(5, 2), (11, 1)],
                        replicas: vec![(2, 1), (0, 1)],
                    },
                ],
            }],
            models: vec![vec![0, 0, 0]],
        }
    }

    #[test]
    fn cluster_manifest_roundtrips_deterministically() {
        let m = cluster_sample();
        let bytes = m.encode();
        assert_eq!(bytes, m.encode(), "encoding must be deterministic");
        assert_eq!(ClusterManifest::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn cluster_manifest_rejects_bad_versions_and_layouts() {
        let mut m = cluster_sample();
        m.manifest_version = CLUSTER_MANIFEST_VERSION + 1;
        assert!(matches!(
            ClusterManifest::decode(&m.encode()).unwrap_err(),
            DeepStoreError::VersionMismatch { .. }
        ));
        let mut m = cluster_sample();
        m.down.pop();
        assert!(matches!(
            ClusterManifest::decode(&m.encode()).unwrap_err(),
            DeepStoreError::Flash(FlashError::Image(_))
        ));
        let mut m = cluster_sample();
        m.dbs[0].partitions[0].replicas[0].0 = 9;
        assert!(matches!(
            ClusterManifest::decode(&m.encode()).unwrap_err(),
            DeepStoreError::Flash(FlashError::Image(_))
        ));
    }
}
