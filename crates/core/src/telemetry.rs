//! Core-layer telemetry: query/scan metrics and the device stats surface.
//!
//! Two recording structs sit on the query pipeline:
//!
//! * [`ScanMetrics`] — owned by [`crate::engine::Engine`]; counts scans,
//!   batched scans, features scored and features skipped, recorded once
//!   per scan call (never per feature, so the hot path stays clean).
//! * [`ApiTelemetry`] — owned by [`crate::api::DeepStore`]; counts
//!   queries, batches and cache hits, and accumulates per-stage
//!   simulated-time totals (query-cache lookup, flash streaming,
//!   kernel/scoring, weight distribution) from the timing model.
//!
//! Every recording method's body is compiled out when the `obs` cargo
//! feature is off; the types, snapshots and [`DeviceStats`] stay
//! available (reporting zeros) so the API surface is identical in both
//! configurations. All storage is `deepstore_obs` counters/histograms,
//! so snapshots are deterministic under any `parallelism` setting —
//! every mutation is a commutative atomic add and every recorded
//! quantity is derived from the physically-determined shard plan or the
//! deterministic timing model, never from host wall-clock.

use deepstore_flash::FlashEventCounts;
use deepstore_obs::{CounterId, HistogramId, MetricsRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};

/// Per-stage simulated-time totals, in nanoseconds, accumulated across
/// every query served since the device was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTotals {
    /// Query-cache lookup time (Algorithm 1 probe, charged per query).
    pub qc_lookup_ns: u64,
    /// Flash streaming time of the slowest shard, summed per scan group.
    pub flash_ns: u64,
    /// Kernel/scoring (SCN compute) time, summed per scan group.
    pub compute_ns: u64,
    /// Weight distribution time, summed per scan group.
    pub weights_ns: u64,
    /// End-to-end scan time, summed per scan group.
    pub scan_ns: u64,
    /// End-to-end query latency, summed per query.
    pub total_ns: u64,
}

/// A point-in-time summary of everything the device has observed:
/// pipeline counters, per-stage latency totals, flash event counts, and
/// the full metrics snapshot for programmatic consumers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Queries served (cache hits included).
    pub queries: u64,
    /// `query_batch` calls served.
    pub batches: u64,
    /// Queries answered from the query cache.
    pub cache_hits: u64,
    /// Queries that required a scan.
    pub cache_misses: u64,
    /// Scan groups executed (each is one shared flash pass).
    pub scan_groups: u64,
    /// Features skipped across all scans because their pages failed ECC.
    pub unreadable_skipped: u64,
    /// Features the pruning cascade skipped exact scoring for (their
    /// int8 upper bound fell strictly below the running top-K
    /// threshold).
    pub pruned_features: u64,
    /// Features whose bound cleared (or tied) the threshold and were
    /// rescored through the exact f32 path.
    pub rescored_features: u64,
    /// Queries answered with less than full coverage (degraded top-K).
    pub degraded_queries: u64,
    /// Per-stage simulated-time totals.
    pub stages: StageTotals,
    /// Flash event counts (page reads, programs, erases, ECC, GC, bus
    /// waits).
    pub flash: FlashEventCounts,
    /// The full engine + API metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// Scan-path counters owned by the engine.
// With `obs` off the recording bodies compile out, so the counter ids
// are registered but never read.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
#[derive(Debug)]
pub struct ScanMetrics {
    registry: MetricsRegistry,
    scans: CounterId,
    batch_scans: CounterId,
    batch_queries: CounterId,
    features_scanned: CounterId,
    features_skipped: CounterId,
    features_pruned: CounterId,
    features_rescored: CounterId,
    scan_features: HistogramId,
}

impl Default for ScanMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanMetrics {
    /// Fresh counters, all zero.
    #[must_use]
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        ScanMetrics {
            scans: registry.counter("engine.scans"),
            batch_scans: registry.counter("engine.batch_scans"),
            batch_queries: registry.counter("engine.batch_queries"),
            features_scanned: registry.counter("engine.features_scanned"),
            features_skipped: registry.counter("engine.features_skipped"),
            features_pruned: registry.counter("scan.pruned_features"),
            features_rescored: registry.counter("scan.rescored_features"),
            scan_features: registry.histogram("engine.scan_features"),
            registry,
        }
    }

    /// One single-query scan finished: `features` scored, `skipped`
    /// dropped for failing ECC.
    #[inline]
    pub fn on_scan(&self, features: u64, skipped: u64) {
        #[cfg(feature = "obs")]
        {
            self.registry.incr(self.scans);
            self.registry.add(self.features_scanned, features - skipped);
            self.registry.add(self.features_skipped, skipped);
            self.registry.record(self.scan_features, features);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (features, skipped);
    }

    /// One batched scan finished: `queries` requests shared the pass
    /// over `features` features, with `skipped` dropped once per pass.
    #[inline]
    pub fn on_batch_scan(&self, queries: u64, features: u64, skipped: u64) {
        #[cfg(feature = "obs")]
        {
            self.registry.incr(self.batch_scans);
            self.registry.add(self.batch_queries, queries);
            self.registry.add(self.features_scanned, features - skipped);
            self.registry.add(self.features_skipped, skipped);
            self.registry.record(self.scan_features, features);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (queries, features, skipped);
    }

    /// One scan pass's cascade outcome: `pruned` per-query feature
    /// decisions skipped exact scoring, `rescored` cleared the bound
    /// check and took the exact path. Recorded once per pass (the
    /// engine sums per-shard counts first), keeping the hot path free
    /// of telemetry.
    #[inline]
    pub fn on_cascade(&self, pruned: u64, rescored: u64) {
        #[cfg(feature = "obs")]
        {
            self.registry.add(self.features_pruned, pruned);
            self.registry.add(self.features_rescored, rescored);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (pruned, rescored);
    }

    /// A deterministic snapshot of the engine's scan counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Query-path counters and stage totals owned by the API facade.
// With `obs` off the histogram ids are registered but never read.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
#[derive(Debug)]
pub struct ApiTelemetry {
    registry: MetricsRegistry,
    queries: CounterId,
    batches: CounterId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    scan_groups: CounterId,
    skipped: CounterId,
    degraded: CounterId,
    tagged: CounterId,
    recovery_remapped: CounterId,
    recovery_lost: CounterId,
    st_qc_lookup_ns: CounterId,
    st_flash_ns: CounterId,
    st_compute_ns: CounterId,
    st_weights_ns: CounterId,
    st_scan_ns: CounterId,
    st_total_ns: CounterId,
    h_query_ns: HistogramId,
    h_qc_lookup_ns: HistogramId,
    h_group_members: HistogramId,
}

impl Default for ApiTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ApiTelemetry {
    /// Fresh telemetry, all zero.
    #[must_use]
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        ApiTelemetry {
            queries: registry.counter("api.queries"),
            batches: registry.counter("api.batches"),
            cache_hits: registry.counter("api.cache_hits"),
            cache_misses: registry.counter("api.cache_misses"),
            scan_groups: registry.counter("api.scan_groups"),
            skipped: registry.counter("api.unreadable_skipped"),
            degraded: registry.counter("api.degraded_queries"),
            tagged: registry.counter("api.tagged_requests"),
            recovery_remapped: registry.counter("api.recovery.pages_remapped"),
            recovery_lost: registry.counter("api.recovery.pages_lost"),
            st_qc_lookup_ns: registry.counter("api.stage.qc_lookup_ns"),
            st_flash_ns: registry.counter("api.stage.flash_ns"),
            st_compute_ns: registry.counter("api.stage.compute_ns"),
            st_weights_ns: registry.counter("api.stage.weights_ns"),
            st_scan_ns: registry.counter("api.stage.scan_ns"),
            st_total_ns: registry.counter("api.stage.total_ns"),
            h_query_ns: registry.histogram("api.query_ns"),
            h_qc_lookup_ns: registry.histogram("api.qc_lookup_ns"),
            h_group_members: registry.histogram("api.scan_group_members"),
            registry,
        }
    }

    /// One `query_batch` call accepted.
    #[inline]
    pub fn on_batch(&self) {
        #[cfg(feature = "obs")]
        self.registry.incr(self.batches);
    }

    /// One query-cache lookup was charged `ns` of simulated time.
    #[inline]
    pub fn on_qc_lookup(&self, ns: u64) {
        #[cfg(feature = "obs")]
        {
            self.registry.add(self.st_qc_lookup_ns, ns);
            self.registry.record(self.h_qc_lookup_ns, ns);
        }
        #[cfg(not(feature = "obs"))]
        let _ = ns;
    }

    /// One scan group (shared flash pass) completed, with the timing
    /// model's stage breakdown and the pass's skip count.
    #[inline]
    pub fn on_scan_group(
        &self,
        members: u64,
        skipped: u64,
        flash_ns: u64,
        compute_ns: u64,
        weights_ns: u64,
        scan_ns: u64,
    ) {
        #[cfg(feature = "obs")]
        {
            self.registry.incr(self.scan_groups);
            self.registry.add(self.skipped, skipped);
            self.registry.add(self.st_flash_ns, flash_ns);
            self.registry.add(self.st_compute_ns, compute_ns);
            self.registry.add(self.st_weights_ns, weights_ns);
            self.registry.add(self.st_scan_ns, scan_ns);
            self.registry.record(self.h_group_members, members);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (members, skipped, flash_ns, compute_ns, weights_ns, scan_ns);
    }

    /// One query completed with simulated latency `elapsed_ns`.
    #[inline]
    pub fn on_query(&self, elapsed_ns: u64, cache_hit: bool) {
        #[cfg(feature = "obs")]
        {
            self.registry.incr(self.queries);
            self.registry.incr(if cache_hit {
                self.cache_hits
            } else {
                self.cache_misses
            });
            self.registry.add(self.st_total_ns, elapsed_ns);
            self.registry.record(self.h_query_ns, elapsed_ns);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (elapsed_ns, cache_hit);
    }

    /// One query was answered with less than full coverage.
    #[inline]
    pub fn on_degraded(&self) {
        #[cfg(feature = "obs")]
        self.registry.incr(self.degraded);
    }

    /// `n` requests in a batch carried a non-zero end-to-end
    /// `request_id` (a serve-layer admission tagged them, or the caller
    /// stamped its own correlation id).
    #[inline]
    pub fn on_tagged(&self, n: u64) {
        #[cfg(feature = "obs")]
        self.registry.add(self.tagged, n);
        #[cfg(not(feature = "obs"))]
        let _ = n;
    }

    /// A post-batch recovery pass remapped and/or lost pages while
    /// retiring permanently-failed blocks.
    #[inline]
    pub fn on_recovery(&self, pages_remapped: u64, pages_lost: u64) {
        #[cfg(feature = "obs")]
        {
            self.registry.add(self.recovery_remapped, pages_remapped);
            self.registry.add(self.recovery_lost, pages_lost);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (pages_remapped, pages_lost);
    }

    /// Queries served so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.registry.counter_value(self.queries)
    }

    /// Batches served so far.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.registry.counter_value(self.batches)
    }

    /// Cache hits so far.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.registry.counter_value(self.cache_hits)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.registry.counter_value(self.cache_misses)
    }

    /// Scan groups executed so far.
    #[must_use]
    pub fn scan_groups(&self) -> u64 {
        self.registry.counter_value(self.scan_groups)
    }

    /// Features skipped (as attributed to queries) so far.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.registry.counter_value(self.skipped)
    }

    /// Queries answered degraded (coverage < 1) so far.
    #[must_use]
    pub fn degraded_queries(&self) -> u64 {
        self.registry.counter_value(self.degraded)
    }

    /// The per-stage simulated-time totals.
    #[must_use]
    pub fn stage_totals(&self) -> StageTotals {
        StageTotals {
            qc_lookup_ns: self.registry.counter_value(self.st_qc_lookup_ns),
            flash_ns: self.registry.counter_value(self.st_flash_ns),
            compute_ns: self.registry.counter_value(self.st_compute_ns),
            weights_ns: self.registry.counter_value(self.st_weights_ns),
            scan_ns: self.registry.counter_value(self.st_scan_ns),
            total_ns: self.registry.counter_value(self.st_total_ns),
        }
    }

    /// A deterministic snapshot of the API-level metrics.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Cluster-level counters and histograms owned by
/// [`DeepStoreCluster`](crate::cluster::DeepStoreCluster): scatter-gather
/// fan-out, replica failovers, and rebalance outcomes (moved bytes and
/// the replication-factor distribution). Per-drive engine/API metrics
/// stay on the drives; the cluster rolls everything up with
/// [`MetricsSnapshot::merge`].
// With `obs` off the recording bodies compile out, so the ids are
// registered but never read.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
#[derive(Debug)]
pub struct ClusterTelemetry {
    registry: MetricsRegistry,
    queries: CounterId,
    partitions_scanned: CounterId,
    failovers: CounterId,
    degraded: CounterId,
    rebalances: CounterId,
    moved_bytes: CounterId,
    re_replicated: CounterId,
    dropped_replicas: CounterId,
    h_query_ns: HistogramId,
    h_replication: HistogramId,
    h_moved_bytes: HistogramId,
}

impl Default for ClusterTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterTelemetry {
    /// Fresh counters, all zero.
    #[must_use]
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        ClusterTelemetry {
            queries: registry.counter("cluster.queries"),
            partitions_scanned: registry.counter("cluster.partitions_scanned"),
            failovers: registry.counter("cluster.replica_failovers"),
            degraded: registry.counter("cluster.degraded_queries"),
            rebalances: registry.counter("cluster.rebalances"),
            moved_bytes: registry.counter("cluster.rebalance.moved_bytes"),
            re_replicated: registry.counter("cluster.rebalance.re_replicated"),
            dropped_replicas: registry.counter("cluster.rebalance.dropped_replicas"),
            h_query_ns: registry.histogram("cluster.query_ns"),
            h_replication: registry.histogram("cluster.partition_replication"),
            h_moved_bytes: registry.histogram("cluster.rebalance.moved_bytes_per_partition"),
            registry,
        }
    }

    /// One cluster query finished: it scanned `partitions` partitions,
    /// failed over `failovers` times, and took `elapsed_ns` of
    /// simulated time end to end.
    #[inline]
    pub fn on_query(&self, partitions: u64, failovers: u64, elapsed_ns: u64, degraded: bool) {
        #[cfg(feature = "obs")]
        {
            self.registry.incr(self.queries);
            self.registry.add(self.partitions_scanned, partitions);
            self.registry.add(self.failovers, failovers);
            if degraded {
                self.registry.incr(self.degraded);
            }
            self.registry.record(self.h_query_ns, elapsed_ns);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (partitions, failovers, elapsed_ns, degraded);
    }

    /// One `rebalance()` pass finished.
    #[inline]
    pub fn on_rebalance(&self, moved_bytes: u64, re_replicated: u64, dropped: u64) {
        #[cfg(feature = "obs")]
        {
            self.registry.incr(self.rebalances);
            self.registry.add(self.moved_bytes, moved_bytes);
            self.registry.add(self.re_replicated, re_replicated);
            self.registry.add(self.dropped_replicas, dropped);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (moved_bytes, re_replicated, dropped);
    }

    /// Records one partition's state after a rebalance pass: its
    /// replication factor and the bytes moved on its behalf.
    #[inline]
    pub fn on_partition_rebalanced(&self, replication: u64, moved_bytes: u64) {
        #[cfg(feature = "obs")]
        {
            self.registry.record(self.h_replication, replication);
            self.registry.record(self.h_moved_bytes, moved_bytes);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (replication, moved_bytes);
    }

    /// Cluster queries served so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.registry.counter_value(self.queries)
    }

    /// Replica failovers so far.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.registry.counter_value(self.failovers)
    }

    /// A deterministic snapshot of the cluster-level metrics.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Concatenates metric snapshots (registration order within each part
/// is preserved; names are namespaced by their owners, e.g. `engine.*`
/// and `api.*`, so concatenation cannot collide).
#[must_use]
pub fn merge_snapshots(parts: Vec<MetricsSnapshot>) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::empty();
    for part in parts {
        merged.counters.extend(part.counters);
        merged.histograms.extend(part.histograms);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_totals_accumulate() {
        let t = ApiTelemetry::new();
        t.on_batch();
        t.on_qc_lookup(100);
        t.on_scan_group(2, 1, 50, 30, 20, 80);
        t.on_query(180, false);
        t.on_query(100, true);
        if cfg!(feature = "obs") {
            assert_eq!(t.queries(), 2);
            assert_eq!(t.cache_hits(), 1);
            assert_eq!(t.cache_misses(), 1);
            assert_eq!(t.scan_groups(), 1);
            assert_eq!(t.skipped(), 1);
            let s = t.stage_totals();
            assert_eq!(s.qc_lookup_ns, 100);
            assert_eq!(s.flash_ns, 50);
            assert_eq!(s.compute_ns, 30);
            assert_eq!(s.weights_ns, 20);
            assert_eq!(s.scan_ns, 80);
            assert_eq!(s.total_ns, 280);
        } else {
            assert_eq!(t.queries(), 0);
            assert_eq!(t.stage_totals(), StageTotals::default());
        }
    }

    #[test]
    fn fault_hooks_count_degraded_queries_and_recovery() {
        let t = ApiTelemetry::new();
        t.on_degraded();
        t.on_degraded();
        t.on_recovery(8, 3);
        t.on_recovery(0, 1);
        if cfg!(feature = "obs") {
            assert_eq!(t.degraded_queries(), 2);
            let snap = t.snapshot();
            assert_eq!(snap.counter("api.degraded_queries"), Some(2));
            assert_eq!(snap.counter("api.recovery.pages_remapped"), Some(8));
            assert_eq!(snap.counter("api.recovery.pages_lost"), Some(4));
        } else {
            assert_eq!(t.degraded_queries(), 0);
        }
    }

    #[test]
    fn merged_snapshot_keeps_namespaced_parts() {
        let e = ScanMetrics::new();
        let a = ApiTelemetry::new();
        e.on_scan(10, 2);
        a.on_query(5, false);
        let merged = merge_snapshots(vec![e.snapshot(), a.snapshot()]);
        let expected = if cfg!(feature = "obs") { 8 } else { 0 };
        assert_eq!(merged.counter("engine.features_scanned"), Some(expected));
        assert!(merged.counter("api.queries").is_some());
        assert!(merged.histogram("engine.scan_features").is_some());
    }

    #[test]
    fn device_stats_roundtrips_through_json() {
        let stats = DeviceStats {
            queries: 3,
            stages: StageTotals {
                total_ns: 99,
                ..StageTotals::default()
            },
            ..DeviceStats::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: DeviceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
