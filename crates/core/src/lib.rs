//! DeepStore: in-storage acceleration for intelligent queries.
//!
//! This crate is the paper's primary contribution — an SSD augmented with
//! neural-network accelerators at three levels of its internal hierarchy
//! (§4), a lightweight query engine on the embedded cores, a
//! similarity-based query cache, and a small programming API:
//!
//! * [`config`] — the Table 3 accelerator configurations and power
//!   budgets.
//! * [`accel`] — the scan timing/energy-count model for the SSD-,
//!   channel- and chip-level placements.
//! * [`engine`] — the functional in-storage engine: real flash pages,
//!   real similarity scores, map-reduce top-K.
//! * [`qcache`] — the similarity-based Query Cache (Algorithm 1).
//! * [`api`] — the Table 2 programming interface ([`DeepStore`]).
//! * [`persist`] — the manifest persisted inside a single-file mmap
//!   flash image ([`DeepStore::create`] / [`DeepStore::open`]).
//! * [`dse`] — the power-constrained design-space exploration.
//!
//! # Example
//!
//! ```
//! use deepstore_core::{DeepStore, DeepStoreConfig, QueryRequest};
//! use deepstore_nn::{zoo, ModelGraph};
//!
//! let mut store = DeepStore::in_memory(DeepStoreConfig::small());
//! let model = zoo::textqa().seeded(9);
//! let features: Vec<_> = (0..32).map(|i| model.random_feature(i)).collect();
//! let db = store.write_db(&features).unwrap();
//! let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
//! let qid = store
//!     .query(QueryRequest::new(model.random_feature(99), mid, db).k(3))
//!     .unwrap();
//! let result = store.results(qid).unwrap();
//! assert_eq!(result.top_k.len(), 3);
//!
//! // A batch shares one flash pass across co-pending queries:
//! let reqs: Vec<_> = (0..4)
//!     .map(|i| QueryRequest::new(model.random_feature(200 + i), mid, db).k(3))
//!     .collect();
//! let ids = store.query_batch(&reqs).unwrap();
//! assert_eq!(ids.len(), 4);
//! ```

pub mod accel;
pub mod api;
pub mod cluster;
pub mod config;
pub mod dse;
pub mod engine;
pub mod error;
pub mod persist;
pub mod proto;
pub mod qcache;
pub mod runtime;
pub mod serve;
pub mod telemetry;

pub use accel::{scan, scan_batch, ScanTiming, ScanWorkload, ShardTiming};
pub use api::{DeepStore, ModelId, QueryHit, QueryId, QueryRequest, QueryResult};
pub use cluster::{
    ClusterDbId, ClusterHit, ClusterModelId, ClusterQueryRequest, ClusterQueryResult,
    DeepStoreCluster, PartitionScan, RebalanceReport,
};
pub use config::{AcceleratorConfig, AcceleratorLevel, DeepStoreConfig};
pub use engine::{DbId, ObjectId};
pub use error::{DeepStoreError, Result};
pub use persist::{ImageManifest, MANIFEST_VERSION};
pub use qcache::{QueryCache, QueryCacheConfig, ReplacementPolicy};
pub use serve::{
    channel_transport, serve, ChannelClient, ChannelConnector, QuotaConfig, ServeClock,
    ServeConfig, ServerHandle, ServerStats, TcpClient, TcpTransport, Transport,
};
pub use telemetry::{DeviceStats, StageTotals};
