//! Multi-drive DeepStore: replicated scatter-gather across devices.
//!
//! Figure 10b shows that "the compute capability of all DeepStore designs
//! scales linearly with the number of SSDs": a feature database
//! partitioned over N drives is scanned by all of them concurrently, and
//! the host merges the per-drive top-K — the same map-reduce shape the
//! engine uses internally across channels (§4.7.1), lifted one level up.
//!
//! [`DeepStoreCluster`] makes that real rather than analytic:
//!
//! * **Partitioning** — `writeDB` splits each call's features into N
//!   contiguous chunks, one per partition. Every partition records the
//!   global index range of each chunk it received ([`Extent`]s), so the
//!   local→global index mapping is *metadata*, not arithmetic: appends
//!   that straddle partition boundaries keep resolving exactly.
//! * **R-way replication** — each partition's chunk is written to R
//!   distinct drives (placement never co-locates two copies). Queries
//!   scan **one live replica per partition**; replicas are pure
//!   redundancy, not extra work.
//! * **Deterministic merge** — per-replica top-K hits are re-keyed to
//!   global indices and merged with [`TopKSorter`]'s total order
//!   (score desc, global index asc). Local order within a partition is
//!   global order restricted to it, so the merged top-K is bit-identical
//!   to a single-device scan of the same write order, at any N, R, and
//!   scan parallelism.
//! * **Failure routing** — a replica that cannot answer at full
//!   coverage (dead channel/chip outage, unrecoverable page loss, or a
//!   whole dead drive) triggers failover to the next replica in
//!   placement order. Coverage stays 1.0 until *all* R copies of some
//!   partition are damaged; after that the best surviving replica
//!   answers and the result is marked degraded.
//! * **Rebalancing** — [`DeepStoreCluster::rebalance`] is the explicit
//!   maintenance op: per-drive fault recovery first, then a scrub probe
//!   of every replica, dropping the dead ones and re-replicating from a
//!   healthy copy onto the least-loaded healthy drive. The pass reports
//!   moved bytes and the post-state replication factor, and records both
//!   through `crates/obs`.
//!
//! The simulated latency of a cluster query is the slowest drive's total
//! (drives run concurrently; scans on one drive serialize).

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::api::{DeepStore, ModelId, QueryHit, QueryRequest};
use crate::config::{AcceleratorLevel, DeepStoreConfig};
use crate::engine::DbId;
use crate::error::{DeepStoreError, Result};
use crate::telemetry::ClusterTelemetry;
use deepstore_flash::fault::FaultPlan;
use deepstore_flash::{FlashError, SimDuration};
use deepstore_nn::{ModelGraph, Tensor};
use deepstore_obs::MetricsSnapshot;
use deepstore_systolic::topk::TopKSorter;
use serde::{Deserialize, Serialize};

/// A database partitioned (and replicated) across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterDbId(pub u64);

/// A model registered on every drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterModelId(pub u64);

/// One contiguous run of global indices held by a partition. A
/// partition's local feature order is the concatenation of its extents
/// in the order they were appended; extents are strictly increasing in
/// `global_start`, so local order is global order restricted to the
/// partition — the property the deterministic merge relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// Global index of the extent's first feature.
    pub global_start: u64,
    /// Features in the extent.
    pub len: u64,
}

/// One physical copy of a partition: a single-drive database on one
/// drive of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Replica {
    /// Drive hosting the copy.
    pub drive: usize,
    /// The per-drive database id of the copy.
    pub db: DbId,
}

#[derive(Debug, Clone)]
struct Partition {
    extents: Vec<Extent>,
    replicas: Vec<Replica>,
}

impl Partition {
    fn len(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Resolves a local feature index to its global index by walking
    /// the extent metadata (NOT round-robin arithmetic: after appends a
    /// partition's local space is a concatenation of disjoint global
    /// ranges).
    fn global_of(&self, mut local: u64) -> u64 {
        for e in &self.extents {
            if local < e.len {
                return e.global_start + local;
            }
            local -= e.len;
        }
        unreachable!("local index {local} beyond partition extents")
    }
}

#[derive(Debug, Clone)]
struct PartitionedDb {
    partitions: Vec<Partition>,
    total_features: u64,
    feature_bytes: u64,
}

struct ClusterModel {
    per_drive: Vec<ModelId>,
}

/// A hit annotated with the drive and global index it resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterHit {
    /// Index of the drive whose replica served the hit.
    pub drive: usize,
    /// The per-drive hit. `hit.feature_index` is the index *within the
    /// serving replica's local database*.
    pub hit: QueryHit,
    /// The feature's global index in the original write order, derived
    /// from partition extent metadata.
    pub global_index: u64,
}

/// Per-partition routing outcome of one cluster query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionScan {
    /// Partition index.
    pub partition: usize,
    /// Drive whose replica served the partition; `None` when every
    /// replica was unavailable (all hosting drives down).
    pub drive: Option<usize>,
    /// Features of this partition covered by the serving replica.
    pub covered: u64,
    /// Features of this partition the serving replica could not read.
    pub skipped: u64,
    /// Replicas tried (or skipped as down) before settling.
    pub failovers: u32,
}

/// Result of a cluster-wide query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterQueryResult {
    /// Ranked hits, best first — bit-identical to a single-device scan
    /// of the same write order while coverage is 1.0.
    pub top_k: Vec<ClusterHit>,
    /// Simulated latency: the slowest drive's total for this query
    /// (drives run concurrently; failover attempts charge the drive
    /// that served them).
    pub elapsed: SimDuration,
    /// Fraction of the database's features covered by the chosen
    /// replicas, in `[0, 1]`. Stays 1.0 until all R copies of some
    /// partition are damaged.
    pub coverage: f64,
    /// True when `coverage < 1.0`.
    pub degraded: bool,
    /// Per-partition routing: which replica served, at what coverage,
    /// after how many failovers.
    pub partitions: Vec<PartitionScan>,
}

/// A query against the cluster. Mirrors [`QueryRequest`] one level up.
#[derive(Debug, Clone)]
pub struct ClusterQueryRequest {
    /// Query feature vector.
    pub qfv: Tensor,
    /// Model to score with (registered on every drive).
    pub model: ClusterModelId,
    /// Partitioned database to scan.
    pub db: ClusterDbId,
    /// Results to return.
    pub k: usize,
    /// Accelerator placement level.
    pub level: AcceleratorLevel,
    /// Bypass the int8 pruning cascade (results are bit-identical
    /// either way; this is a perf-debugging knob).
    pub exact: bool,
}

impl ClusterQueryRequest {
    /// A request with `k = 1`, SSD level, cascade enabled.
    #[must_use]
    pub fn new(qfv: Tensor, model: ClusterModelId, db: ClusterDbId) -> Self {
        ClusterQueryRequest {
            qfv,
            model,
            db,
            k: 1,
            level: AcceleratorLevel::Ssd,
            exact: false,
        }
    }

    /// Sets the number of results.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the accelerator level.
    #[must_use]
    pub fn level(mut self, level: AcceleratorLevel) -> Self {
        self.level = level;
        self
    }

    /// Bypasses the pruning cascade.
    #[must_use]
    pub fn exact(mut self, exact: bool) -> Self {
        self.exact = exact;
        self
    }
}

/// What one [`DeepStoreCluster::rebalance`] pass accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalanceReport {
    /// Partitions examined (across all databases).
    pub partitions: u64,
    /// Partitions found holding fewer than R healthy replicas.
    pub under_replicated: u64,
    /// New replicas created from a healthy copy.
    pub re_replicated: u64,
    /// Dead replicas dropped from partition membership.
    pub dropped_replicas: u64,
    /// Feature bytes copied drive-to-drive while re-replicating.
    pub moved_bytes: u64,
    /// Pages healed by per-drive fault recovery (remapped out of
    /// retiring blocks) during the pass.
    pub pages_remapped: u64,
    /// Pages lost with no remap source during per-drive recovery.
    pub pages_lost: u64,
    /// Blocks retired by per-drive recovery.
    pub blocks_retired: u64,
    /// Partitions with *zero* healthy replicas: the data is gone until
    /// the host rewrites it, and re-replication has no source.
    pub unrecoverable: u64,
    /// Smallest per-partition replica count after the pass.
    pub min_replication: u64,
    /// Largest per-partition replica count after the pass.
    pub max_replication: u64,
}

impl RebalanceReport {
    /// True when every partition ended the pass at the target
    /// replication factor `r`.
    #[must_use]
    pub fn fully_replicated(&self, r: usize) -> bool {
        self.unrecoverable == 0 && self.min_replication >= r as u64
    }
}

/// A group of DeepStore drives behaving as one logical store.
pub struct DeepStoreCluster {
    drives: Vec<DeepStore>,
    /// Drives administratively marked down ([`DeepStoreCluster::kill_drive`]):
    /// queries skip their replicas without probing, and rebalancing
    /// never targets them.
    down: Vec<bool>,
    /// Feature bytes each drive hosts (replica placement balances this).
    hosted_bytes: Vec<u64>,
    replicas: usize,
    dbs: Vec<PartitionedDb>,
    models: Vec<ClusterModel>,
    telemetry: ClusterTelemetry,
    /// Directory of per-drive images when the cluster is persistent.
    image_dir: Option<PathBuf>,
}

impl std::fmt::Debug for DeepStoreCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepStoreCluster")
            .field("drives", &self.drives.len())
            .field("replicas", &self.replicas)
            .field("dbs", &self.dbs.len())
            .field("models", &self.models.len())
            .finish()
    }
}

impl DeepStoreCluster {
    /// Creates an unreplicated (R = 1) cluster of `n` identical
    /// in-memory drives.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, cfg: DeepStoreConfig) -> Self {
        Self::with_replication(n, 1, cfg)
    }

    /// Creates a cluster of `n` identical in-memory drives with `r`-way
    /// replication. Every partition is stored on `r` distinct drives,
    /// so `r` must not exceed `n`.
    ///
    /// The per-drive query cache is disabled: a cached answer predating
    /// fault injection would claim full coverage for data that is now
    /// unreadable, corrupting failover decisions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `r == 0`, or `r > n`.
    pub fn with_replication(n: usize, r: usize, cfg: DeepStoreConfig) -> Self {
        assert!(n > 0, "cluster needs at least one drive");
        assert!(r > 0, "replication factor must be at least 1");
        assert!(
            r <= n,
            "cannot place {r} replicas on {n} drives without co-location"
        );
        let mut drive_cfg = cfg;
        drive_cfg.qc_capacity = 0;
        DeepStoreCluster {
            drives: (0..n)
                .map(|_| DeepStore::in_memory(drive_cfg.clone()))
                .collect(),
            down: vec![false; n],
            hosted_bytes: vec![0; n],
            replicas: r,
            dbs: Vec::new(),
            models: Vec::new(),
            telemetry: ClusterTelemetry::new(),
            image_dir: None,
        }
    }

    /// Creates a persistent cluster: `n` single-file flash images named
    /// `drive-<i>.img` under `dir`, plus a `cluster.json` layout
    /// manifest written by [`DeepStoreCluster::flush`].
    ///
    /// # Errors
    ///
    /// Propagates image-creation failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `r == 0`, or `r > n`.
    pub fn create_persistent(
        dir: impl AsRef<Path>,
        n: usize,
        r: usize,
        cfg: DeepStoreConfig,
    ) -> Result<Self> {
        assert!(n > 0, "cluster needs at least one drive");
        assert!(r > 0, "replication factor must be at least 1");
        assert!(
            r <= n,
            "cannot place {r} replicas on {n} drives without co-location"
        );
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| FlashError::Image(format!("create cluster dir: {e}")))?;
        let mut drive_cfg = cfg;
        drive_cfg.qc_capacity = 0;
        let mut drives = Vec::with_capacity(n);
        for d in 0..n {
            drives.push(DeepStore::create(
                Self::drive_image_path(dir, d),
                drive_cfg.clone(),
            )?);
        }
        Ok(DeepStoreCluster {
            drives,
            down: vec![false; n],
            hosted_bytes: vec![0; n],
            replicas: r,
            dbs: Vec::new(),
            models: Vec::new(),
            telemetry: ClusterTelemetry::new(),
            image_dir: Some(dir.to_path_buf()),
        })
    }

    /// Reopens a persistent cluster from its directory: the layout
    /// manifest plus every per-drive image.
    ///
    /// # Errors
    ///
    /// Propagates manifest and image-open failures;
    /// [`FlashError::VersionMismatch`] (wrapped) for a manifest written
    /// by a different encoding version.
    pub fn open_persistent(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let bytes = std::fs::read(Self::manifest_path(dir))
            .map_err(|e| FlashError::Image(format!("read cluster manifest: {e}")))?;
        let manifest = crate::persist::ClusterManifest::decode(&bytes)?;
        let n = manifest.drives as usize;
        let mut drives = Vec::with_capacity(n);
        for d in 0..n {
            drives.push(DeepStore::open(Self::drive_image_path(dir, d))?);
        }
        let mut hosted_bytes = vec![0u64; n];
        let dbs: Vec<PartitionedDb> = manifest
            .dbs
            .iter()
            .map(|db| {
                let partitions: Vec<Partition> = db
                    .partitions
                    .iter()
                    .map(|p| Partition {
                        extents: p
                            .extents
                            .iter()
                            .map(|&(global_start, len)| Extent { global_start, len })
                            .collect(),
                        replicas: p
                            .replicas
                            .iter()
                            .map(|&(drive, db_id)| Replica {
                                drive: drive as usize,
                                db: DbId(db_id),
                            })
                            .collect(),
                    })
                    .collect();
                for p in &partitions {
                    for rep in &p.replicas {
                        hosted_bytes[rep.drive] += p.len() * db.feature_bytes;
                    }
                }
                PartitionedDb {
                    total_features: partitions.iter().map(Partition::len).sum(),
                    feature_bytes: db.feature_bytes,
                    partitions,
                }
            })
            .collect();
        Ok(DeepStoreCluster {
            drives,
            down: manifest.down.clone(),
            hosted_bytes,
            replicas: manifest.replicas as usize,
            dbs,
            models: manifest
                .models
                .iter()
                .map(|per_drive| ClusterModel {
                    per_drive: per_drive.iter().map(|&m| ModelId(m)).collect(),
                })
                .collect(),
            telemetry: ClusterTelemetry::new(),
            image_dir: Some(dir.to_path_buf()),
        })
    }

    fn drive_image_path(dir: &Path, d: usize) -> PathBuf {
        dir.join(format!("drive-{d}.img"))
    }

    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("cluster.json")
    }

    /// Flushes every drive's image and commits the cluster layout
    /// manifest (write-to-temp + rename, so a crash leaves the previous
    /// manifest authoritative). No-op on an in-memory cluster.
    ///
    /// # Errors
    ///
    /// Propagates per-drive flush and manifest I/O failures.
    pub fn flush(&mut self) -> Result<()> {
        let Some(dir) = self.image_dir.clone() else {
            return Ok(());
        };
        for drive in &mut self.drives {
            drive.flush()?;
        }
        let manifest = crate::persist::ClusterManifest {
            manifest_version: crate::persist::CLUSTER_MANIFEST_VERSION,
            drives: self.drives.len() as u32,
            replicas: self.replicas as u32,
            down: self.down.clone(),
            dbs: self
                .dbs
                .iter()
                .map(|db| crate::persist::ClusterDbLayout {
                    feature_bytes: db.feature_bytes,
                    partitions: db
                        .partitions
                        .iter()
                        .map(|p| crate::persist::PartitionLayout {
                            extents: p.extents.iter().map(|e| (e.global_start, e.len)).collect(),
                            replicas: p
                                .replicas
                                .iter()
                                .map(|r| (r.drive as u32, r.db.0))
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
            models: self
                .models
                .iter()
                .map(|m| m.per_drive.iter().map(|id| id.0).collect())
                .collect(),
        };
        let path = Self::manifest_path(&dir);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, manifest.encode())
            .map_err(|e| FlashError::Image(format!("write cluster manifest: {e}")))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| FlashError::Image(format!("commit cluster manifest: {e}")))?;
        Ok(())
    }

    /// Drive count.
    pub fn drives(&self) -> usize {
        self.drives.len()
    }

    /// Target replication factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Partition count of a database (always the drive count).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] (wrapped) for a bad handle.
    pub fn partitions(&self, db: ClusterDbId) -> Result<usize> {
        Ok(self.db(db)?.partitions.len())
    }

    /// Total features in a database.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] (wrapped) for a bad handle.
    pub fn db_features(&self, db: ClusterDbId) -> Result<u64> {
        Ok(self.db(db)?.total_features)
    }

    /// Per-partition replica counts for a database, in partition order.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] (wrapped) for a bad handle.
    pub fn replication(&self, db: ClusterDbId) -> Result<Vec<usize>> {
        Ok(self
            .db(db)?
            .partitions
            .iter()
            .map(|p| p.replicas.len())
            .collect())
    }

    /// Sets every drive's scan worker count (`0` = one worker per
    /// available host core). Purely a host wall-clock knob; results and
    /// simulated timing are unchanged.
    pub fn set_parallelism(&mut self, workers: usize) {
        for drive in &mut self.drives {
            drive.set_parallelism(workers);
        }
    }

    /// Arms a fault plan on one drive (replacing any previous plan).
    ///
    /// # Panics
    ///
    /// Panics if `drive` is out of range.
    pub fn inject_faults(&mut self, drive: usize, plan: FaultPlan) {
        self.drives[drive].inject_faults(plan);
    }

    /// Kills a whole drive: every channel becomes an outage domain
    /// (every read fails, no remap source) and the drive is marked down
    /// so queries skip its replicas without probing and rebalancing
    /// never targets it.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is out of range.
    pub fn kill_drive(&mut self, drive: usize) {
        let geometry = self.drives[drive].config().ssd.geometry;
        self.drives[drive].inject_faults(FaultPlan::dead_device(&geometry));
        self.down[drive] = true;
    }

    /// Whether a drive is administratively down.
    pub fn is_down(&self, drive: usize) -> bool {
        self.down[drive]
    }

    /// Cluster-level metrics (scatter-gather, failover, rebalance).
    /// All-zero when the `obs` feature is compiled out.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// Cluster metrics plus every drive's engine/API metrics folded
    /// together with [`MetricsSnapshot::merge`] (same-name drive
    /// counters sum across the fleet).
    pub fn fleet_metrics(&self) -> MetricsSnapshot {
        let mut merged = self.telemetry.snapshot();
        for drive in &self.drives {
            merged.merge(&drive.stats().metrics);
        }
        merged
    }

    fn db(&self, db: ClusterDbId) -> Result<&PartitionedDb> {
        self.dbs
            .get(db.0 as usize)
            .ok_or(DeepStoreError::Flash(FlashError::UnknownDb(db.0)))
    }

    fn model(&self, model: ClusterModelId) -> Result<&ClusterModel> {
        self.models
            .get(model.0 as usize)
            .ok_or(DeepStoreError::UnknownModel(ModelId(model.0)))
    }

    /// Splits `m` features into `parts` contiguous chunk lengths,
    /// balanced to within one feature (earlier partitions take the
    /// remainder).
    fn chunk_lens(m: usize, parts: usize) -> Vec<u64> {
        (0..parts)
            .map(|p| (m / parts + usize::from(p < m % parts)) as u64)
            .collect()
    }

    /// `writeDB`: partitions a feature database across the drives with
    /// R-way replication.
    ///
    /// Each call's features are split into N contiguous chunks; chunk
    /// `p` lands on partition `p`, whose replicas live on drives
    /// `p, p+1, …, p+R-1 (mod N)` — R distinct drives, so losing one
    /// device costs at most one copy of any partition.
    ///
    /// # Errors
    ///
    /// Requires at least one feature per partition
    /// ([`FlashError::SizeMismatch`], wrapped) so every partition
    /// exists; propagates the first drive failure.
    pub fn write_db(&mut self, features: &[Tensor]) -> Result<ClusterDbId> {
        let n = self.drives.len();
        if features.len() < n {
            return Err(FlashError::SizeMismatch {
                expected: n,
                found: features.len(),
            }
            .into());
        }
        let feature_bytes = features.first().map_or(0, |t| 4 * t.len() as u64);
        let lens = Self::chunk_lens(features.len(), n);
        let mut partitions = Vec::with_capacity(n);
        let mut start = 0u64;
        for (p, &len) in lens.iter().enumerate() {
            let chunk = &features[start as usize..(start + len) as usize];
            let mut replicas = Vec::with_capacity(self.replicas);
            for j in 0..self.replicas {
                let drive = (p + j) % n;
                let db = self.drives[drive].write_db(chunk)?;
                self.hosted_bytes[drive] += len * feature_bytes;
                replicas.push(Replica { drive, db });
            }
            partitions.push(Partition {
                extents: vec![Extent {
                    global_start: start,
                    len,
                }],
                replicas,
            });
            start += len;
        }
        let id = ClusterDbId(self.dbs.len() as u64);
        self.dbs.push(PartitionedDb {
            partitions,
            total_features: features.len() as u64,
            feature_bytes,
        });
        Ok(id)
    }

    /// `appendDB`: appends features to a partitioned database. The new
    /// features are split into N contiguous chunks exactly like
    /// `writeDB`, so a partition's local space becomes a concatenation
    /// of disjoint global ranges — which is why the global-index
    /// mapping reads extent metadata instead of doing arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] (wrapped) for a bad handle;
    /// propagates the first drive failure.
    pub fn append_db(&mut self, db: ClusterDbId, features: &[Tensor]) -> Result<()> {
        self.db(db)?;
        if features.is_empty() {
            return Ok(());
        }
        let n = self.drives.len();
        let base = self.dbs[db.0 as usize].total_features;
        let feature_bytes = self.dbs[db.0 as usize].feature_bytes;
        let lens = Self::chunk_lens(features.len(), n);
        let mut start = 0u64;
        for (p, &len) in lens.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let chunk = &features[start as usize..(start + len) as usize];
            let replicas = self.dbs[db.0 as usize].partitions[p].replicas.clone();
            for rep in &replicas {
                self.drives[rep.drive].append_db(rep.db, chunk)?;
                self.hosted_bytes[rep.drive] += len * feature_bytes;
            }
            self.dbs[db.0 as usize].partitions[p].extents.push(Extent {
                global_start: base + start,
                len,
            });
            start += len;
        }
        self.dbs[db.0 as usize].total_features += features.len() as u64;
        Ok(())
    }

    /// Registers a model on every drive.
    ///
    /// # Errors
    ///
    /// Propagates the first drive failure.
    pub fn load_model(&mut self, graph: &ModelGraph) -> Result<ClusterModelId> {
        let mut per_drive = Vec::with_capacity(self.drives.len());
        for drive in &mut self.drives {
            per_drive.push(drive.load_model(graph)?);
        }
        let id = ClusterModelId(self.models.len() as u64);
        self.models.push(ClusterModel { per_drive });
        Ok(id)
    }

    /// Scatter-gather query: one live replica per partition scans its
    /// chunk; the host re-keys hits to global indices and merges with
    /// the total-order top-K sorter. See the module docs for the
    /// determinism and failover contract.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] (wrapped) for a bad cluster
    /// database handle, [`DeepStoreError::UnknownModel`] for a bad
    /// cluster model handle, and propagates drive errors.
    pub fn query(&mut self, request: ClusterQueryRequest) -> Result<ClusterQueryResult> {
        let mut results = self.query_batch(std::slice::from_ref(&request))?;
        Ok(results.pop().expect("one request yields one result"))
    }

    /// Batched scatter-gather: validates every request up front
    /// (batch-wide, mirroring the single-drive API), then routes each
    /// through one live replica per partition.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeepStoreCluster::query`]; no request is
    /// executed if any fails validation.
    pub fn query_batch(
        &mut self,
        requests: &[ClusterQueryRequest],
    ) -> Result<Vec<ClusterQueryResult>> {
        for req in requests {
            self.db(req.db)?;
            self.model(req.model)?;
        }
        requests.iter().map(|req| self.run_one(req)).collect()
    }

    fn run_one(&mut self, req: &ClusterQueryRequest) -> Result<ClusterQueryResult> {
        let n = self.drives.len();
        let per_drive_model = self.model(req.model)?.per_drive.clone();
        let partitions = self.db(req.db)?.partitions.clone();
        let total = self.db(req.db)?.total_features;
        let mut merged = TopKSorter::new(req.k);
        let mut by_global: HashMap<u64, (usize, QueryHit)> = HashMap::new();
        let mut drive_ns = vec![SimDuration::ZERO; n];
        let mut scans = Vec::with_capacity(partitions.len());
        let mut covered_total = 0u64;
        let mut failovers_total = 0u64;
        for (pi, part) in partitions.iter().enumerate() {
            let part_len = part.len();
            let mut failovers = 0u32;
            // (skipped, replica order) — lower is better, earliest
            // replica wins ties; integer comparison, no float laundering.
            let mut best: Option<(u64, usize, crate::api::QueryResult)> = None;
            for (ri, rep) in part.replicas.iter().enumerate() {
                if self.down[rep.drive] {
                    failovers += 1;
                    continue;
                }
                let drive = &mut self.drives[rep.drive];
                let mut dreq =
                    QueryRequest::new(req.qfv.clone(), per_drive_model[rep.drive], rep.db)
                        .k(req.k)
                        .level(req.level);
                if req.exact {
                    dreq = dreq.exact();
                }
                let qid = drive.query(dreq)?;
                let res = drive.results(qid)?;
                drive_ns[rep.drive] += res.elapsed;
                let full = res.skipped == 0;
                if best.as_ref().is_none_or(|(s, _, _)| res.skipped < *s) {
                    best = Some((res.skipped, ri, res));
                }
                if full {
                    break;
                }
                failovers += 1;
            }
            match best {
                Some((skipped, ri, res)) => {
                    let drive = part.replicas[ri].drive;
                    covered_total += part_len - skipped;
                    for h in &res.top_k {
                        let global = part.global_of(h.feature_index);
                        merged.offer(h.score, global);
                        by_global.insert(global, (drive, *h));
                    }
                    scans.push(PartitionScan {
                        partition: pi,
                        drive: Some(drive),
                        covered: part_len - skipped,
                        skipped,
                        failovers,
                    });
                }
                None => {
                    // Every replica down: the partition contributes
                    // nothing.
                    scans.push(PartitionScan {
                        partition: pi,
                        drive: None,
                        covered: 0,
                        skipped: part_len,
                        failovers,
                    });
                }
            }
            failovers_total += u64::from(failovers);
        }
        let elapsed = drive_ns
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        let coverage = if total == 0 {
            1.0
        } else {
            covered_total as f64 / total as f64
        };
        let degraded = covered_total < total;
        self.telemetry.on_query(
            partitions.len() as u64,
            failovers_total,
            elapsed.as_nanos(),
            degraded,
        );
        let top_k = merged
            .ranked()
            .into_iter()
            .map(|e| {
                let (drive, hit) = by_global[&e.feature_id];
                ClusterHit {
                    drive,
                    hit,
                    global_index: e.feature_id,
                }
            })
            .collect();
        Ok(ClusterQueryResult {
            top_k,
            elapsed,
            coverage,
            degraded,
            partitions: scans,
        })
    }

    /// Explicit maintenance: recover per-drive faults, scrub every
    /// replica, drop the dead ones, and re-replicate under-replicated
    /// partitions onto healthy drives (least hosted bytes first, never
    /// a drive already holding a copy, never a down drive). Each new
    /// replica is scrub-verified before it counts; a copy that lands on
    /// damaged flash is discarded and the next candidate drive is
    /// tried.
    ///
    /// # Errors
    ///
    /// Propagates unexpected drive errors (bad handles, I/O). Fault
    /// outcomes are *not* errors — they are the report's content.
    pub fn rebalance(&mut self) -> Result<RebalanceReport> {
        let mut report = RebalanceReport::default();
        for drive in &mut self.drives {
            let rec = drive.recover_faults();
            report.pages_remapped += rec.pages_remapped;
            report.pages_lost += rec.pages_lost;
            report.blocks_retired += rec.blocks_retired;
        }
        let target = self.replicas;
        let mut min_rep = u64::MAX;
        let mut max_rep = 0u64;
        for dbi in 0..self.dbs.len() {
            for pi in 0..self.dbs[dbi].partitions.len() {
                report.partitions += 1;
                let part_bytes = {
                    let db = &self.dbs[dbi];
                    db.partitions[pi].len() * db.feature_bytes
                };
                let mut moved_for_partition = 0u64;
                // Scrub: which replicas still hold the whole chunk?
                let replicas = self.dbs[dbi].partitions[pi].replicas.clone();
                let mut healthy = Vec::new();
                let mut dead = Vec::new();
                for rep in replicas {
                    let ok =
                        !self.down[rep.drive] && self.drives[rep.drive].probe_db(rep.db)?.healthy();
                    if ok {
                        healthy.push(rep);
                    } else {
                        dead.push(rep);
                    }
                }
                if !dead.is_empty() {
                    for rep in &dead {
                        self.hosted_bytes[rep.drive] =
                            self.hosted_bytes[rep.drive].saturating_sub(part_bytes);
                    }
                    report.dropped_replicas += dead.len() as u64;
                }
                if healthy.len() < target {
                    report.under_replicated += 1;
                }
                if healthy.is_empty() {
                    report.unrecoverable += 1;
                    self.dbs[dbi].partitions[pi].replicas = healthy;
                    min_rep = 0;
                    self.telemetry.on_partition_rebalanced(0, 0);
                    continue;
                }
                // Re-replicate from the first healthy copy onto the
                // least-loaded healthy drives not already hosting one.
                while healthy.len() < target {
                    let source = healthy[0];
                    let mut candidates: Vec<usize> = (0..self.drives.len())
                        .filter(|&d| !self.down[d] && healthy.iter().all(|r| r.drive != d))
                        .collect();
                    candidates.sort_by_key(|&d| (self.hosted_bytes[d], d));
                    let chunk_len = self.dbs[dbi].partitions[pi].len();
                    let chunk = self.drives[source.drive].read_db(source.db, 0, chunk_len)?;
                    let mut placed = false;
                    for cand in candidates {
                        let new_db = self.drives[cand].write_db(&chunk)?;
                        if self.drives[cand].probe_db(new_db)?.healthy() {
                            self.hosted_bytes[cand] += part_bytes;
                            healthy.push(Replica {
                                drive: cand,
                                db: new_db,
                            });
                            report.re_replicated += 1;
                            report.moved_bytes += part_bytes;
                            moved_for_partition += part_bytes;
                            placed = true;
                            break;
                        }
                        // The copy landed on damaged flash: orphan it
                        // and try the next candidate.
                    }
                    if !placed {
                        break;
                    }
                }
                min_rep = min_rep.min(healthy.len() as u64);
                max_rep = max_rep.max(healthy.len() as u64);
                self.telemetry
                    .on_partition_rebalanced(healthy.len() as u64, moved_for_partition);
                self.dbs[dbi].partitions[pi].replicas = healthy;
            }
        }
        report.min_replication = if min_rep == u64::MAX { 0 } else { min_rep };
        report.max_replication = max_rep;
        self.telemetry.on_rebalance(
            report.moved_bytes,
            report.re_replicated,
            report.dropped_replicas,
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    fn cluster(
        n: usize,
        r: usize,
    ) -> (
        DeepStoreCluster,
        deepstore_nn::Model,
        ClusterDbId,
        ClusterModelId,
    ) {
        let model = zoo::textqa().seeded_metric(4);
        let mut c = DeepStoreCluster::with_replication(n, r, DeepStoreConfig::small());
        let features: Vec<Tensor> = (0..60).map(|i| model.random_feature(i)).collect();
        let db = c.write_db(&features).unwrap();
        let mid = c.load_model(&ModelGraph::from_model(&model)).unwrap();
        (c, model, db, mid)
    }

    fn req(q: &Tensor, k: usize, mid: ClusterModelId, db: ClusterDbId) -> ClusterQueryRequest {
        ClusterQueryRequest::new(q.clone(), mid, db)
            .k(k)
            .level(AcceleratorLevel::Channel)
    }

    #[test]
    fn cluster_query_matches_single_drive_results() {
        let probe_seed = 23; // duplicate of feature 23
        let (mut single, model, sdb, smid) = cluster(1, 1);
        let (mut multi, _, mdb, mmid) = cluster(4, 1);
        let q = model.random_feature(probe_seed);
        let rs = single.query(req(&q, 5, smid, sdb)).unwrap();
        let rm = multi.query(req(&q, 5, mmid, mdb)).unwrap();
        let ids_single: Vec<u64> = rs.top_k.iter().map(|h| h.global_index).collect();
        let ids_multi: Vec<u64> = rm.top_k.iter().map(|h| h.global_index).collect();
        assert_eq!(ids_single, ids_multi);
        // Bit-identical scores, not just the same ids.
        for (a, b) in rs.top_k.iter().zip(&rm.top_k) {
            assert_eq!(a.hit.score.to_bits(), b.hit.score.to_bits());
        }
        assert_eq!(ids_multi[0], probe_seed);
        assert_eq!(rm.coverage, 1.0);
        assert!(!rm.degraded);
    }

    #[test]
    fn replication_does_not_change_results_or_cost_extra_scans() {
        let (mut r1, model, db1, m1) = cluster(4, 1);
        let (mut r3, _, db3, m3) = cluster(4, 3);
        let q = model.random_feature(7);
        let a = r1.query(req(&q, 6, m1, db1)).unwrap();
        let b = r3.query(req(&q, 6, m3, db3)).unwrap();
        assert_eq!(
            a.top_k.iter().map(|h| h.global_index).collect::<Vec<_>>(),
            b.top_k.iter().map(|h| h.global_index).collect::<Vec<_>>()
        );
        // One replica serves each partition: no failovers, 4 scans.
        assert!(b.partitions.iter().all(|p| p.failovers == 0));
        assert_eq!(b.partitions.len(), 4);
    }

    #[test]
    fn cluster_latency_is_slowest_shard_not_sum() {
        // Large enough that streaming dominates the fixed costs: 2048
        // TextQA features = ~1.6 MB = ~100 pages.
        let model = zoo::textqa().seeded(4);
        let features: Vec<Tensor> = (0..2048).map(|i| model.random_feature(i)).collect();
        let graph = ModelGraph::from_model(&model);
        let mut single = DeepStoreCluster::new(1, DeepStoreConfig::small());
        let sdb = single.write_db(&features).unwrap();
        let smid = single.load_model(&graph).unwrap();
        let mut multi = DeepStoreCluster::new(4, DeepStoreConfig::small());
        let mdb = multi.write_db(&features).unwrap();
        let mmid = multi.load_model(&graph).unwrap();
        let q = model.random_feature(9999);
        let t1 = single.query(req(&q, 3, smid, sdb)).unwrap().elapsed;
        let t4 = multi.query(req(&q, 3, mmid, mdb)).unwrap().elapsed;
        // Four drives each scan a quarter of the data: faster than one.
        assert!(t4 < t1, "4-drive {t4} !< 1-drive {t1}");
    }

    #[test]
    fn global_indices_resolve_to_original_features() {
        let (mut c, model, db, mid) = cluster(3, 2);
        let q = model.random_feature(700);
        let r = c.query(req(&q, 6, mid, db)).unwrap();
        for h in &r.top_k {
            assert!(h.global_index < 60);
            // Contiguous chunking: global 0..20 → partition 0 (drive 0
            // serves, replica 0), 20..40 → partition 1, 40..60 → 2.
            assert_eq!(h.drive, (h.global_index / 20) as usize);
        }
        // All distinct.
        let mut idx: Vec<u64> = r.top_k.iter().map(|h| h.global_index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 6);
    }

    #[test]
    fn appends_straddling_partition_boundaries_keep_global_indices_exact() {
        // Regression test for the old round-robin arithmetic
        // (global = local * n + drive): after an append the partition's
        // local space concatenates two disjoint global ranges, and only
        // extent metadata resolves it.
        let model = zoo::textqa().seeded_metric(4);
        let mut c = DeepStoreCluster::with_replication(3, 2, DeepStoreConfig::small());
        // 7 features → chunks of 3/2/2; the append of 5 more (global
        // 7..12) → chunks of 2/2/1 grafted onto each partition.
        let features: Vec<Tensor> = (0..7).map(|i| model.random_feature(i)).collect();
        let db = c.write_db(&features).unwrap();
        let appended: Vec<Tensor> = (7..12).map(|i| model.random_feature(i)).collect();
        c.append_db(db, &appended).unwrap();
        let mid = c.load_model(&ModelGraph::from_model(&model)).unwrap();
        assert_eq!(c.db_features(db).unwrap(), 12);
        // Every feature must be findable at its exact global index:
        // probe with duplicates of each write-order feature.
        for g in 0..12u64 {
            let q = model.random_feature(g);
            let r = c.query(req(&q, 1, mid, db)).unwrap();
            assert_eq!(
                r.top_k[0].global_index, g,
                "feature written at global index {g} resolved to {}",
                r.top_k[0].global_index
            );
        }
        // And the whole ranking matches a single-drive store of the
        // same write order.
        let mut one = DeepStoreCluster::new(1, DeepStoreConfig::small());
        let all: Vec<Tensor> = (0..12).map(|i| model.random_feature(i)).collect();
        let odb = one.write_db(&all).unwrap();
        let omid = one.load_model(&ModelGraph::from_model(&model)).unwrap();
        let q = model.random_feature(777);
        let a = one.query(req(&q, 12, omid, odb)).unwrap();
        let b = c.query(req(&q, 12, mid, db)).unwrap();
        assert_eq!(
            a.top_k.iter().map(|h| h.global_index).collect::<Vec<_>>(),
            b.top_k.iter().map(|h| h.global_index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dead_drive_fails_over_at_full_coverage_with_r2() {
        let (mut c, model, db, mid) = cluster(4, 2);
        let q = model.random_feature(23);
        let before = c.query(req(&q, 5, mid, db)).unwrap();
        c.kill_drive(1);
        let after = c.query(req(&q, 5, mid, db)).unwrap();
        assert_eq!(after.coverage, 1.0);
        assert!(!after.degraded);
        assert_eq!(
            before
                .top_k
                .iter()
                .map(|h| h.global_index)
                .collect::<Vec<_>>(),
            after
                .top_k
                .iter()
                .map(|h| h.global_index)
                .collect::<Vec<_>>()
        );
        // Partition 1's primary was drive 1; its surviving replica on
        // drive 2 served.
        let p1 = after.partitions[1];
        assert_eq!(p1.drive, Some(2));
        assert_eq!(p1.failovers, 1);
        assert!(c.is_down(1));
    }

    #[test]
    fn losing_all_replicas_degrades_honestly() {
        let (mut c, model, db, mid) = cluster(3, 1);
        c.kill_drive(0);
        let q = model.random_feature(5);
        let r = c.query(req(&q, 60, mid, db)).unwrap();
        // Partition 0 (global 0..20) had its only copy on drive 0.
        assert!(r.degraded);
        assert!((r.coverage - 40.0 / 60.0).abs() < 1e-12);
        assert!(r.top_k.iter().all(|h| h.global_index >= 20));
        assert_eq!(r.partitions[0].drive, None);
        assert_eq!(r.partitions[0].covered, 0);
    }

    #[test]
    fn rebalance_restores_replication_after_drive_loss() {
        let (mut c, model, db, mid) = cluster(4, 2);
        c.kill_drive(1);
        let report = c.rebalance().unwrap();
        // Drive 1 held replicas of partitions 0 and 1.
        assert_eq!(report.dropped_replicas, 2);
        assert_eq!(report.re_replicated, 2);
        assert_eq!(report.under_replicated, 2);
        assert_eq!(report.unrecoverable, 0);
        assert!(report.fully_replicated(2));
        assert!(report.moved_bytes > 0);
        // No replica lives on the dead drive, and no partition
        // co-locates two copies.
        for (p, count) in c.replication(db).unwrap().iter().enumerate() {
            assert_eq!(*count, 2, "partition {p}");
        }
        // Queries are whole again without touching drive 1.
        let q = model.random_feature(23);
        let r = c.query(req(&q, 5, mid, db)).unwrap();
        assert_eq!(r.coverage, 1.0);
        assert!(r.partitions.iter().all(|p| p.drive != Some(1)));
        // Telemetry saw the move.
        let snap = c.metrics_snapshot();
        if cfg!(feature = "obs") {
            assert_eq!(
                snap.counter("cluster.rebalance.moved_bytes"),
                Some(report.moved_bytes)
            );
            assert_eq!(snap.counter("cluster.rebalances"), Some(1));
        } else {
            assert_eq!(snap.counter("cluster.rebalance.moved_bytes"), Some(0));
        }
    }

    #[test]
    fn rebalance_with_no_healthy_copy_reports_unrecoverable() {
        let (mut c, _, db, _) = cluster(3, 1);
        c.kill_drive(2);
        let report = c.rebalance().unwrap();
        assert_eq!(report.unrecoverable, 1);
        assert_eq!(report.min_replication, 0);
        assert!(!report.fully_replicated(1));
        assert_eq!(c.replication(db).unwrap()[2], 0);
    }

    #[test]
    fn bad_handles_are_rejected() {
        let (mut c, model, _, mid) = cluster(2, 1);
        let q = model.random_feature(0);
        assert!(c.query(req(&q, 1, mid, ClusterDbId(9))).is_err());
        let (mut c2, _, db2, _) = cluster(2, 1);
        assert!(c2.query(req(&q, 1, ClusterModelId(9), db2)).is_err());
        assert!(c2.append_db(ClusterDbId(9), &[]).is_err());
        assert!(c2.replication(ClusterDbId(9)).is_err());
    }

    #[test]
    fn too_few_features_for_sharding_is_error() {
        let model = zoo::textqa().seeded(1);
        let mut c = DeepStoreCluster::new(4, DeepStoreConfig::small());
        let features: Vec<Tensor> = (0..2).map(|i| model.random_feature(i)).collect();
        assert!(matches!(
            c.write_db(&features),
            Err(DeepStoreError::Flash(FlashError::SizeMismatch { .. }))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn empty_cluster_panics() {
        let _ = DeepStoreCluster::new(0, DeepStoreConfig::small());
    }

    #[test]
    #[should_panic(expected = "without co-location")]
    fn over_replication_panics() {
        let _ = DeepStoreCluster::with_replication(2, 3, DeepStoreConfig::small());
    }

    #[test]
    fn replica_placement_never_co_locates() {
        let (c, _, db, _) = cluster(4, 3);
        for p in &c.dbs[db.0 as usize].partitions {
            let mut drives: Vec<usize> = p.replicas.iter().map(|r| r.drive).collect();
            drives.sort_unstable();
            drives.dedup();
            assert_eq!(drives.len(), 3);
        }
    }
}
